"""Materialized selection views (paper, Section 4(6)).

Query answering using views [1, 23, 30], instantiated for the selection
query classes: a view is a materialized range selection
``V = sigma_{A in [low, high]}(R)``, indexed on A.  The Pi-scheme for
"answering selections using views" materializes a partition of the key
space into such views (PTIME), after which a point or range query touches
only the views that cover it -- never the base relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import ViewError
from repro.indexes.btree import BPlusTree
from repro.storage.relation import Relation

__all__ = ["ViewDefinition", "MaterializedView", "ViewSet"]


@dataclass(frozen=True)
class ViewDefinition:
    """``sigma_{attribute in [low, high]}(relation)`` -- a range-slice view."""

    name: str
    attribute: str
    low: Any
    high: Any

    def covers_point(self, constant: Any) -> bool:
        return self.low <= constant <= self.high

    def overlaps_range(self, low: Any, high: Any) -> bool:
        return not (high < self.low or low > self.high)

    def contains_range(self, low: Any, high: Any) -> bool:
        return self.low <= low and high <= self.high


class MaterializedView:
    """A view extension V(D), stored with a B+-tree on the view attribute."""

    def __init__(
        self,
        definition: ViewDefinition,
        base: Relation,
        tracker: Optional[CostTracker] = None,
    ):
        tracker = ensure_tracker(tracker)
        self.definition = definition
        position = base.schema.position_of(definition.attribute)
        self._rows = [
            row
            for _, row in base.scan(tracker)
            if definition.low <= row[position] <= definition.high
        ]
        self._index = BPlusTree.build(
            [(row[position], row) for row in self._rows], tracker=tracker
        )

    def __len__(self) -> int:
        return len(self._rows)

    def point_nonempty(self, constant: Any, tracker: Optional[CostTracker] = None) -> bool:
        return self._index.contains(constant, ensure_tracker(tracker))

    def range_nonempty(self, low: Any, high: Any, tracker: Optional[CostTracker] = None) -> bool:
        return self._index.range_nonempty(low, high, ensure_tracker(tracker))


class ViewSet:
    """A collection of materialized views over one relation attribute."""

    def __init__(self, views: List[MaterializedView]):
        if not views:
            raise ViewError("a view set needs at least one view")
        attributes = {view.definition.attribute for view in views}
        if len(attributes) != 1:
            raise ViewError("all views in a set must select on the same attribute")
        self.attribute = attributes.pop()
        self.views = sorted(views, key=lambda view: view.definition.low)

    @classmethod
    def partition(
        cls,
        base: Relation,
        attribute: str,
        key_range: Tuple[Any, Any],
        bucket_count: int,
        tracker: Optional[CostTracker] = None,
    ) -> "ViewSet":
        """Materialize ``bucket_count`` contiguous range views covering
        ``key_range`` -- the PTIME preprocessing of strategy (6)."""
        low, high = key_range
        if bucket_count < 1 or high < low:
            raise ViewError("bad partition parameters")
        span = high - low + 1
        width = max(1, span // bucket_count)
        views = []
        start = low
        index = 0
        while start <= high:
            end = high if index == bucket_count - 1 else min(high, start + width - 1)
            definition = ViewDefinition(
                name=f"{base.schema.name}_{attribute}_{index}",
                attribute=attribute,
                low=start,
                high=end,
            )
            views.append(MaterializedView(definition, base, tracker))
            start = end + 1
            index += 1
        return cls(views)

    def covering_views(self, low: Any, high: Any) -> List[MaterializedView]:
        """Views overlapping [low, high]; raises ViewError if they do not
        jointly cover the whole range (the query is not answerable)."""
        overlapping = [
            view for view in self.views if view.definition.overlaps_range(low, high)
        ]
        if not overlapping:
            raise ViewError(f"no view covers [{low}, {high}]")
        # Contiguity check: the union of view ranges must contain [low, high].
        cursor = low
        for view in overlapping:
            if view.definition.low > cursor:
                raise ViewError(f"coverage gap at {cursor} for [{low}, {high}]")
            cursor = max(cursor, view.definition.high + 1)
        if cursor <= high:
            raise ViewError(f"coverage gap at {cursor} for [{low}, {high}]")
        return overlapping
