"""Query answering using views (paper, Section 4(6))."""

from repro.views.rewrite import (
    RewrittenQuery,
    answer_with_views,
    rewrite_point,
    rewrite_range,
)
from repro.views.view import MaterializedView, ViewDefinition, ViewSet

__all__ = [
    "MaterializedView",
    "RewrittenQuery",
    "ViewDefinition",
    "ViewSet",
    "answer_with_views",
    "rewrite_point",
    "rewrite_range",
]
