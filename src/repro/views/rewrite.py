"""Query rewriting over views (paper, Section 4(6), condition (b)).

Given a selection query and a :class:`~repro.views.view.ViewSet`, rewrite
the query into probes that touch only view extensions ``V(D)`` -- the
"reformulation Q' referring only to V and V(D)" of the paper.  This is the
one place the library uses the query-rewriting extension ``lambda(Q)``
mentioned under Definition 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.views.view import MaterializedView, ViewSet

__all__ = ["RewrittenQuery", "rewrite_point", "rewrite_range", "answer_with_views"]


@dataclass
class RewrittenQuery:
    """A union of per-view probes equivalent to the original selection."""

    probes: List[Tuple[MaterializedView, Any, Any]]  # (view, low, high)

    def evaluate(self, tracker: Optional[CostTracker] = None) -> bool:
        tracker = ensure_tracker(tracker)
        for view, low, high in self.probes:
            tracker.tick(1)
            if view.range_nonempty(low, high, tracker):
                return True
        return False


def rewrite_point(views: ViewSet, constant: Any) -> RewrittenQuery:
    """sigma_{A = c} -> one probe on the unique covering view."""
    covering = views.covering_views(constant, constant)
    return RewrittenQuery(probes=[(covering[0], constant, constant)])


def rewrite_range(views: ViewSet, low: Any, high: Any) -> RewrittenQuery:
    """sigma_{low <= A <= high} -> clipped probes on each overlapped view."""
    covering = views.covering_views(low, high)
    probes = []
    for view in covering:
        probes.append(
            (
                view,
                max(low, view.definition.low),
                min(high, view.definition.high),
            )
        )
    return RewrittenQuery(probes=probes)


def answer_with_views(
    views: ViewSet,
    low: Any,
    high: Any,
    tracker: Optional[CostTracker] = None,
) -> bool:
    """End-to-end: rewrite, then evaluate only against view extensions."""
    return rewrite_range(views, low, high).evaluate(tracker)
