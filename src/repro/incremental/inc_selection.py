"""Bounded incremental maintenance of selection indexes (Section 4(7)).

The paper folds incremental computation into preprocessing: after building
D' = Pi(D), an update dD should yield dD' without re-running Pi.  For the
selection case studies this is textbook index maintenance -- each tuple
insert/delete costs one O(log n) B+-tree update, so a batch costs
O(|dD| log n): bounded by |CHANGED| up to the logarithmic index factor,
versus Theta(|D| log |D|) for rebuild-from-scratch.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.core.cost import Cost, CostTracker, ensure_tracker
from repro.incremental.changes import ChangeKind, ChangeLog, TupleChange
from repro.indexes.btree import BPlusTree
from repro.storage.relation import Relation

__all__ = ["IncrementalSelectionIndex"]


class IncrementalSelectionIndex:
    """A relation + B+-tree pair maintained under tuple changes."""

    def __init__(
        self,
        relation: Relation,
        attribute: str,
        tracker: Optional[CostTracker] = None,
    ):
        tracker = ensure_tracker(tracker)
        self.relation = relation
        self.attribute = attribute
        self._position = relation.schema.position_of(attribute)
        self._index = BPlusTree.build(
            [(row[self._position], row_id) for row_id, row in relation.scan(tracker)],
            tracker=tracker,
        )
        self.log = ChangeLog()

    # -- updates -----------------------------------------------------------------

    def apply(self, change: TupleChange, tracker: Optional[CostTracker] = None) -> None:
        """One incremental step: O(log n), independent of batch history."""
        tracker = ensure_tracker(tracker)
        key = change.row[self._position]
        if change.kind is ChangeKind.INSERT:
            had_key = self._index.contains(key, tracker)
            row_id = self.relation.insert(change.row)
            self._index.insert(key, row_id, tracker)
            # Output (the Boolean answer for key) changes iff key was absent.
            self.log.record(1, 0 if had_key else 1)
        else:
            row_id = self._find_row_id(change.row, tracker)
            if row_id is None:
                self.log.record(1, 0)
                return
            self.relation.delete(row_id)
            self._index.delete(key, row_id, tracker)
            still_there = self._index.contains(key, tracker)
            self.log.record(1, 0 if still_there else 1)

    def apply_batch(
        self,
        changes: Iterable[TupleChange],
        tracker: Optional[CostTracker] = None,
    ) -> Cost:
        """Apply dD; returns the incremental cost of the batch."""
        tracker = ensure_tracker(tracker)
        with tracker.measure() as measurement:
            for change in changes:
                self.apply(change, tracker)
        return measurement.cost

    def _find_row_id(self, row, tracker: CostTracker) -> Optional[int]:
        key = row[self._position]
        for row_id in self._index.search(key, tracker):
            tracker.tick(1)
            if self.relation.fetch(row_id) == tuple(row):
                return row_id
        return None

    # -- queries ------------------------------------------------------------------

    def point_nonempty(self, constant: Any, tracker: Optional[CostTracker] = None) -> bool:
        return self._index.contains(constant, ensure_tracker(tracker))

    def range_nonempty(self, low: Any, high: Any, tracker: Optional[CostTracker] = None) -> bool:
        return self._index.range_nonempty(low, high, ensure_tracker(tracker))

    # -- the from-scratch alternative (for boundedness contrast) -----------------------

    @staticmethod
    def rebuild_cost(relation: Relation, attribute: str) -> Cost:
        """Cost of preprocessing from scratch (what incrementality avoids)."""
        tracker = CostTracker()
        position = relation.schema.position_of(attribute)
        BPlusTree.build(
            [(row[position], row_id) for row_id, row in relation.scan(tracker)],
            tracker=tracker,
        )
        return tracker.snapshot()
