"""Bounded incremental evaluation and preprocessing (paper, Section 4(7))."""

from repro.incremental.changes import (
    ChangeKind,
    ChangeLog,
    EdgeChange,
    PointWrite,
    TupleChange,
)
from repro.incremental.inc_reachability import IncrementalTransitiveClosure
from repro.incremental.inc_selection import IncrementalSelectionIndex

__all__ = [
    "ChangeKind",
    "ChangeLog",
    "EdgeChange",
    "PointWrite",
    "TupleChange",
    "IncrementalSelectionIndex",
    "IncrementalTransitiveClosure",
]
