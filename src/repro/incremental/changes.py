"""Change representations for incremental evaluation (paper, Section 4(7)).

Incremental algorithms are analysed against |CHANGED| = |dD| + |dO| [35]:
the size of the input change plus the size of the output change.  The
:class:`ChangeLog` accumulates both so experiments can test *boundedness* --
cost a function of |CHANGED| alone, independent of |D|.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Tuple

__all__ = ["ChangeKind", "TupleChange", "EdgeChange", "PointWrite", "ChangeLog"]


class ChangeKind(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class TupleChange:
    """One row inserted into / deleted from a relation."""

    kind: ChangeKind
    row: Tuple[Any, ...]


@dataclass(frozen=True)
class EdgeChange:
    """One edge inserted into / deleted from a graph."""

    kind: ChangeKind
    source: int
    target: int


@dataclass(frozen=True)
class PointWrite:
    """One in-place overwrite of a positional dataset: ``A[position] = value``.

    The natural update for array-shaped data (the RMQ case study): the
    dataset keeps its length, exactly one slot changes, so |dD| = 1 and the
    delta-maintenance hooks can localize the repair to the touched block.
    """

    position: int
    value: Any


@dataclass
class ChangeLog:
    """Accounting of |dD| and |dO| across a batch of updates."""

    input_changes: int = 0
    output_changes: int = 0
    details: List[str] = field(default_factory=list)

    def record(self, input_delta: int, output_delta: int, note: str = "") -> None:
        self.input_changes += input_delta
        self.output_changes += output_delta
        if note:
            self.details.append(note)

    @property
    def changed(self) -> int:
        """|CHANGED| = |dD| + |dO| (Ramalingam & Reps [35])."""
        return self.input_changes + self.output_changes
