"""Incremental transitive closure under edge insertions (Section 4(7)).

Italiano-style incremental maintenance of a reachability matrix: when edge
(u, v) arrives and v was not yet reachable from u, every vertex x that
reaches u inherits v's descendant set.  The work done is proportional to the
number of (x, y) pairs that *become* reachable -- the |dO| part of
|CHANGED| -- rather than to |D|, which is what makes the algorithm
*bounded* in the Ramalingam--Reps sense [35] at the granularity of
closure-pair changes.

Implementation: one Python-int bitset of descendants per vertex; an
insertion OR-s v's bitset into every affected x, charging one unit per
changed word, so measured cost tracks popcount deltas.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cost import Cost, CostTracker, ensure_tracker
from repro.core.errors import GraphError
from repro.graphs.graph import Digraph
from repro.incremental.changes import ChangeLog
from repro.indexes.reachability import TransitiveClosureIndex

__all__ = ["IncrementalTransitiveClosure"]


class IncrementalTransitiveClosure:
    """Insert-only dynamic reachability with bounded incremental cost."""

    def __init__(self, n: int, tracker: Optional[CostTracker] = None):
        tracker = ensure_tracker(tracker)
        if n < 0:
            raise GraphError("vertex count must be non-negative")
        self.n = n
        # reach[x] = reflexive descendant bitset of x.
        self._reach: List[int] = [1 << x for x in range(n)]
        # predecessors[x] = bitset of vertices that reach x (reflexive).
        self._ancestors: List[int] = [1 << x for x in range(n)]
        self.graph = Digraph(n)
        self.log = ChangeLog()
        tracker.tick(n)

    def reachable(self, source: int, target: int, tracker: Optional[CostTracker] = None) -> bool:
        ensure_tracker(tracker).tick(1)
        if not (0 <= source < self.n and 0 <= target < self.n):
            raise GraphError(f"vertex out of range: {source}, {target}")
        return bool(self._reach[source] >> target & 1)

    def insert_edge(self, u: int, v: int, tracker: Optional[CostTracker] = None) -> Cost:
        """Insert (u, v); returns the incremental cost of the update."""
        tracker = ensure_tracker(tracker)
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise GraphError(f"vertex out of range: {u}, {v}")
        with tracker.measure() as measurement:
            self.graph.add_edge(u, v)
            tracker.tick(1)
            if self._reach[u] >> v & 1:
                self.log.record(1, 0, f"redundant edge ({u},{v})")
            else:
                new_pairs = 0
                affected = self._ancestors[u]
                gain_template = self._reach[v]
                while affected:
                    low_bit = affected & -affected
                    x = low_bit.bit_length() - 1
                    affected ^= low_bit
                    gained = gain_template & ~self._reach[x]
                    if gained:
                        self._reach[x] |= gained
                        gained_count = gained.bit_count()
                        new_pairs += gained_count
                        # Maintain the ancestor sets of newly reached vertices.
                        x_bit = 1 << x
                        remaining = gained
                        while remaining:
                            bit = remaining & -remaining
                            self._ancestors[bit.bit_length() - 1] |= x_bit
                            remaining ^= bit
                        tracker.tick(2 * gained_count)
                    else:
                        tracker.tick(1)
                self.log.record(1, new_pairs, f"edge ({u},{v}) added {new_pairs} pairs")
        return measurement.cost

    # -- recompute-from-scratch contrast -------------------------------------------

    def recompute_cost(self) -> Cost:
        """What a full closure recomputation would cost right now."""
        tracker = CostTracker()
        TransitiveClosureIndex(self.graph, tracker)
        return tracker.snapshot()

    def agrees_with_recompute(self) -> bool:
        """Cross-check against the batch index (used by property tests)."""
        index = TransitiveClosureIndex(self.graph)
        return all(
            self.reachable(u, v) == index.reachable(u, v)
            for u in range(self.n)
            for v in range(self.n)
        )
