"""Sorted-run index: sort once, binary-search forever (paper, Section 4(2)).

The "searching in a list" case study L1: preprocess an unordered list M by
sorting it (O(|M| log |M|), PTIME), then decide membership of any element e
by binary search in O(log |M|).  Also the structure behind the BDS position
index of Example 5 (a run of (vertex, position) pairs sorted by vertex).
"""

from __future__ import annotations

import math
from typing import Any, Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.core.cost import CostTracker, ensure_tracker
from repro.parallel.primitives import binary_search_untracked, parallel_binary_search

__all__ = ["SortedRunIndex", "KeyedRunIndex"]

K = TypeVar("K")
V = TypeVar("V")


class SortedRunIndex(Generic[K]):
    """An immutable sorted array supporting O(log n) membership."""

    def __init__(self, values: Sequence[K], tracker: Optional[CostTracker] = None):
        """Sort the input (the PTIME preprocessing step).

        Charges n * ceil(log2 n) comparisons -- the sequential sorting bound;
        the NC view (a bitonic network) is available in
        :func:`repro.parallel.primitives.parallel_sort`.
        """
        tracker = ensure_tracker(tracker)
        n = len(values)
        if n > 1:
            tracker.tick(n * math.ceil(math.log2(n)))
        self._run: List[K] = sorted(values)

    def __len__(self) -> int:
        return len(self._run)

    def contains(self, key: K, tracker: Optional[CostTracker] = None) -> bool:
        """Binary-search membership, O(log n) depth."""
        tracker = ensure_tracker(tracker)
        position = parallel_binary_search(self._run, key, tracker)
        tracker.tick(1)
        return position < len(self._run) and self._run[position] == key

    def rank(self, key: K, tracker: Optional[CostTracker] = None) -> int:
        """Number of elements strictly below ``key``."""
        return parallel_binary_search(self._run, key, ensure_tracker(tracker))

    # -- untracked serving kernels ---------------------------------------------

    def contains_fast(self, key: K) -> bool:
        """Untracked :meth:`contains`: one C ``bisect`` probe, no charging."""
        run = self._run
        position = binary_search_untracked(run, key)
        return position < len(run) and run[position] == key

    def contains_many(self, keys: Sequence[K]) -> List[bool]:
        """Untracked batch membership: locals hoisted, one bisect per key."""
        run = self._run
        n = len(run)
        search = binary_search_untracked
        answers: List[bool] = []
        append = answers.append
        for key in keys:
            position = search(run, key)
            append(position < n and run[position] == key)
        return answers

    def values(self) -> List[K]:
        return list(self._run)

    # -- delta maintenance (paper, Section 4(7)) ------------------------------

    def insert_value(self, key: K, tracker: Optional[CostTracker] = None) -> None:
        """Add one element, keeping the run sorted.

        O(log n) comparisons to locate the slot (the charged cost -- the
        incremental analogue of one binary search); the list shift underneath
        is a memmove, which is the price of the array layout, not of the
        algorithm.  Duplicates accumulate, matching list (bag) semantics.
        """
        tracker = ensure_tracker(tracker)
        import bisect

        tracker.tick(max(1, math.ceil(math.log2(max(len(self._run), 2)))))
        bisect.insort(self._run, key)

    def delete_value(self, key: K, tracker: Optional[CostTracker] = None) -> bool:
        """Remove one occurrence of ``key``; False when it was absent.

        Same O(log n) locate cost as :meth:`insert_value`.
        """
        tracker = ensure_tracker(tracker)
        import bisect

        tracker.tick(max(1, math.ceil(math.log2(max(len(self._run), 2)))))
        position = bisect.bisect_left(self._run, key)
        if position < len(self._run) and self._run[position] == key:
            del self._run[position]
            return True
        return False

    # -- serialization --------------------------------------------------------

    def to_state(self) -> dict:
        """Plain-data snapshot; the run is stored sorted so load skips the sort."""
        return {"run": list(self._run)}

    @classmethod
    def from_state(cls, state: dict) -> "SortedRunIndex":
        index = cls.__new__(cls)
        index._run = list(state["run"])
        return index


class KeyedRunIndex(Generic[K, V]):
    """A sorted run of (key, value) pairs with O(log n) value lookup.

    Example 5 in one object: keys are vertices, values their BDS visit
    positions; ``lookup(u) < lookup(v)`` answers "u before v" in O(log n).
    """

    def __init__(
        self,
        pairs: Sequence[Tuple[K, V]],
        tracker: Optional[CostTracker] = None,
    ):
        tracker = ensure_tracker(tracker)
        n = len(pairs)
        if n > 1:
            tracker.tick(n * math.ceil(math.log2(n)))
        self._pairs: List[Tuple[K, V]] = sorted(pairs, key=lambda pair: pair[0])
        self._keys: List[K] = [key for key, _ in self._pairs]

    def __len__(self) -> int:
        return len(self._pairs)

    def lookup(self, key: K, tracker: Optional[CostTracker] = None) -> Optional[V]:
        """The value stored under ``key``, or None; O(log n) depth."""
        tracker = ensure_tracker(tracker)
        position = parallel_binary_search(self._keys, key, tracker)
        tracker.tick(1)
        if position < len(self._keys) and self._keys[position] == key:
            return self._pairs[position][1]
        return None

    def lookup_fast(self, key: K) -> Optional[V]:
        """Untracked :meth:`lookup`: one C ``bisect`` probe, no charging."""
        keys = self._keys
        position = binary_search_untracked(keys, key)
        if position < len(keys) and keys[position] == key:
            return self._pairs[position][1]
        return None

    def items(self) -> List[Tuple[K, V]]:
        return list(self._pairs)

    # -- serialization --------------------------------------------------------

    def to_state(self) -> dict:
        return {"pairs": [tuple(pair) for pair in self._pairs]}

    @classmethod
    def from_state(cls, state: dict) -> "KeyedRunIndex":
        index = cls.__new__(cls)
        index._pairs = [tuple(pair) for pair in state["pairs"]]
        index._keys = [key for key, _ in index._pairs]
        return index
