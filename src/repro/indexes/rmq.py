"""Fischer--Heun range-minimum structure: O(n) words, O(1) query.

The MRQ case study (paper, Section 4(3)) cites Fischer & Heun [18]: a static
array can be preprocessed in linear time into a structure answering every
range-minimum query in constant time.  This is the standard block
decomposition:

* split A into blocks of b = max(1, floor(log2 n) / 4) elements;
* a :class:`~repro.indexes.sparse_table.SparseTable` over the per-block
  minima answers the block-aligned middle of any query;
* within blocks, all blocks sharing a *Cartesian-tree signature* (the
  push/pop sequence of the stack construction, a 2b-bit ballot string) have
  identical argmin positions for every sub-range, so one lookup table per
  distinct signature suffices.

We store words, not bits: the O(n)-bit succinctness of [18] buys nothing for
Pi-tractability (preprocessing stays PTIME, queries stay O(1)), as noted in
DESIGN.md.  Ties resolve to the leftmost minimum everywhere, matching
:func:`repro.indexes.sparse_table.naive_range_min`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.indexes.sparse_table import SparseTable, check_rmq_range

__all__ = ["FischerHeunRMQ"]


def _cartesian_signature(block: Sequence) -> str:
    """The ballot-sequence signature of a block's Cartesian tree.

    Simulates the incremental Cartesian-tree stack: for each element, pop
    strictly-greater stack entries then push.  Two blocks with equal
    signatures agree on the *position* of the leftmost minimum of every
    sub-range.
    """
    stack: List = []
    bits: List[str] = []
    for value in block:
        while stack and stack[-1] > value:
            stack.pop()
            bits.append("0")
        stack.append(value)
        bits.append("1")
    return "".join(bits)


def _in_block_table(block: Sequence) -> List[List[int]]:
    """``table[l][r - l]`` = leftmost argmin offset of block[l..r]."""
    size = len(block)
    table: List[List[int]] = []
    for left in range(size):
        row = [left]
        best = left
        for right in range(left + 1, size):
            if block[right] < block[best]:
                best = right
            row.append(best)
        table.append(row)
    return table


class FischerHeunRMQ:
    """O(1) range-minimum queries after linear preprocessing."""

    def __init__(self, array: Sequence, tracker: Optional[CostTracker] = None):
        tracker = ensure_tracker(tracker)
        self._array = list(array)
        n = len(self._array)
        self._block_size = max(1, int(math.log2(n)) // 4) if n >= 2 else 1

        # Per-block minima (absolute positions) and signatures.
        self._block_argmin: List[int] = []
        self._signatures: List[str] = []
        self._tables: Dict[str, List[List[int]]] = {}
        b = self._block_size
        for start in range(0, n, b):
            block = self._array[start : start + b]
            tracker.tick(len(block))
            best = 0
            for offset in range(1, len(block)):
                if block[offset] < block[best]:
                    best = offset
            self._block_argmin.append(start + best)
            signature = _cartesian_signature(block)
            tracker.tick(len(block))
            self._signatures.append(signature)
            if signature not in self._tables:
                self._tables[signature] = _in_block_table(block)
                tracker.tick(len(block) ** 2)

        block_min_values = [self._array[p] for p in self._block_argmin]
        self._summary = SparseTable(block_min_values, tracker)

    def __len__(self) -> int:
        return len(self._array)

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def distinct_signatures(self) -> int:
        return len(self._tables)

    def _block_query(self, block_index: int, left_offset: int, right_offset: int) -> int:
        table = self._tables[self._signatures[block_index]]
        return (
            block_index * self._block_size
            + table[left_offset][right_offset - left_offset]
        )

    def argmin(self, low: int, high: int, tracker: Optional[CostTracker] = None) -> int:
        """Leftmost position of min(A[low..high]); O(1) work and depth."""
        tracker = ensure_tracker(tracker)
        n = len(self._array)
        check_rmq_range(low, high, n)
        b = self._block_size
        first_block, last_block = low // b, high // b
        tracker.tick(4)
        if first_block == last_block:
            return self._block_query(first_block, low % b, high % b)

        candidates: List[int] = [
            self._block_query(first_block, low % b, min(n - 1, (first_block + 1) * b - 1) % b),
            self._block_query(last_block, 0, high % b),
        ]
        if first_block + 1 <= last_block - 1:
            middle_block = self._summary.argmin(first_block + 1, last_block - 1, tracker)
            candidates.append(self._block_argmin[middle_block])

        best = min(
            candidates,
            key=lambda position: (self._array[position], position),
        )
        tracker.tick(len(candidates))
        return best

    def argmin_fast(self, low: int, high: int) -> int:
        """Untracked :meth:`argmin`: identical candidate logic, no charging."""
        array = self._array
        n = len(array)
        check_rmq_range(low, high, n)
        b = self._block_size
        first_block, last_block = low // b, high // b
        if first_block == last_block:
            return self._block_query(first_block, low % b, high % b)
        candidates = [
            self._block_query(
                first_block, low % b, min(n - 1, (first_block + 1) * b - 1) % b
            ),
            self._block_query(last_block, 0, high % b),
        ]
        if first_block + 1 <= last_block - 1:
            middle_block = self._summary.argmin_fast(first_block + 1, last_block - 1)
            candidates.append(self._block_argmin[middle_block])
        return min(candidates, key=lambda position: (array[position], position))

    def range_min(self, low: int, high: int, tracker: Optional[CostTracker] = None):
        return self._array[self.argmin(low, high, tracker)]

    def value_at(self, position: int):
        """The array value at ``position`` (for partial-aggregate merging)."""
        return self._array[position]

    # -- delta maintenance (paper, Section 4(7)) ------------------------------

    def point_update(self, position: int, value, tracker: Optional[CostTracker] = None) -> None:
        """``A[position] = value``: re-sign one block, repair the summary.

        A point write lands in exactly one block: its Cartesian signature and
        argmin are recomputed in O(b) = O(log n), a missing lookup table is
        materialized in O(b^2) = O(log^2 n), and the block-minima summary is
        repaired through :meth:`SparseTable.point_update` in O(n / b).
        Everything else -- every other block's signature and table -- is
        untouched, which is what makes this a |CHANGED|-bounded repair
        instead of the O(n) rebuild.
        """
        tracker = ensure_tracker(tracker)
        check_rmq_range(position, position, len(self._array))
        self._array[position] = value
        b = self._block_size
        block_index = position // b
        start = block_index * b
        block = self._array[start : start + b]
        tracker.tick(len(block))
        best = 0
        for offset in range(1, len(block)):
            if block[offset] < block[best]:
                best = offset
        self._block_argmin[block_index] = start + best
        signature = _cartesian_signature(block)
        tracker.tick(len(block))
        self._signatures[block_index] = signature
        if signature not in self._tables:
            self._tables[signature] = _in_block_table(block)
            tracker.tick(len(block) ** 2)
        self._summary.point_update(block_index, block[best], tracker)

    # -- serialization --------------------------------------------------------

    def to_state(self) -> dict:
        """Plain-data snapshot: blocks, signatures, shared in-block tables and
        the summary sparse table, so load restores O(1) queries directly."""
        return {
            "array": list(self._array),
            "block_size": self._block_size,
            "block_argmin": list(self._block_argmin),
            "signatures": list(self._signatures),
            "tables": {sig: [list(row) for row in table] for sig, table in self._tables.items()},
            "summary": self._summary.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "FischerHeunRMQ":
        rmq = cls.__new__(cls)
        rmq._array = list(state["array"])
        rmq._block_size = int(state["block_size"])
        rmq._block_argmin = list(state["block_argmin"])
        rmq._signatures = list(state["signatures"])
        rmq._tables = {
            sig: [list(row) for row in table] for sig, table in state["tables"].items()
        }
        rmq._summary = SparseTable.from_state(state["summary"])
        return rmq
