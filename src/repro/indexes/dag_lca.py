"""Lowest common ancestors in DAGs (paper, Section 4(4), citing [5]).

The paper's L3: given a DAG G and nodes u, v, find a node w that is an
ancestor of both (reflexively) and has no descendant that is also a common
ancestor.  Such a *representative* LCA always exists when u and v share any
ancestor: the common ancestor with the highest topological rank qualifies,
because all of its proper descendants rank strictly higher and it is the
highest-ranked common ancestor.

Preprocessing (within the O(|G|^3) budget the paper quotes from [5]):

* a topological order of G;
* per-vertex *ancestor bitsets* in topological-rank space (reflexive), built
  in one forward sweep -- O(n * m / wordsize) word operations using Python's
  arbitrary-precision integers as bitsets;
* optionally (``all_pairs=True``) the full n x n answer table, giving the
  literal O(1) table lookup of [5].

Queries: AND two ancestor bitsets, take the highest set bit (the
topologically deepest common ancestor), map the rank back to a vertex.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import GraphError
from repro.graphs.graph import Digraph
from repro.graphs.scc import topological_order

__all__ = ["DagLCAIndex", "naive_dag_lca"]


class DagLCAIndex:
    """Representative-LCA index over a DAG."""

    def __init__(
        self,
        dag: Digraph,
        *,
        all_pairs: bool = False,
        tracker: Optional[CostTracker] = None,
    ):
        tracker = ensure_tracker(tracker)
        self.n = dag.n
        order = topological_order(dag, tracker)  # raises on cycles
        self._rank = [0] * dag.n  # vertex -> topological rank
        self._vertex_at = [0] * dag.n  # rank -> vertex
        for rank, vertex in enumerate(order):
            self._rank[vertex] = rank
            self._vertex_at[rank] = vertex

        # ancestors[rank of v] = bitset (over ranks) of reflexive ancestors.
        words = max(1, dag.n // 64)
        self._ancestors: List[int] = [0] * dag.n
        for rank, vertex in enumerate(order):
            bits = 1 << rank
            # All ancestors of v are unions over in-edges; sweeping in
            # topological order guarantees predecessors are final.
            for predecessor_rank in _iter_bits(self._predecessor_mask(dag, vertex)):
                bits |= self._ancestors[predecessor_rank]
                tracker.tick(words)
            self._ancestors[rank] = bits

        self._table: Optional[List[List[int]]] = None
        if all_pairs:
            table = [[-1] * dag.n for _ in range(dag.n)]
            for u in range(dag.n):
                for v in range(dag.n):
                    table[u][v] = self._lca_by_bitset(u, v, tracker)
            self._table = table

    def _predecessor_mask(self, dag: Digraph, vertex: int) -> int:
        """Bitset of the *ranks* of vertex's direct predecessors."""
        # Built on demand from the reversed adjacency walk: scanning all
        # edges once per vertex would be O(nm); instead cache the reverse.
        if not hasattr(self, "_reverse"):
            reverse: List[List[int]] = [[] for _ in range(dag.n)]
            for u, v in dag.edges():
                reverse[v].append(u)
            self._reverse = reverse
        mask = 0
        for predecessor in self._reverse[vertex]:
            mask |= 1 << self._rank[predecessor]
        return mask

    def _lca_by_bitset(self, u: int, v: int, tracker: CostTracker) -> int:
        import math

        common = self._ancestors[self._rank[u]] & self._ancestors[self._rank[v]]
        # PRAM view: the n-bit AND is depth O(1) with n processors, and the
        # highest set bit is a max-reduction tree of depth O(log n).
        log_n = max(1, math.ceil(math.log2(max(self.n, 2))))
        tracker.tick(work=2 * max(1, self.n // 64) + log_n, depth=1 + log_n)
        if common == 0:
            return -1
        return self._vertex_at[common.bit_length() - 1]

    def lca(self, u: int, v: int, tracker: Optional[CostTracker] = None) -> int:
        """A representative LCA of u and v, or -1 when none exists.

        O(1) with the all-pairs table; O(n / wordsize) word operations (O(1)
        PRAM depth after an OR-tree) with bitsets.
        """
        tracker = ensure_tracker(tracker)
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise GraphError(f"vertex out of range: {u}, {v}")
        if self._table is not None:
            tracker.tick(1)
            return self._table[u][v]
        return self._lca_by_bitset(u, v, tracker)

    def all_lcas(self, u: int, v: int) -> List[int]:
        """Every LCA: common ancestors with no common-ancestor descendant.

        Used by tests to check that :meth:`lca` returns a member of the full
        answer set.  O(n^2 / wordsize).
        """
        common = self._ancestors[self._rank[u]] & self._ancestors[self._rank[v]]
        result = []
        for rank in _iter_bits(common):
            # w is an LCA iff no *other* common ancestor has w as ancestor.
            w_bit = 1 << rank
            has_common_descendant = False
            for other_rank in _iter_bits(common):
                if other_rank != rank and self._ancestors[other_rank] & w_bit:
                    has_common_descendant = True
                    break
            if not has_common_descendant:
                result.append(self._vertex_at[rank])
        return sorted(result)

    def is_ancestor(self, u: int, v: int) -> bool:
        """Reflexive ancestry test via the bitsets."""
        return bool(self._ancestors[self._rank[v]] & (1 << self._rank[u]))

    # -- serialization --------------------------------------------------------

    def to_state(self) -> dict:
        """Plain-data snapshot: ranks and ancestor bitsets (Python ints),
        plus the all-pairs table when it was built."""
        return {
            "n": self.n,
            "rank": list(self._rank),
            "vertex_at": list(self._vertex_at),
            "ancestors": list(self._ancestors),
            "table": None if self._table is None else [list(row) for row in self._table],
        }

    @classmethod
    def from_state(cls, state: dict) -> "DagLCAIndex":
        index = cls.__new__(cls)
        index.n = int(state["n"])
        index._rank = list(state["rank"])
        index._vertex_at = list(state["vertex_at"])
        index._ancestors = list(state["ancestors"])
        table = state["table"]
        index._table = None if table is None else [list(row) for row in table]
        return index


def naive_dag_lca(
    dag: Digraph,
    u: int,
    v: int,
    tracker: Optional[CostTracker] = None,
) -> int:
    """Per-query baseline: two reverse-reachability BFS runs, Theta(n + m).

    Computes both ancestor sets from scratch, intersects, and returns the
    topologically-last member -- no preprocessing reused across queries.
    """
    from repro.graphs.traversal import reachable_from

    tracker = ensure_tracker(tracker)
    reverse = dag.reversed()
    ancestors_u = reachable_from(reverse, u, tracker)
    ancestors_v = reachable_from(reverse, v, tracker)
    common = ancestors_u & ancestors_v
    if not common:
        return -1
    order = topological_order(dag, tracker)
    position = {vertex: rank for rank, vertex in enumerate(order)}
    return max(common, key=lambda w: position[w])


def _iter_bits(mask: int):
    """Yield the positions of set bits, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
