"""Hash index: O(1) expected point lookup.

A dictionary-backed secondary index over one attribute.  Together with the
B+-tree it lets the selection experiments contrast O(1) hash probes with
O(log n) tree probes and O(n) scans.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.cost import CostTracker, ensure_tracker

__all__ = ["HashIndex"]


class HashIndex:
    """Key -> list-of-payloads map with cost-charged probes."""

    def __init__(self) -> None:
        self._buckets: Dict[Hashable, List[Any]] = {}
        self._size = 0

    @classmethod
    def build(
        cls,
        entries: Sequence[Tuple[Hashable, Any]],
        tracker: Optional[CostTracker] = None,
    ) -> "HashIndex":
        """PTIME preprocessing: one insert (O(1) expected) per entry."""
        tracker = ensure_tracker(tracker)
        index = cls()
        for key, payload in entries:
            index.insert(key, payload, tracker)
        return index

    def insert(self, key: Hashable, payload: Any, tracker: Optional[CostTracker] = None) -> None:
        ensure_tracker(tracker).tick(1)
        self._buckets.setdefault(key, []).append(payload)
        self._size += 1

    def delete(self, key: Hashable, payload: Any = None, tracker: Optional[CostTracker] = None) -> bool:
        ensure_tracker(tracker).tick(1)
        bucket = self._buckets.get(key)
        if not bucket:
            return False
        if payload is None:
            bucket.pop()
        else:
            try:
                bucket.remove(payload)
            except ValueError:
                return False
        if not bucket:
            del self._buckets[key]
        self._size -= 1
        return True

    def search(self, key: Hashable, tracker: Optional[CostTracker] = None) -> List[Any]:
        ensure_tracker(tracker).tick(1)
        return list(self._buckets.get(key, ()))

    def contains(self, key: Hashable, tracker: Optional[CostTracker] = None) -> bool:
        ensure_tracker(tracker).tick(1)
        return key in self._buckets

    def contains_fast(self, key: Hashable) -> bool:
        """Untracked :meth:`contains`: one C dict probe, no charging."""
        return key in self._buckets

    def __len__(self) -> int:
        return self._size

    def distinct_keys(self) -> int:
        return len(self._buckets)

    # -- serialization --------------------------------------------------------

    def to_state(self) -> dict:
        """Plain-data snapshot for artifact persistence."""
        return {"buckets": [(key, list(bucket)) for key, bucket in self._buckets.items()]}

    @classmethod
    def from_state(cls, state: dict) -> "HashIndex":
        index = cls()
        for key, bucket in state["buckets"]:
            index._buckets[key] = list(bucket)
            index._size += len(bucket)
        return index
