"""A B+-tree, from scratch (paper, Example 1 and Section 4(1)).

This is the preprocessing structure of the paper's motivating example: build
it once over a column in PTIME (O(n log n) inserts), then answer point and
range selection queries in O(log n) -- seconds instead of 1.9 days on the
petabyte thought experiment.

Design notes
------------
* Order ``order`` bounds the number of keys per node; nodes split at
  ``order`` keys and (except the root) rebalance below ``order // 2``.
* Leaves hold ``(key, [payloads])`` pairs -- duplicates accumulate payloads
  under one key -- and are chained left-to-right for range scans.
* Internal separator invariant: ``children[i]`` holds keys < ``keys[i]``,
  ``children[i+1]`` holds keys >= ``keys[i]``.
* Full deletion with borrow-from-sibling and merge rebalancing is
  implemented; the incremental-preprocessing case study (Section 4(7))
  exercises it.
* Every node visit charges ``1 + ceil(log2(#keys))`` cost units (binary
  search within the node), so a root-to-leaf probe costs Theta(log n) --
  the quantity the certifier fits.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterator, List, Optional, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import IndexError_

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = ("leaf", "keys", "children", "values", "next")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.keys: List[Any] = []
        self.children: List["_Node"] = []  # internal only
        self.values: List[List[Any]] = []  # leaf only; parallel to keys
        self.next: Optional["_Node"] = None  # leaf chain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "Leaf" if self.leaf else "Node"
        return f"{kind}(keys={self.keys})"


def _search_charge(node: _Node, tracker: CostTracker) -> None:
    """Charge one node visit: O(log(#keys)) comparisons plus the hop."""
    width = max(len(node.keys), 1)
    tracker.tick(1 + math.ceil(math.log2(width)) if width > 1 else 1)


class BPlusTree:
    """A B+-tree over totally ordered keys with duplicate support."""

    def __init__(self, order: int = 32) -> None:
        if order < 4:
            raise IndexError_("B+-tree order must be at least 4")
        self.order = order
        self._root: _Node = _Node(leaf=True)
        self._size = 0  # number of (key, payload) entries

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        height = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            height += 1
        return height

    # -- bulk construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        entries: List[Tuple[Any, Any]],
        *,
        order: int = 32,
        tracker: Optional[CostTracker] = None,
    ) -> "BPlusTree":
        """PTIME preprocessing: insert every (key, payload) pair.

        Charges the comparison cost of each insert, Theta(n log n) overall.
        """
        tracker = ensure_tracker(tracker)
        tree = cls(order=order)
        for key, payload in entries:
            tree.insert(key, payload, tracker)
        return tree

    # -- point operations ---------------------------------------------------------

    def _descend(self, key: Any, tracker: CostTracker) -> Tuple[_Node, List[Tuple[_Node, int]]]:
        """Walk to the leaf for ``key``; returns (leaf, path of (node, child_idx))."""
        path: List[Tuple[_Node, int]] = []
        node = self._root
        while not node.leaf:
            _search_charge(node, tracker)
            index = bisect.bisect_right(node.keys, key)
            path.append((node, index))
            node = node.children[index]
        _search_charge(node, tracker)
        return node, path

    def insert(self, key: Any, payload: Any, tracker: Optional[CostTracker] = None) -> None:
        tracker = ensure_tracker(tracker)
        leaf, path = self._descend(key, tracker)
        position = bisect.bisect_left(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            leaf.values[position].append(payload)
        else:
            leaf.keys.insert(position, key)
            leaf.values.insert(position, [payload])
        self._size += 1
        # Split back up the path while nodes overflow.
        node = leaf
        while len(node.keys) >= self.order:
            sibling, separator = self._split(node)
            if path:
                parent, child_index = path.pop()
                parent.keys.insert(child_index, separator)
                parent.children.insert(child_index + 1, sibling)
                tracker.tick(1)
                node = parent
            else:
                new_root = _Node(leaf=False)
                new_root.keys = [separator]
                new_root.children = [node, sibling]
                self._root = new_root
                tracker.tick(1)
                break

    def _split(self, node: _Node) -> Tuple[_Node, Any]:
        """Split an overflowing node; returns (right sibling, separator key)."""
        middle = len(node.keys) // 2
        sibling = _Node(leaf=node.leaf)
        if node.leaf:
            sibling.keys = node.keys[middle:]
            sibling.values = node.values[middle:]
            node.keys = node.keys[:middle]
            node.values = node.values[:middle]
            sibling.next = node.next
            node.next = sibling
            separator = sibling.keys[0]
        else:
            separator = node.keys[middle]
            sibling.keys = node.keys[middle + 1 :]
            sibling.children = node.children[middle + 1 :]
            node.keys = node.keys[:middle]
            node.children = node.children[: middle + 1]
        return sibling, separator

    def search(self, key: Any, tracker: Optional[CostTracker] = None) -> List[Any]:
        """All payloads stored under ``key`` (empty list when absent)."""
        tracker = ensure_tracker(tracker)
        leaf, _ = self._descend(key, tracker)
        position = bisect.bisect_left(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            return list(leaf.values[position])
        return []

    def contains(self, key: Any, tracker: Optional[CostTracker] = None) -> bool:
        """The Boolean point-selection query of Example 1: exists t[A] = c?"""
        tracker = ensure_tracker(tracker)
        leaf, _ = self._descend(key, tracker)
        position = bisect.bisect_left(leaf.keys, key)
        return position < len(leaf.keys) and leaf.keys[position] == key

    # -- untracked serving kernels ----------------------------------------------

    def _descend_fast(self, key: Any) -> _Node:
        """Root-to-leaf walk with no charging and no path bookkeeping."""
        node = self._root
        right = bisect.bisect_right
        while not node.leaf:
            node = node.children[right(node.keys, key)]
        return node

    def contains_fast(self, key: Any) -> bool:
        """Untracked :meth:`contains`: C ``bisect`` probes per node only."""
        leaf = self._descend_fast(key)
        position = bisect.bisect_left(leaf.keys, key)
        return position < len(leaf.keys) and leaf.keys[position] == key

    def range_nonempty_fast(self, low: Any, high: Any) -> bool:
        """Untracked :meth:`range_nonempty` (same leftmost-candidate logic)."""
        leaf = self._descend_fast(low)
        position = bisect.bisect_left(leaf.keys, low)
        if position == len(leaf.keys):
            node = leaf.next
            if node is None or not node.keys:
                return False
            return node.keys[0] <= high
        return leaf.keys[position] <= high

    # -- range operations -----------------------------------------------------------

    def range_iter(
        self,
        low: Any,
        high: Any,
        tracker: Optional[CostTracker] = None,
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, payload) with ``low <= key <= high`` in key order.

        Costs O(log n + k) where k is the number of results.
        """
        tracker = ensure_tracker(tracker)
        leaf, _ = self._descend(low, tracker)
        position = bisect.bisect_left(leaf.keys, low)
        node: Optional[_Node] = leaf
        while node is not None:
            while position < len(node.keys):
                key = node.keys[position]
                tracker.tick(1)
                if key > high:
                    return
                for payload in node.values[position]:
                    yield key, payload
                position += 1
            node = node.next
            position = 0
            if node is not None:
                tracker.tick(1)

    def range_nonempty(
        self,
        low: Any,
        high: Any,
        tracker: Optional[CostTracker] = None,
    ) -> bool:
        """The Boolean range-selection query of Section 4(1): any key in
        [low, high]?  O(log n) -- only the leftmost candidate is inspected."""
        tracker = ensure_tracker(tracker)
        leaf, _ = self._descend(low, tracker)
        position = bisect.bisect_left(leaf.keys, low)
        if position == len(leaf.keys):
            node = leaf.next
            if node is None:
                return False
            tracker.tick(1)
            if not node.keys:
                return False
            return node.keys[0] <= high
        tracker.tick(1)
        return leaf.keys[position] <= high

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All (key, payload) pairs in key order (no cost; testing helper)."""
        node: Optional[_Node] = self._root
        while not node.leaf:
            node = node.children[0]
        while node is not None:
            for key, payloads in zip(node.keys, node.values):
                for payload in payloads:
                    yield key, payload
            node = node.next

    def keys(self) -> List[Any]:
        return [key for key, _ in self.items()]

    # -- deletion ---------------------------------------------------------------------

    def delete(
        self,
        key: Any,
        payload: Any = None,
        tracker: Optional[CostTracker] = None,
    ) -> bool:
        """Remove one entry under ``key``.

        With ``payload=None`` any one payload for the key is removed;
        otherwise only a matching payload.  Returns False when nothing
        matched.  Rebalances by borrowing from or merging with siblings.
        """
        tracker = ensure_tracker(tracker)
        leaf, path = self._descend(key, tracker)
        position = bisect.bisect_left(leaf.keys, key)
        if position >= len(leaf.keys) or leaf.keys[position] != key:
            return False
        payloads = leaf.values[position]
        if payload is None:
            payloads.pop()
        else:
            try:
                payloads.remove(payload)
            except ValueError:
                return False
        self._size -= 1
        if payloads:
            return True
        leaf.keys.pop(position)
        leaf.values.pop(position)
        self._rebalance(leaf, path, tracker)
        return True

    def _min_keys(self) -> int:
        # A split at `order` keys leaves the smaller half with
        # order - order//2 - 1 keys (internal node), so that is the floor.
        return max(1, self.order // 2 - 1)

    def _rebalance(
        self,
        node: _Node,
        path: List[Tuple[_Node, int]],
        tracker: CostTracker,
    ) -> None:
        while node is not self._root and len(node.keys) < self._min_keys():
            parent, child_index = path.pop()
            tracker.tick(1)
            if self._borrow(parent, child_index):
                return
            self._merge(parent, child_index)
            node = parent
        if not self._root.leaf and len(self._root.keys) == 0:
            self._root = self._root.children[0]

    def _borrow(self, parent: _Node, child_index: int) -> bool:
        """Try to borrow one entry from an adjacent richer sibling."""
        node = parent.children[child_index]
        minimum = self._min_keys()
        # Borrow from the left sibling.
        if child_index > 0:
            left = parent.children[child_index - 1]
            if len(left.keys) > minimum:
                if node.leaf:
                    node.keys.insert(0, left.keys.pop())
                    node.values.insert(0, left.values.pop())
                    parent.keys[child_index - 1] = node.keys[0]
                else:
                    node.keys.insert(0, parent.keys[child_index - 1])
                    parent.keys[child_index - 1] = left.keys.pop()
                    node.children.insert(0, left.children.pop())
                return True
        # Borrow from the right sibling.
        if child_index + 1 < len(parent.children):
            right = parent.children[child_index + 1]
            if len(right.keys) > minimum:
                if node.leaf:
                    node.keys.append(right.keys.pop(0))
                    node.values.append(right.values.pop(0))
                    parent.keys[child_index] = right.keys[0]
                else:
                    node.keys.append(parent.keys[child_index])
                    parent.keys[child_index] = right.keys.pop(0)
                    node.children.append(right.children.pop(0))
                return True
        return False

    def _merge(self, parent: _Node, child_index: int) -> None:
        """Merge the underflowing child with a sibling (left-preferring)."""
        if child_index > 0:
            left_index = child_index - 1
        else:
            left_index = child_index
        left = parent.children[left_index]
        right = parent.children[left_index + 1]
        separator = parent.keys[left_index]
        if left.leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            left.keys.append(separator)
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    # -- serialization ----------------------------------------------------------------

    def to_state(self) -> dict:
        """Plain-data snapshot for artifact persistence.

        Leaves are flattened into one key-ordered ``(key, payloads)`` run;
        the internal structure is *not* stored because :meth:`from_state`
        rebuilds it bottom-up in linear time.  A flat run also sidesteps the
        recursion depth a naive pickle of the leaf chain would hit.
        """
        entries = []
        node: Optional[_Node] = self._root
        while not node.leaf:
            node = node.children[0]
        while node is not None:
            for key, payloads in zip(node.keys, node.values):
                entries.append((key, list(payloads)))
            node = node.next
        return {"order": self.order, "entries": entries}

    @classmethod
    def from_state(cls, state: dict) -> "BPlusTree":
        """Rebuild from :meth:`to_state` output by bottom-up bulk loading.

        O(n): leaves are cut from the sorted run, then each internal level
        groups the one below, using the smallest key of each right subtree
        as the separator.  An undersized tail chunk is merged into its left
        neighbour; the merged node stays under ``order`` because chunks are
        cut at roughly half capacity.
        """
        tree = cls(order=int(state["order"]))
        entries: List[Tuple[Any, List[Any]]] = list(state["entries"])
        if not entries:
            return tree

        def chunk(items: List[Any], size: int, minimum: int) -> List[List[Any]]:
            chunks = [items[i : i + size] for i in range(0, len(items), size)]
            if len(chunks) > 1 and len(chunks[-1]) < minimum:
                tail = chunks.pop()
                chunks[-1] = chunks[-1] + tail
            return chunks

        minimum = tree._min_keys()
        fill = max(minimum + 1, tree.order // 2)
        leaves: List[_Node] = []
        for group in chunk(entries, fill, minimum):
            leaf = _Node(leaf=True)
            leaf.keys = [key for key, _ in group]
            leaf.values = [list(payloads) for _, payloads in group]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)

        level: List[_Node] = leaves
        lows: List[Any] = [node.keys[0] for node in level]
        while len(level) > 1:
            parents: List[_Node] = []
            parent_lows: List[Any] = []
            start = 0
            for group in chunk(level, fill + 1, minimum + 1):
                parent = _Node(leaf=False)
                parent.children = group
                parent.keys = lows[start + 1 : start + len(group)]
                parents.append(parent)
                parent_lows.append(lows[start])
                start += len(group)
            level, lows = parents, parent_lows
        tree._root = level[0]
        tree._size = sum(len(payloads) for _, payloads in entries)
        return tree

    # -- invariants (used by property tests) ----------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        minimum = self._min_keys()

        def walk(node: _Node, low: Any, high: Any, depth: int) -> int:
            assert len(node.keys) < self.order, "node overflow"
            if node is not self._root:
                assert len(node.keys) >= minimum, f"underfull node {node.keys}"
            assert node.keys == sorted(node.keys), "keys out of order"
            for key in node.keys:
                if low is not None:
                    assert key >= low, "separator invariant (low)"
                if high is not None:
                    assert key < high, "separator invariant (high)"
            if node.leaf:
                assert len(node.keys) == len(node.values)
                assert all(payloads for payloads in node.values), "empty payload list"
                return depth
            assert len(node.children) == len(node.keys) + 1
            depths = set()
            bounds = [low, *node.keys, high]
            for index, child in enumerate(node.children):
                depths.add(walk(child, bounds[index], bounds[index + 1], depth + 1))
            assert len(depths) == 1, "leaves at differing depths"
            return depths.pop()

        walk(self._root, None, None, 0)
        assert self._size == sum(1 for _ in self.items()), "size counter drift"
