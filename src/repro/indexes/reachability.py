"""Transitive-closure reachability index (paper, Example 3).

Example 3's preprocessing for the Graph Accessibility Problem: "precompute a
matrix that records the reachability between all pairs of nodes, then answer
all queries in O(1)".  The build runs in PTIME:

1. condense the digraph (vertices in one SCC are mutually reachable);
2. sweep the condensation in reverse topological order, OR-ing successor
   reachability bitsets -- O((n + m) * n / wordsize) word operations with
   Python integers as bitsets;
3. answer ``u ->* v`` by one bit test on the component-level closure.

``as_matrix`` exports the vertex-level closure as a numpy Boolean matrix for
cross-checking against the NC matrix-squaring evaluator in
:mod:`repro.parallel.primitives`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import GraphError
from repro.graphs.graph import Digraph
from repro.graphs.scc import condensation

__all__ = ["TransitiveClosureIndex"]


class TransitiveClosureIndex:
    """O(1) reachability queries after PTIME closure computation."""

    def __init__(self, graph: Digraph, tracker: Optional[CostTracker] = None):
        tracker = ensure_tracker(tracker)
        self.n = graph.n
        dag, component_of = condensation(graph, tracker)
        self._component_of = component_of

        # Component ids are topologically ordered (sources first), so a
        # reverse sweep sees all successors before each vertex.
        words = max(1, dag.n // 64)
        closure: List[int] = [0] * dag.n
        for component in range(dag.n - 1, -1, -1):
            bits = 1 << component
            for successor in dag.neighbors(component):
                bits |= closure[successor]
                tracker.tick(words)
            closure[component] = bits
        self._closure = closure
        self._dag_size = dag.n

    def reachable(self, source: int, target: int, tracker: Optional[CostTracker] = None) -> bool:
        """``source ->* target``; one bit probe, O(1)."""
        tracker = ensure_tracker(tracker)
        if not (0 <= source < self.n and 0 <= target < self.n):
            raise GraphError(f"vertex out of range: {source}, {target}")
        tracker.tick(1)
        return bool(
            self._closure[self._component_of[source]]
            & (1 << self._component_of[target])
        )

    def reachable_fast(self, source: int, target: int) -> bool:
        """Untracked :meth:`reachable`: same bounds check, one bit probe."""
        if not (0 <= source < self.n and 0 <= target < self.n):
            raise GraphError(f"vertex out of range: {source}, {target}")
        component_of = self._component_of
        return bool(
            self._closure[component_of[source]] >> component_of[target] & 1
        )

    # -- delta maintenance (paper, Section 4(7)) ------------------------------

    def insert_edge(self, source: int, target: int, tracker: Optional[CostTracker] = None) -> int:
        """Fold edge ``(source, target)`` into the closure; returns new pairs.

        Italiano-style incremental maintenance at component granularity: the
        new reachable pairs are exactly ``ancestors(source) x
        descendants(target)``, so every component whose closure contains
        ``source``'s component ORs in ``target``'s descendant bitset.  A
        cycle-creating edge is handled without recomputing SCCs -- the
        component partition just stays finer than the true SCCs, which never
        changes vertex-level reachability.  Work is one bit probe per
        component plus one word-OR per changed word (the |dO| part of
        |CHANGED|), versus the full condensation sweep of a rebuild.
        """
        tracker = ensure_tracker(tracker)
        if not (0 <= source < self.n and 0 <= target < self.n):
            raise GraphError(f"vertex out of range: {source}, {target}")
        source_component = self._component_of[source]
        target_component = self._component_of[target]
        tracker.tick(1)
        if self._closure[source_component] >> target_component & 1:
            return 0
        gain = self._closure[target_component]
        new_pairs = 0
        for component in range(self._dag_size):
            if self._closure[component] >> source_component & 1:
                gained = gain & ~self._closure[component]
                if gained:
                    self._closure[component] |= gained
                    gained_count = gained.bit_count()
                    new_pairs += gained_count
                    tracker.tick(gained_count)
                else:
                    tracker.tick(1)
            else:
                tracker.tick(1)
        return new_pairs

    def descendants(self, source: int) -> List[int]:
        """All vertices reachable from ``source`` (reflexive)."""
        bits = self._closure[self._component_of[source]]
        return [
            vertex
            for vertex in range(self.n)
            if bits & (1 << self._component_of[vertex])
        ]

    def reachable_pair_count(self) -> int:
        """Number of ordered reachable vertex pairs (reflexive); an
        equivalence check used by the compression case study."""
        component_sizes = [0] * self._dag_size
        for component in self._component_of:
            component_sizes[component] += 1
        total = 0
        for component, bits in enumerate(self._closure):
            reachable_vertices = 0
            remaining = bits
            while remaining:
                low = remaining & -remaining
                reachable_vertices += component_sizes[low.bit_length() - 1]
                remaining ^= low
            total += component_sizes[component] * reachable_vertices
        return total

    # -- serialization --------------------------------------------------------

    def to_state(self) -> dict:
        """Plain-data snapshot: the condensation map and closure bitsets."""
        return {
            "n": self.n,
            "component_of": list(self._component_of),
            "closure": list(self._closure),
            "dag_size": self._dag_size,
        }

    @classmethod
    def from_state(cls, state: dict) -> "TransitiveClosureIndex":
        index = cls.__new__(cls)
        index.n = int(state["n"])
        index._component_of = list(state["component_of"])
        index._closure = list(state["closure"])
        index._dag_size = int(state["dag_size"])
        return index

    def as_matrix(self) -> np.ndarray:
        """The vertex-level reflexive closure as a Boolean numpy matrix."""
        matrix = np.zeros((self.n, self.n), dtype=bool)
        for source in range(self.n):
            bits = self._closure[self._component_of[source]]
            for target in range(self.n):
                if bits & (1 << self._component_of[target]):
                    matrix[source, target] = True
        return matrix
