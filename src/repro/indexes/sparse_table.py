"""Sparse table for range-minimum queries: O(n log n) build, O(1) query.

The standard idempotent-operator sparse table: ``table[k][i]`` holds the
position of the minimum of ``A[i : i + 2^k]``; a query [i, j] combines the
two overlapping dyadic windows that cover it.  This is both (a) a direct
preprocessing scheme for the MRQ case study (Section 4(3)) and (b) the
building block of the Fischer--Heun structure in :mod:`repro.indexes.rmq`
and of the Euler-tour LCA in :mod:`repro.indexes.euler_lca`.

Ties break to the *leftmost* minimum position throughout, so every RMQ
implementation in the package agrees exactly, not just up to value.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import IndexError_

__all__ = ["SparseTable", "check_rmq_range", "naive_range_min"]


def check_rmq_range(low: int, high: int, size: int) -> None:
    """Validate an inclusive RMQ window [low, high] against an array size.

    The single bounds check shared by every RMQ surface (sparse table,
    Fischer--Heun, the naive baseline, and the sharded window router), so
    all paths reject malformed windows with the identical error.
    """
    if not 0 <= low <= high < size:
        raise IndexError_(f"bad RMQ range [{low}, {high}] for n={size}")


class SparseTable:
    """Positions-of-minima sparse table over a static array."""

    def __init__(self, array: Sequence, tracker: Optional[CostTracker] = None):
        tracker = ensure_tracker(tracker)
        self._array = list(array)
        n = len(self._array)
        self._log = _floor_logs(n)
        levels: List[List[int]] = [list(range(n))]
        k = 1
        while (1 << k) <= n:
            previous = levels[k - 1]
            width = 1 << (k - 1)
            level = []
            for i in range(n - (1 << k) + 1):
                left = previous[i]
                right = previous[i + width]
                tracker.tick(1)
                level.append(left if self._array[left] <= self._array[right] else right)
            levels.append(level)
            k += 1
        self._levels = levels

    def __len__(self) -> int:
        return len(self._array)

    def argmin(self, low: int, high: int, tracker: Optional[CostTracker] = None) -> int:
        """Leftmost position of the minimum of ``A[low..high]`` (inclusive).

        O(1): two table probes and one comparison.
        """
        tracker = ensure_tracker(tracker)
        check_rmq_range(low, high, len(self._array))
        span = high - low + 1
        k = self._log[span]
        left = self._levels[k][low]
        right = self._levels[k][high - (1 << k) + 1]
        tracker.tick(3)
        if self._array[left] <= self._array[right]:
            return left
        return right

    def argmin_fast(self, low: int, high: int) -> int:
        """Untracked :meth:`argmin`: same two probes, no charging."""
        array = self._array
        check_rmq_range(low, high, len(array))
        k = self._log[high - low + 1]
        level = self._levels[k]
        left = level[low]
        right = level[high - (1 << k) + 1]
        return left if array[left] <= array[right] else right

    def range_min(self, low: int, high: int, tracker: Optional[CostTracker] = None):
        return self._array[self.argmin(low, high, tracker)]

    def value_at(self, position: int):
        """The array value at ``position`` (for partial-aggregate merging)."""
        return self._array[position]

    # -- delta maintenance (paper, Section 4(7)) ------------------------------

    def point_update(self, position: int, value, tracker: Optional[CostTracker] = None) -> None:
        """``A[position] = value``: repair only the dyadic windows covering it.

        Level k holds at most ``2^(k-1)`` windows containing ``position``,
        each repaired from its two children in O(1), so the total work is
        O(n) -- a log-factor below the O(n log n) rebuild, and far below it
        in wall-clock because nothing is re-allocated.
        """
        tracker = ensure_tracker(tracker)
        n = len(self._array)
        check_rmq_range(position, position, n)
        self._array[position] = value
        for k in range(1, len(self._levels)):
            previous = self._levels[k - 1]
            level = self._levels[k]
            width = 1 << (k - 1)
            low = max(0, position - (1 << k) + 1)
            high = min(position, n - (1 << k))
            for i in range(low, high + 1):
                left = previous[i]
                right = previous[i + width]
                tracker.tick(1)
                level[i] = left if self._array[left] <= self._array[right] else right

    # -- serialization --------------------------------------------------------

    def to_state(self) -> dict:
        """Plain-data snapshot: the array plus every precomputed level, so
        load restores O(1) queries without redoing the O(n log n) build."""
        return {"array": list(self._array), "levels": [list(level) for level in self._levels]}

    @classmethod
    def from_state(cls, state: dict) -> "SparseTable":
        table = cls.__new__(cls)
        table._array = list(state["array"])
        table._levels = [list(level) for level in state["levels"]]
        table._log = _floor_logs(len(table._array))
        return table


def _floor_logs(n: int) -> List[int]:
    """``log[v] = floor(log2 v)`` for v in [0, n]; log[0] unused."""
    logs = [0] * (n + 1)
    for v in range(2, n + 1):
        logs[v] = logs[v // 2] + 1
    return logs


def naive_range_min(
    array: Sequence,
    low: int,
    high: int,
    tracker: Optional[CostTracker] = None,
) -> int:
    """Reference/baseline: leftmost argmin by linear scan, Theta(j - i)."""
    tracker = ensure_tracker(tracker)
    check_rmq_range(low, high, len(array))
    best = low
    for position in range(low + 1, high + 1):
        tracker.tick(1)
        if array[position] < array[best]:
            best = position
    return best
