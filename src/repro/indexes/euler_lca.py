"""Lowest common ancestors in trees: Euler tour + RMQ (paper, Section 4(4)).

The classical reduction of LCA to range-minimum queries [5]: write down the
Euler tour of the rooted tree and the depth of each tour entry; the LCA of
u and v is the shallowest vertex between their first occurrences.  After the
PTIME preprocessing (tour + sparse table), every LCA query is O(1).

A per-query baseline :func:`naive_tree_lca` recomputes parents by BFS from
the root each time (Theta(n)) -- the cost the paper's preprocessing removes.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import GraphError
from repro.graphs.graph import Graph
from repro.indexes.sparse_table import SparseTable

__all__ = ["EulerTourLCA", "naive_tree_lca", "tree_parents"]


def tree_parents(
    tree: Graph,
    root: int,
    tracker: Optional[CostTracker] = None,
) -> List[int]:
    """Parent array by BFS from ``root``; parent[root] = -1.

    Raises GraphError if the graph is not a connected tree on its vertex set.
    """
    tracker = ensure_tracker(tracker)
    if tree.n == 0:
        raise GraphError("empty graph has no root")
    parent = [-2] * tree.n
    parent[root] = -1
    queue = deque([root])
    seen = 1
    while queue:
        node = queue.popleft()
        tracker.tick(1)
        for neighbor in tree.neighbors(node):
            tracker.tick(1)
            if parent[neighbor] == -2:
                parent[neighbor] = node
                seen += 1
                queue.append(neighbor)
    if seen != tree.n:
        raise GraphError("graph is not connected; not a tree")
    if tree.edge_count != tree.n - 1:
        raise GraphError("graph has extra edges; not a tree")
    return parent


class EulerTourLCA:
    """O(1) LCA queries on a rooted tree after O(n log n) preprocessing."""

    def __init__(self, tree: Graph, root: int = 0, tracker: Optional[CostTracker] = None):
        tracker = ensure_tracker(tracker)
        self.root = root
        self.parent = tree_parents(tree, root, tracker)

        tour: List[int] = []
        depths: List[int] = []
        first: List[int] = [-1] * tree.n
        # Iterative Euler tour: (vertex, depth, child iterator position).
        stack: List[Tuple[int, int, int]] = [(root, 0, 0)]
        while stack:
            vertex, depth, position = stack.pop()
            tracker.tick(1)
            if position == 0:
                first[vertex] = len(tour)
            tour.append(vertex)
            depths.append(depth)
            children = [w for w in tree.neighbors(vertex) if w != self.parent[vertex]]
            if position < len(children):
                stack.append((vertex, depth, position + 1))
                stack.append((children[position], depth + 1, 0))
        # Re-entering a vertex after each child appends it again, so the tour
        # has 2n - 1 entries; but the pop-reappend above also appends the
        # vertex once after the *last* child returns, giving the same bound.
        self._tour = tour
        self._first = first
        self._rmq = SparseTable(depths, tracker)

    def lca(self, u: int, v: int, tracker: Optional[CostTracker] = None) -> int:
        """The lowest common ancestor of u and v; O(1)."""
        tracker = ensure_tracker(tracker)
        if not (0 <= u < len(self._first) and 0 <= v < len(self._first)):
            raise GraphError(f"vertex out of range: {u}, {v}")
        left, right = self._first[u], self._first[v]
        if left > right:
            left, right = right, left
        tracker.tick(2)
        return self._tour[self._rmq.argmin(left, right, tracker)]

    def depth_of(self, v: int) -> int:
        depth = 0
        while self.parent[v] != -1:
            v = self.parent[v]
            depth += 1
        return depth

    def is_ancestor(self, u: int, v: int, tracker: Optional[CostTracker] = None) -> bool:
        """Is u an ancestor of v (reflexive)?  O(1) via one LCA query."""
        return self.lca(u, v, tracker) == u

    # -- serialization --------------------------------------------------------

    def to_state(self) -> dict:
        """Plain-data snapshot: tour, first occurrences and the depth RMQ."""
        return {
            "root": self.root,
            "parent": list(self.parent),
            "tour": list(self._tour),
            "first": list(self._first),
            "rmq": self._rmq.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "EulerTourLCA":
        index = cls.__new__(cls)
        index.root = int(state["root"])
        index.parent = list(state["parent"])
        index._tour = list(state["tour"])
        index._first = list(state["first"])
        index._rmq = SparseTable.from_state(state["rmq"])
        return index


def naive_tree_lca(
    tree: Graph,
    root: int,
    u: int,
    v: int,
    tracker: Optional[CostTracker] = None,
) -> int:
    """Per-query baseline: recompute parents by BFS, then climb.  Theta(n)."""
    tracker = ensure_tracker(tracker)
    parent = tree_parents(tree, root, tracker)

    ancestors = set()
    node = u
    while node != -1:
        tracker.tick(1)
        ancestors.add(node)
        node = parent[node]
    node = v
    while node not in ancestors:
        tracker.tick(1)
        node = parent[node]
    return node
