"""Index substrate: the preprocessing structures of the case studies.

=====================  ======================================================
``btree``              B+-tree (Example 1; point & range selection)
``hash_index``         hash index (O(1) point probes)
``sorted_run``         sort + binary search (Section 4(2), Example 5)
``sparse_table``       RMQ sparse table (O(n log n) / O(1))
``rmq``                Fischer--Heun RMQ (Section 4(3), [18])
``euler_lca``          tree LCA via Euler tour + RMQ (Section 4(4), [5])
``dag_lca``            DAG LCA via topological-rank bitsets (Section 4(4))
``reachability``       transitive-closure index (Example 3)
=====================  ======================================================
"""

from repro.indexes.btree import BPlusTree
from repro.indexes.dag_lca import DagLCAIndex, naive_dag_lca
from repro.indexes.euler_lca import EulerTourLCA, naive_tree_lca, tree_parents
from repro.indexes.hash_index import HashIndex
from repro.indexes.reachability import TransitiveClosureIndex
from repro.indexes.rmq import FischerHeunRMQ
from repro.indexes.sorted_run import KeyedRunIndex, SortedRunIndex
from repro.indexes.sparse_table import SparseTable, naive_range_min

__all__ = [
    "BPlusTree",
    "DagLCAIndex",
    "naive_dag_lca",
    "EulerTourLCA",
    "naive_tree_lca",
    "tree_parents",
    "HashIndex",
    "TransitiveClosureIndex",
    "FischerHeunRMQ",
    "KeyedRunIndex",
    "SortedRunIndex",
    "SparseTable",
    "naive_range_min",
]
