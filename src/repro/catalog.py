"""The catalog: every reproduced problem/class, assembled into the Figure 2
registry with its claims and evidence.

``build_registry`` is the one-stop entry point used by tests, benchmarks and
the quickstart example:

* with ``certify_all=False`` (default) entries carry claims, schemes and
  reductions but no measurements;
* with ``certify_all=True`` every (class, scheme) pair is run through the
  empirical certifier over a small size sweep, so the Figure 2 consistency
  check validates claims against actual measurements.  Classes whose claims
  *should* fail certification (the Figure 1 right-hand side, the Theorem 9
  class) are certified too -- their certificates are attached with the
  expectation recorded in ``notes``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.classes import Membership, Registry, RegistryEntry
from repro.core.query import PiScheme, QueryClass
from repro.core.tractability import Certificate, certify
from repro.queries import (
    bds_problem,
    bds_query_class,
    bds_trivial_query_class,
    btree_point_scheme,
    btree_range_scheme,
    closure_scheme,
    compression_scheme,
    cvp_factorized_class,
    cvp_problem,
    cvp_trivial_class,
    dag_bitset_scheme,
    dag_lca_class,
    euler_tour_scheme,
    fischer_heun_scheme,
    gate_table_scheme,
    hash_point_scheme,
    kernel_scheme,
    membership_class,
    nc_squaring_scheme,
    no_preprocessing_scheme,
    point_selection_class,
    position_dict_scheme,
    position_index_scheme,
    range_selection_class,
    reachability_class,
    reevaluate_scheme,
    rmq_class,
    sorted_run_scheme,
    sparse_table_scheme,
    tree_lca_class,
    vc_fixed_k_class,
    vc_problem,
    views_scheme,
)
from repro.core.language import decision_problem_of
from repro.queries import (
    agap_class,
    agap_problem,
    threshold_algorithm_scheme,
    topk_class,
    winning_set_scheme,
)
from repro.queries.sat import three_sat_problem
from repro.reductions_zoo import refactorize_cvp, refactorize_to_bds, solve_and_emit_bds

__all__ = ["build_registry", "build_query_engine", "CERTIFICATION_SIZES"]

#: Size sweep used when ``certify_all=True``; small enough for CI, large
#: enough for the scaling classifier to separate polylog from polynomial.
CERTIFICATION_SIZES: List[int] = [2**k for k in range(7, 12)]

#: Sweeps for classes whose naive evaluation or preprocessing is expensive
#: (quadratic-ish); kept smaller so certification stays fast.
SMALL_SIZES: List[int] = [2**k for k in range(5, 10)]


def _certify_all(
    query_class: QueryClass,
    schemes: Sequence[PiScheme],
    sizes: Sequence[int],
    queries_per_size: int,
) -> List[Certificate]:
    return [
        certify(
            query_class,
            scheme,
            sizes=sizes,
            queries_per_size=queries_per_size,
        )
        for scheme in schemes
    ]


def build_registry(
    *,
    certify_all: bool = False,
    queries_per_size: int = 12,
) -> Registry:
    """Assemble (and optionally measure) the full catalog."""
    registry = Registry()

    def add(
        name: str,
        claims: set,
        *,
        query_class: Optional[QueryClass] = None,
        schemes: Sequence[PiScheme] = (),
        sizes: Sequence[int] = CERTIFICATION_SIZES,
        paper_reference: str = "",
        notes: str = "",
        problem=None,
        reduction=None,
    ) -> RegistryEntry:
        certificates: List[Certificate] = []
        if certify_all and query_class is not None and schemes:
            certificates = _certify_all(query_class, schemes, sizes, queries_per_size)
        return registry.add(
            RegistryEntry(
                name=name,
                claims=claims,
                query_class=query_class,
                problem=problem,
                schemes=list(schemes),
                certificates=certificates,
                reduction_to_complete=reduction,
                paper_reference=paper_reference,
                notes=notes,
            )
        )

    in_pit0q = {Membership.P, Membership.PI_T0Q, Membership.PI_TQ}

    add(
        "point-selection",
        set(in_pit0q),
        query_class=point_selection_class(),
        schemes=[btree_point_scheme(), hash_point_scheme()],
        paper_reference="Example 1; Section 4(1)",
    )
    add(
        "range-selection",
        set(in_pit0q),
        query_class=range_selection_class(),
        schemes=[btree_range_scheme(), views_scheme()],
        paper_reference="Section 4(1); views: Section 4(6)",
    )
    add(
        "list-membership",
        set(in_pit0q),
        query_class=membership_class(),
        schemes=[sorted_run_scheme()],
        paper_reference="Section 4(2), problem L1",
    )
    add(
        "minimum-range-query",
        set(in_pit0q),
        query_class=rmq_class(),
        schemes=[fischer_heun_scheme(), sparse_table_scheme()],
        paper_reference="Section 4(3), problem L2 [18]",
    )
    add(
        "tree-lca",
        set(in_pit0q),
        query_class=tree_lca_class(),
        schemes=[euler_tour_scheme()],
        sizes=SMALL_SIZES,
        paper_reference="Section 4(4), problem L3 [5]",
        notes="naive baseline is Theta(n) per query; small sweep",
    )
    add(
        "dag-lca",
        set(in_pit0q),
        query_class=dag_lca_class(),
        schemes=[dag_bitset_scheme()],
        sizes=SMALL_SIZES,
        paper_reference="Section 4(4), problem L3 [5]",
    )
    add(
        "reachability",
        set(in_pit0q) | {Membership.NC},
        query_class=reachability_class(),
        schemes=[closure_scheme(), compression_scheme(), nc_squaring_scheme()],
        sizes=SMALL_SIZES,
        paper_reference="Example 3 (GAP, NL-complete); compression: 4(5)",
        notes="NC claim: GAP is NL-complete and NL is contained in NC",
    )
    add(
        "bds-order",
        set(in_pit0q) | {Membership.PI_TP},
        query_class=bds_query_class(),
        problem=bds_problem(),
        schemes=[position_index_scheme(), position_dict_scheme()],
        sizes=SMALL_SIZES,
        paper_reference="Examples 2/4/5; Theorem 5 (PiTP/PiTQ-complete)",
        notes="BDS is P-complete [21]; Pi-tractable under Upsilon_BDS",
    )
    add(
        "bds-order-trivial",
        {Membership.P, Membership.PI_TQ},
        query_class=bds_trivial_query_class(),
        schemes=[no_preprocessing_scheme()],
        sizes=SMALL_SIZES,
        reduction=refactorize_to_bds(bds_trivial_query_class()),
        paper_reference="Figure 1, right factorization Upsilon'",
        notes="expected NOT Pi-tractable: certificate should fail; made "
        "tractable only via the registered re-factorization",
    )
    add(
        "cvp-factorized",
        set(in_pit0q) | {Membership.PI_TP},
        query_class=cvp_factorized_class(),
        problem=cvp_problem(),
        schemes=[gate_table_scheme()],
        paper_reference="Section 4(8)",
        notes="CVP is P-complete [21]; Pi-tractable under Upsilon_CVP",
    )
    add(
        "cvp-trivial",
        {Membership.P, Membership.PI_TQ},
        query_class=cvp_trivial_class(),
        schemes=[reevaluate_scheme()],
        sizes=SMALL_SIZES,
        reduction=refactorize_cvp(),
        paper_reference="Theorem 9, factorization Upsilon_0",
        notes="expected NOT Pi-tractable unless P = NC: certificate should "
        "fail; the separation witness",
    )
    add(
        f"vertex-cover-fixed-k",
        set(in_pit0q),
        query_class=vc_fixed_k_class(),
        schemes=[kernel_scheme()],
        sizes=SMALL_SIZES,
        paper_reference="Section 4(9), Buss kernelization [19]",
    )
    add(
        "alternating-reachability",
        set(in_pit0q) | {Membership.PI_TP},
        query_class=agap_class(),
        problem=agap_problem(),
        schemes=[winning_set_scheme()],
        sizes=SMALL_SIZES,
        paper_reference="extension: AGAP, a second P-complete problem [21] "
        "made Pi-tractable by the graph-as-data factorization",
        notes="P-complete like BDS/CVP; preprocessing computes all "
        "alternating winning sets in PTIME",
    )
    add(
        "topk-threshold",
        {Membership.P, Membership.PI_TQ},
        query_class=topk_class(),
        schemes=[threshold_algorithm_scheme()],
        sizes=SMALL_SIZES,
        reduction=solve_and_emit_bds(decision_problem_of(topk_class())),
        paper_reference="Section 8, open issue (5): top-k with early "
        "termination [14]",
        notes="Fagin's TA is instance-optimal but not worst-case polylog, "
        "so no PiT0Q claim; measured in the EXT-TOPK experiment",
    )
    add(
        "vertex-cover",
        {Membership.NP_COMPLETE},
        problem=vc_problem(),
        paper_reference="Section 4(9); Corollary 7",
        notes="NP-complete: not in PiTP unless P = NP; no scheme registered",
    )
    add(
        "3SAT",
        {Membership.NP_COMPLETE},
        problem=three_sat_problem(),
        paper_reference="Corollary 7",
        notes="NP-complete: the paper's other Corollary 7 example; the "
        "classic reduction to vertex-cover is implemented and tested "
        "(repro.queries.sat.three_sat_to_vertex_cover)",
    )
    return registry


def build_query_engine(*, shards: int = 1, **engine_kwargs):
    """A :class:`~repro.service.engine.QueryEngine` serving the full catalog.

    Every registry entry with a query class and a scheme becomes a query
    kind of the engine, keyed by the entry's name (``"point-selection"``,
    ``"reachability"``, ...).  Datasets are served dataset-first: attach a
    payload once under a stable name and query the returned
    :class:`~repro.service.dataset.Dataset` session across every kind ::

        engine = build_query_engine(store=ArtifactStore(path))
        ds = engine.attach("events", data)          # fingerprinted once
        ds.query("list-membership", 17)             # any registered kind
        ds.query_batch([("point-selection", q1), ("list-membership", q2)])

    (payload-style ``QueryRequest(kind, data, query)`` requests keep
    working through the engine's compatibility adapter).  Keyword arguments
    are forwarded to the engine constructor -- pass
    ``store=ArtifactStore(path)`` to persist artifacts across processes, or
    ``fingerprint_memo_size=N`` to size the identity memo backing the
    payload-request adapter.

    Parameters
    ----------
    shards:
        With ``shards=K > 1``, every kind whose serving scheme declares a
        :class:`~repro.service.merge.ShardSpec` (point/range selection,
        list membership, minimum range query, top-k) is served from K
        per-shard Pi-structures by scatter-gather; the remaining kinds keep
        the monolithic path.  ``engine.attach(..., shards=K)`` applies the
        same override per dataset.
    """
    from repro.service.engine import QueryEngine

    return QueryEngine.from_registry(build_registry(), shards=shards, **engine_kwargs)
