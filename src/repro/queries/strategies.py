"""Section 4's general strategies (5)-(7) packaged as Pi-schemes.

The paper presents query-preserving compression, query answering using
views, and incremental evaluation as *generic* routes into PiT0Q, "not
limited to any specific Q".  This module instantiates each against the
concrete query classes of this package:

* strategy (5) -> an alternative Pi-scheme for the reachability class that
  answers on the compressed graph only;
* strategy (6) -> an alternative Pi-scheme for range selection that answers
  from materialized views only (using the query-rewriting lambda);
* strategy (7) is about maintenance rather than answering and lives in
  :mod:`repro.incremental`; its boundedness experiment is
  ``benchmarks/bench_case7_incremental.py``.
"""

from __future__ import annotations

from typing import Tuple

from repro.compression.reachability_preserving import ReachabilityPreservingCompression
from repro.core.cost import CostTracker
from repro.core.query import PiScheme
from repro.graphs.graph import Digraph
from repro.storage.relation import Relation
from repro.views.rewrite import rewrite_range
from repro.views.view import ViewSet

__all__ = ["compression_scheme", "views_scheme"]


def compression_scheme() -> PiScheme:
    """Strategy (5): compress the graph, answer reachability on Dc.

    Preprocessing is the PTIME compression; evaluation never touches the
    original graph -- "Q(D) = Q(Dc)" by construction.
    """

    def preprocess(graph: Digraph, tracker: CostTracker) -> ReachabilityPreservingCompression:
        return ReachabilityPreservingCompression(graph, tracker)

    def evaluate(
        compressed: ReachabilityPreservingCompression,
        query: Tuple[int, int],
        tracker: CostTracker,
    ) -> bool:
        source, target = query
        return compressed.reachable(source, target, tracker)

    return PiScheme(
        name="query-preserving-compression",
        preprocess=preprocess,
        evaluate=evaluate,
        description="reachability-preserving compression (Section 4(5))",
    )


def views_scheme(bucket_count: int = 16) -> PiScheme:
    """Strategy (6): materialize a view partition, answer from V(D) only.

    The per-query rewrite (range -> clipped per-view probes) is the paper's
    ``lambda(Q)`` query reformulation; uncovered key ranges hold no tuples by
    construction, so clipping preserves the Boolean answer.
    """

    def preprocess(relation: Relation, tracker: CostTracker) -> dict:
        view_sets = {}
        for attribute in relation.schema.attribute_names():
            column = relation.column(attribute, tracker)
            low = min(column) if column else 0
            high = max(column) if column else 0
            views = ViewSet.partition(
                relation, attribute, (low, high), bucket_count, tracker
            )
            view_sets[attribute] = (views, low, high)
        return view_sets

    def evaluate(
        view_sets: dict,
        query: Tuple[str, int, int],
        tracker: CostTracker,
    ) -> bool:
        attribute, low, high = query
        views, covered_low, covered_high = view_sets[attribute]
        # Keys outside the materialized span hold no tuples by construction,
        # so clipping the probe preserves the Boolean answer.
        low = max(low, covered_low)
        high = min(high, covered_high)
        tracker.tick(2)
        if low > high:
            return False
        return rewrite_range(views, low, high).evaluate(tracker)

    return PiScheme(
        name=f"views[{bucket_count}]",
        preprocess=preprocess,
        evaluate=evaluate,
        description="materialized range views + query rewriting (Section 4(6))",
    )
