"""AGAP query class: a second P-complete problem made Pi-tractable.

The paper demonstrates "hard problems that preprocessing rescues" with BDS
(Theorem 5) and CVP (Section 4(8)).  AGAP -- alternating graph
accessibility, P-complete [21] -- follows exactly the same pattern and is
included to show the framework generalizes beyond the paper's two specimens:
factor the labelled graph out as data, precompute every alternating-
reachability answer in PTIME, answer queries in O(1).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.cost import CostTracker
from repro.core.language import DecisionProblem
from repro.core.query import PiScheme, QueryClass
from repro.graphs.alternating import (
    AlternatingDigraph,
    AlternatingReachabilityIndex,
    alternating_reachable,
    random_alternating_digraph,
)

__all__ = ["agap_class", "agap_problem", "winning_set_scheme"]

AGAPQuery = Tuple[int, int]


def _generate(size: int, rng: random.Random) -> AlternatingDigraph:
    n = max(size, 2)
    return random_alternating_digraph(n, 2 * n, rng)


def _generate_queries(
    agraph: AlternatingDigraph, rng: random.Random, count: int
) -> List[AGAPQuery]:
    queries = []
    for _ in range(count):
        queries.append((rng.randrange(agraph.n), rng.randrange(agraph.n)))
    return queries


def _naive(agraph: AlternatingDigraph, query: AGAPQuery, tracker: CostTracker) -> bool:
    source, target = query
    return alternating_reachable(agraph, source, target, tracker)


def agap_class() -> QueryClass:
    return QueryClass(
        name="alternating-reachability",
        evaluate=_naive,
        generate_data=_generate,
        generate_queries=_generate_queries,
        encode_data=lambda agraph: agraph.encode(),
        data_size=lambda agraph: agraph.n,
        description="alternating graph accessibility (AGAP; P-complete [21])",
    )


def winning_set_scheme() -> PiScheme:
    """Backward-induction preprocessing: all answers in PTIME, O(1) queries."""

    def preprocess(agraph: AlternatingDigraph, tracker: CostTracker) -> AlternatingReachabilityIndex:
        return AlternatingReachabilityIndex(agraph, tracker)

    def evaluate(
        index: AlternatingReachabilityIndex, query: AGAPQuery, tracker: CostTracker
    ) -> bool:
        source, target = query
        return index.reachable(source, target, tracker)

    return PiScheme(
        name="alternating-winning-sets",
        preprocess=preprocess,
        evaluate=evaluate,
        description="per-target attractor fixpoints; O(1) bit probes",
    )


def agap_problem() -> DecisionProblem:
    """AGAP as a decision problem over ((G, labels), (s, t)) instances."""

    def contains(instance, tracker: CostTracker) -> bool:
        agraph, pair = instance
        return _naive(agraph, pair, tracker)

    def generate(size: int, rng: random.Random):
        agraph = _generate(size, rng)
        return agraph, _generate_queries(agraph, rng, 1)[0]

    def encode_instance(instance) -> str:
        from repro.core import alphabet

        agraph, (source, target) = instance
        return alphabet.encode((agraph.encode(), source, target))

    return DecisionProblem(
        name="AGAP",
        contains=contains,
        generate=generate,
        encode_instance=encode_instance,
        description="alternating graph accessibility (P-complete [21])",
    )
