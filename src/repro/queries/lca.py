"""Lowest-common-ancestor query classes (paper, Section 4(4), problem L3).

Two variants, both Boolean per the paper's decision-problem convention:

* **trees**: data is a tree rooted at 0; query (u, v, w) asks "is w the LCA
  of u and v?".  Scheme: Euler tour + RMQ, O(1) per query.
* **DAGs**: data is a DAG; query (u, v, w) asks "is w the representative LCA
  of u and v?" where the representative is the topologically-last common
  ancestor (a node with no descendant that is also a common ancestor -- the
  paper's definition; see :mod:`repro.indexes.dag_lca`).  Scheme: the
  all-pairs-capable bitset index, O(1)/O(n/w) per query.

Baselines recompute from scratch per query: Theta(n) BFS climbs for trees,
two reverse reachability sweeps for DAGs.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.cost import CostTracker
from repro.core.query import PiScheme, QueryClass, state_codec
from repro.graphs.generators import random_dag, random_tree
from repro.graphs.graph import Digraph, Graph
from repro.indexes.dag_lca import DagLCAIndex, naive_dag_lca
from repro.indexes.euler_lca import EulerTourLCA, naive_tree_lca

__all__ = [
    "tree_lca_class",
    "dag_lca_class",
    "euler_tour_scheme",
    "dag_bitset_scheme",
]

LCAQuery = Tuple[int, int, int]  # (u, v, w)


def _generate_tree(size: int, rng: random.Random) -> Graph:
    return random_tree(max(size, 2), rng)


def _generate_dag(size: int, rng: random.Random) -> Digraph:
    n = max(size, 2)
    return random_dag(n, 2 * n, rng)


def _tree_queries(tree: Graph, rng: random.Random, count: int) -> List[LCAQuery]:
    index = EulerTourLCA(tree, 0)
    queries: List[LCAQuery] = []
    for position in range(count):
        u = rng.randrange(tree.n)
        v = rng.randrange(tree.n)
        if position % 2 == 0:
            w = index.lca(u, v)  # yes-instance
        else:
            w = rng.randrange(tree.n)  # usually a no-instance
        queries.append((u, v, w))
    return queries


def _dag_queries(dag: Digraph, rng: random.Random, count: int) -> List[LCAQuery]:
    index = DagLCAIndex(dag)
    queries: List[LCAQuery] = []
    for position in range(count):
        u = rng.randrange(dag.n)
        v = rng.randrange(dag.n)
        if position % 2 == 0:
            w = index.lca(u, v)
            if w == -1:  # no common ancestor; retarget to a no-instance
                w = rng.randrange(dag.n)
        else:
            w = rng.randrange(dag.n)
        queries.append((u, v, w))
    return queries


def _naive_tree(tree: Graph, query: LCAQuery, tracker: CostTracker) -> bool:
    u, v, w = query
    return naive_tree_lca(tree, 0, u, v, tracker) == w


def _naive_dag(dag: Digraph, query: LCAQuery, tracker: CostTracker) -> bool:
    u, v, w = query
    return naive_dag_lca(dag, u, v, tracker) == w


def tree_lca_class() -> QueryClass:
    return QueryClass(
        name="tree-lca",
        evaluate=_naive_tree,
        generate_data=_generate_tree,
        generate_queries=_tree_queries,
        data_size=lambda tree: tree.n,
        description="is w = LCA(u, v) in a rooted tree (paper, Section 4(4))",
    )


def dag_lca_class() -> QueryClass:
    return QueryClass(
        name="dag-lca",
        evaluate=_naive_dag,
        generate_data=_generate_dag,
        generate_queries=_dag_queries,
        data_size=lambda dag: dag.n,
        description="is w the representative LCA(u, v) in a DAG (Section 4(4))",
    )


def euler_tour_scheme() -> PiScheme:
    """[5] via RMQ: O(n log n) preprocessing, O(1) queries."""

    def preprocess(tree: Graph, tracker: CostTracker) -> EulerTourLCA:
        return EulerTourLCA(tree, 0, tracker)

    def evaluate(index: EulerTourLCA, query: LCAQuery, tracker: CostTracker) -> bool:
        u, v, w = query
        return index.lca(u, v, tracker) == w

    dump, load = state_codec(EulerTourLCA.from_state)
    return PiScheme(
        name="euler-tour-rmq",
        preprocess=preprocess,
        evaluate=evaluate,
        description="Euler tour + sparse-table RMQ (O(1) LCA)",
        dump=dump,
        load=load,
    )


def dag_bitset_scheme(*, all_pairs: bool = False) -> PiScheme:
    """Topological-rank ancestor bitsets (optionally the full [5] table)."""

    def preprocess(dag: Digraph, tracker: CostTracker) -> DagLCAIndex:
        return DagLCAIndex(dag, all_pairs=all_pairs, tracker=tracker)

    def evaluate(index: DagLCAIndex, query: LCAQuery, tracker: CostTracker) -> bool:
        u, v, w = query
        return index.lca(u, v, tracker) == w

    suffix = "all-pairs" if all_pairs else "bitset"
    dump, load = state_codec(DagLCAIndex.from_state)
    return PiScheme(
        name=f"dag-lca-{suffix}",
        preprocess=preprocess,
        evaluate=evaluate,
        description="ancestor bitsets in topological-rank space",
        dump=dump,
        load=load,
    )
