"""Searching in a list: the decision problem L1 (paper, Section 4(2)).

Input an unordered list M and an element e; does e appear in M?  The paper's
factorization Upsilon1 treats M as data and e as the query; preprocessing
sorts M in O(|M| log |M|) and every membership query becomes an O(log |M|)
binary search.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.cost import CostTracker
from repro.core.errors import DeltaError
from repro.core.factorization import Factorization
from repro.core.language import DecisionProblem
from repro.core.query import PiScheme, QueryClass, state_codec
from repro.incremental.changes import ChangeKind, TupleChange
from repro.indexes.sorted_run import SortedRunIndex
from repro.service.merge import ShardPiece, ShardSpec, stable_bucket, union_merge

__all__ = [
    "membership_class",
    "membership_shard_spec",
    "sorted_run_scheme",
    "membership_problem",
    "membership_factorization",
]

ListData = Tuple[int, ...]


def _generate_list(size: int, rng: random.Random) -> ListData:
    return tuple(rng.randint(0, 4 * size) for _ in range(size))


def _generate_elements(data: ListData, rng: random.Random, count: int) -> List[int]:
    queries = []
    for index in range(count):
        if data and index % 2 == 0:
            queries.append(data[rng.randrange(len(data))])
        else:
            queries.append(rng.randint(0, 4 * max(len(data), 1)))
    return queries


def _naive_membership(data: ListData, element: int, tracker: CostTracker) -> bool:
    for value in data:
        tracker.tick(1)
        if value == element:
            return True
    return False


def membership_class() -> QueryClass:
    """The query class of (L1, Upsilon1): lists as data, elements as queries."""
    return QueryClass(
        name="list-membership",
        evaluate=_naive_membership,
        generate_data=_generate_list,
        generate_queries=_generate_elements,
        data_size=len,
        description="does element e appear in unordered list M (Section 4(2))",
    )


def _split_list(data: ListData, shards: int) -> List[ShardPiece]:
    """Hash-partition M into ``shards`` buckets (all K pieces kept, possibly
    empty, so the element router can index by bucket)."""
    buckets: List[List[int]] = [[] for _ in range(shards)]
    for value in data:
        buckets[stable_bucket(value, shards)].append(value)
    return [
        ShardPiece(index=i, count=shards, data=tuple(bucket))
        for i, bucket in enumerate(buckets)
    ]


def _route_element(element: int, pieces) -> List[int]:
    """An element can only live in its own hash bucket: scatter to one shard."""
    return [stable_bucket(element, len(pieces))]


def _locate_element(element, pieces):
    return stable_bucket(element, len(pieces))


def membership_shard_spec() -> ShardSpec:
    """Union sharding for L1: hash-bucket the list, route e to its bucket.

    Membership is existential, so the gather is plain disjunction -- and
    because the partition is by element content, both queries and change
    batches route to exactly one shard.
    """
    return ShardSpec(
        policy="hash",
        split=_split_list,
        merge=union_merge(),
        route=_route_element,
        locate=_locate_element,
    )


def _apply_list_delta(index: SortedRunIndex, changes, tracker: CostTracker) -> SortedRunIndex:
    """Fold a TupleChange batch into the sorted run: O(log n) locate each.

    Elements travel as one-tuples (``TupleChange(kind, (value,))``), the row
    shape :class:`~repro.service.mutable.DatasetHandle` uses for flat value
    lists.  Deleting an absent element is a no-op (bag semantics).
    """
    for change in changes:
        if not isinstance(change, TupleChange) or len(change.row) != 1:
            raise DeltaError(
                "sort+binary-search maintains TupleChange((value,)) batches "
                f"only, got {change!r}"
            )
    for change in changes:
        if change.kind is ChangeKind.INSERT:
            index.insert_value(change.row[0], tracker)
        else:
            index.delete_value(change.row[0], tracker)
    return index


def sorted_run_scheme() -> PiScheme:
    """Sort once (PTIME), binary-search per query (O(log n))."""

    def preprocess(data: ListData, tracker: CostTracker) -> SortedRunIndex:
        return SortedRunIndex(data, tracker)

    def evaluate(index: SortedRunIndex, element: int, tracker: CostTracker) -> bool:
        return index.contains(element, tracker)

    dump, load = state_codec(SortedRunIndex.from_state)
    return PiScheme(
        name="sort+binary-search",
        preprocess=preprocess,
        evaluate=evaluate,
        description="sort M, then O(log|M|) binary search (Section 4(2))",
        dump=dump,
        load=load,
        sharding=membership_shard_spec(),
        apply_delta=_apply_list_delta,
        evaluate_fast=SortedRunIndex.contains_fast,
        evaluate_many=SortedRunIndex.contains_many,
    )


def membership_problem() -> DecisionProblem:
    """L1 as a decision problem over instances (M, e)."""

    def contains(instance: Tuple[ListData, int], tracker: CostTracker) -> bool:
        data, element = instance
        return _naive_membership(data, element, tracker)

    def generate(size: int, rng: random.Random) -> Tuple[ListData, int]:
        data = _generate_list(size, rng)
        return data, _generate_elements(data, rng, 1)[0]

    return DecisionProblem(
        name="L1-list-search",
        contains=contains,
        generate=generate,
        description="searching in a list (paper, Section 4(2))",
    )


def membership_factorization() -> Factorization:
    """Upsilon1: pi1 = M, pi2 = e (paper, Section 4(2))."""
    return Factorization(
        name="Upsilon1[list-search]",
        pi1=lambda instance: instance[0],
        pi2=lambda instance: instance[1],
        rho=lambda data, query: (data, query),
        description="list as data, element as query",
    )
