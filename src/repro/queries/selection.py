"""Point- and range-selection query classes (paper, Example 1, Section 4(1)).

The motivating case study: the class Q1 of Boolean point selections
"exists t in D with t[A] = c" and its range extension
"exists t with c1 <= t[A] <= c2".  Naive evaluation scans D (Theta(n));
the Pi-schemes build a B+-tree (or hash index) per attribute in PTIME and
answer any query in O(log n) (or O(1) expected) afterwards.

Queries are (attribute, constant) pairs -- point -- or
(attribute, low, high) triples -- range; data is a
:class:`~repro.storage.relation.Relation`.
"""

from __future__ import annotations

import random
from typing import Any, List, Tuple

from repro.core.cost import CostTracker
from repro.core.errors import DeltaError
from repro.core.query import PiScheme, QueryClass, state_codec
from repro.incremental.changes import ChangeKind, TupleChange
from repro.indexes.btree import BPlusTree
from repro.indexes.hash_index import HashIndex
from repro.service.merge import (
    ShardPiece,
    ShardSpec,
    locate_by_content,
    stable_bucket,
    union_merge,
)
from repro.storage.relation import Relation, uniform_int_relation

__all__ = [
    "point_selection_class",
    "range_selection_class",
    "btree_point_scheme",
    "hash_point_scheme",
    "btree_range_scheme",
    "selection_shard_spec",
]

PointQuery = Tuple[str, int]  # (A, c)
RangeQuery = Tuple[str, int, int]  # (A, c1, c2)


def _encode_relation(relation: Relation) -> str:
    return relation.encode()


def _generate_relation(size: int, rng: random.Random) -> Relation:
    return uniform_int_relation(size, rng)


def _point_queries(relation: Relation, rng: random.Random, count: int) -> List[PointQuery]:
    attributes = relation.schema.attribute_names()
    # Half the probes hit existing values, half are uniform (mostly misses).
    rows = relation.rows()
    queries: List[PointQuery] = []
    for index in range(count):
        attribute = attributes[rng.randrange(len(attributes))]
        if rows and index % 2 == 0:
            row = rows[rng.randrange(len(rows))]
            constant = row[relation.schema.position_of(attribute)]
        else:
            constant = rng.randint(0, 4 * max(len(rows), 1))
        queries.append((attribute, constant))
    return queries


def _range_queries(relation: Relation, rng: random.Random, count: int) -> List[RangeQuery]:
    attributes = relation.schema.attribute_names()
    domain_high = 4 * max(len(relation), 1)
    queries: List[RangeQuery] = []
    for index in range(count):
        attribute = attributes[rng.randrange(len(attributes))]
        if index % 2 == 0:
            # Narrow window (often empty).
            low = rng.randint(0, domain_high)
            high = low + rng.randint(0, 3)
        else:
            low = rng.randint(0, domain_high)
            high = min(domain_high, low + rng.randint(0, domain_high // 4))
        queries.append((attribute, low, high))
    return queries


def _naive_point(relation: Relation, query: PointQuery, tracker: CostTracker) -> bool:
    attribute, constant = query
    position = relation.schema.position_of(attribute)
    return relation.exists(lambda row: row[position] == constant, tracker)


def _naive_range(relation: Relation, query: RangeQuery, tracker: CostTracker) -> bool:
    attribute, low, high = query
    position = relation.schema.position_of(attribute)
    return relation.exists(lambda row: low <= row[position] <= high, tracker)


def point_selection_class() -> QueryClass:
    """Q1 of Example 1: Boolean point selections over a relation."""
    return QueryClass(
        name="point-selection",
        evaluate=_naive_point,
        generate_data=_generate_relation,
        generate_queries=_point_queries,
        encode_data=_encode_relation,
        data_size=len,
        description="exists t in D with t[A] = c (paper, Example 1)",
    )


def range_selection_class() -> QueryClass:
    """Range selections of Section 4(1): exists t with c1 <= t[A] <= c2."""
    return QueryClass(
        name="range-selection",
        evaluate=_naive_range,
        generate_data=_generate_relation,
        generate_queries=_range_queries,
        encode_data=_encode_relation,
        data_size=len,
        description="exists t in D with c1 <= t[A] <= c2 (paper, Section 4(1))",
    )


def _split_relation(relation: Relation, shards: int) -> List[ShardPiece]:
    """Hash-partition rows into ``shards`` sub-relations under the same schema.

    Partitioning by row *content* (not row id) means an inserted or deleted
    tuple changes exactly one shard's fingerprint, so change batches rebuild
    one shard.  Queries probe by attribute value, which the row hash cannot
    route, so selection scatters to every shard.
    """
    buckets = [Relation(relation.schema) for _ in range(shards)]
    for row in relation.rows():
        buckets[stable_bucket(row, shards)].insert(row)
    return [
        ShardPiece(index=i, count=shards, data=bucket)
        for i, bucket in enumerate(buckets)
    ]


def selection_shard_spec() -> ShardSpec:
    """Union sharding for Example 1 / Section 4(1): exists-queries disjoin."""
    return ShardSpec(
        policy="hash",
        split=_split_relation,
        merge=union_merge(),
        locate=locate_by_content,
    )


def _build_btrees(relation: Relation, tracker: CostTracker) -> dict:
    indexes = {}
    for attribute in relation.schema.attribute_names():
        position = relation.schema.position_of(attribute)
        indexes[attribute] = BPlusTree.build(
            [(row[position], row_id) for row_id, row in relation.scan(tracker)],
            tracker=tracker,
        )
    return indexes


def _btree_codec():
    return state_codec(
        lambda state: {a: BPlusTree.from_state(s) for a, s in state.items()},
        lambda indexes: {a: tree.to_state() for a, tree in indexes.items()},
    )


def _apply_relation_delta(indexes: dict, changes, tracker: CostTracker) -> dict:
    """Fold a TupleChange batch into the per-attribute indexes (Section 4(7)).

    One O(log n) (B+-tree) or O(1) expected (hash) update per attribute per
    change -- the textbook index maintenance of
    :mod:`repro.incremental.inc_selection`, applied to the serving structure.
    The per-attribute indexes store one payload per row occurrence, so the
    caller must only send DELETE changes for rows that are actually live
    (the :class:`~repro.service.mutable.DatasetHandle` screens deletes
    against its working dataset); a delete of a phantom row would strip a
    payload that another live row still accounts for.
    """
    arity = len(indexes)
    for change in changes:
        if not isinstance(change, TupleChange):
            raise DeltaError(
                f"selection indexes maintain TupleChange batches only, "
                f"got {type(change).__name__}"
            )
        if len(change.row) != arity:
            raise DeltaError(f"row arity {len(change.row)} != schema arity {arity}")
    for change in changes:
        for position, index in enumerate(indexes.values()):
            key = change.row[position]
            if change.kind is ChangeKind.INSERT:
                index.insert(key, None, tracker)
            else:
                index.delete(key, None, tracker)
    return indexes


def btree_point_scheme() -> PiScheme:
    """Example 1's scheme: B+-trees on every attribute; O(log n) probes."""

    def evaluate(indexes: dict, query: PointQuery, tracker: CostTracker) -> bool:
        attribute, constant = query
        return indexes[attribute].contains(constant, tracker)

    def evaluate_fast(indexes: dict, query: PointQuery) -> bool:
        attribute, constant = query
        return indexes[attribute].contains_fast(constant)

    dump, load = _btree_codec()
    return PiScheme(
        name="btree-point",
        preprocess=_build_btrees,
        evaluate=evaluate,
        description="B+-tree per attribute (paper, Example 1)",
        dump=dump,
        load=load,
        sharding=selection_shard_spec(),
        apply_delta=_apply_relation_delta,
        evaluate_fast=evaluate_fast,
    )


def btree_range_scheme() -> PiScheme:
    """Section 4(1)'s scheme: the same B+-trees answer range queries."""

    def evaluate(indexes: dict, query: RangeQuery, tracker: CostTracker) -> bool:
        attribute, low, high = query
        return indexes[attribute].range_nonempty(low, high, tracker)

    def evaluate_fast(indexes: dict, query: RangeQuery) -> bool:
        attribute, low, high = query
        return indexes[attribute].range_nonempty_fast(low, high)

    dump, load = _btree_codec()
    return PiScheme(
        name="btree-range",
        preprocess=_build_btrees,
        evaluate=evaluate,
        description="B+-tree range probe (paper, Section 4(1))",
        dump=dump,
        load=load,
        sharding=selection_shard_spec(),
        apply_delta=_apply_relation_delta,
        evaluate_fast=evaluate_fast,
    )


def hash_point_scheme() -> PiScheme:
    """Hash-index alternative: O(1) expected point probes."""

    def preprocess(relation: Relation, tracker: CostTracker) -> dict:
        indexes = {}
        for attribute in relation.schema.attribute_names():
            position = relation.schema.position_of(attribute)
            indexes[attribute] = HashIndex.build(
                [(row[position], row_id) for row_id, row in relation.scan(tracker)],
                tracker,
            )
        return indexes

    def evaluate(indexes: dict, query: PointQuery, tracker: CostTracker) -> bool:
        attribute, constant = query
        return indexes[attribute].contains(constant, tracker)

    def evaluate_fast(indexes: dict, query: PointQuery) -> bool:
        attribute, constant = query
        return indexes[attribute].contains_fast(constant)

    dump, load = state_codec(
        lambda state: {a: HashIndex.from_state(s) for a, s in state.items()},
        lambda indexes: {a: index.to_state() for a, index in indexes.items()},
    )
    return PiScheme(
        name="hash-point",
        preprocess=preprocess,
        evaluate=evaluate,
        description="hash index per attribute; O(1) expected probes",
        dump=dump,
        load=load,
        sharding=selection_shard_spec(),
        apply_delta=_apply_relation_delta,
        evaluate_fast=evaluate_fast,
    )
