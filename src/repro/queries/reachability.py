"""Graph reachability: the class Q2 / GAP (paper, Example 3).

Data is a digraph G, a query (s, t) asks for a path from s to t.  GAP is
NL-complete, hence already in NC -- so Q2 is Pi-tractable even with identity
preprocessing (evaluate by Boolean matrix squaring, polylog depth).  But the
paper's point is that *preprocessing buys more*: precompute the transitive
closure in PTIME and every query costs O(1).  Three evaluation regimes are
exposed for the Example 3 experiment:

1. per-query BFS               -- Theta(n + m) sequential (baseline);
2. per-query matrix squaring   -- NC (polylog depth) but n^3 log n work;
3. closure lookup              -- O(1) after PTIME preprocessing.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import numpy as np

from repro.core.cost import CostTracker
from repro.core.errors import DeltaError
from repro.core.query import PiScheme, QueryClass, state_codec
from repro.graphs.generators import gnm_digraph, random_vertex_pairs
from repro.graphs.graph import Digraph
from repro.graphs.traversal import is_reachable
from repro.indexes.reachability import TransitiveClosureIndex
from repro.parallel.pram import ParallelMachine
from repro.parallel.primitives import reachability_query_squaring

__all__ = [
    "reachability_class",
    "closure_scheme",
    "nc_squaring_scheme",
    "adjacency_matrix",
]

ReachQuery = Tuple[int, int]


def _generate_digraph(size: int, rng: random.Random) -> Digraph:
    n = max(size, 2)
    return gnm_digraph(n, 2 * n, rng)


def _generate_pairs(graph: Digraph, rng: random.Random, count: int) -> List[ReachQuery]:
    return random_vertex_pairs(graph.n, count, rng)


def _naive_reach(graph: Digraph, query: ReachQuery, tracker: CostTracker) -> bool:
    source, target = query
    return is_reachable(graph, source, target, tracker)


def reachability_class() -> QueryClass:
    return QueryClass(
        name="reachability",
        evaluate=_naive_reach,
        generate_data=_generate_digraph,
        generate_queries=_generate_pairs,
        data_size=lambda graph: graph.n,
        description="is there a path s ->* t (paper, Example 3 / GAP)",
    )


def _apply_edge_delta(index: TransitiveClosureIndex, changes, tracker: CostTracker):
    """Fold an insert-only EdgeChange batch into the closure (Section 4(7)).

    Each insert runs the Italiano-style bounded repair of
    :meth:`~repro.indexes.reachability.TransitiveClosureIndex.insert_edge`
    (work proportional to the closure pairs that appear).  Deletions can
    shrink the closure non-locally, so they raise
    :class:`~repro.core.errors.DeltaError` -- before anything mutates -- and
    the caller falls back to a rebuild for the whole batch.
    """
    from repro.incremental.changes import ChangeKind, EdgeChange

    for change in changes:
        if not isinstance(change, EdgeChange):
            raise DeltaError(
                f"closure maintenance accepts EdgeChange batches only, "
                f"got {type(change).__name__}"
            )
        if change.kind is not ChangeKind.INSERT:
            raise DeltaError("closure maintenance is insert-only; deletes rebuild")
        if not (0 <= change.source < index.n and 0 <= change.target < index.n):
            raise DeltaError(
                f"edge ({change.source}, {change.target}) outside vertex range "
                f"[0, {index.n})"
            )
    for change in changes:
        index.insert_edge(change.source, change.target, tracker)
    return index


def closure_scheme() -> PiScheme:
    """Example 3's scheme: precompute the closure, answer in O(1)."""

    def preprocess(graph: Digraph, tracker: CostTracker) -> TransitiveClosureIndex:
        return TransitiveClosureIndex(graph, tracker)

    def evaluate(index: TransitiveClosureIndex, query: ReachQuery, tracker: CostTracker) -> bool:
        source, target = query
        return index.reachable(source, target, tracker)

    def evaluate_fast(index: TransitiveClosureIndex, query: ReachQuery) -> bool:
        source, target = query
        return index.reachable_fast(source, target)

    dump, load = state_codec(TransitiveClosureIndex.from_state)
    return PiScheme(
        name="transitive-closure",
        preprocess=preprocess,
        evaluate=evaluate,
        description="precomputed all-pairs reachability matrix; O(1) lookups",
        dump=dump,
        load=load,
        apply_delta=_apply_edge_delta,
        evaluate_fast=evaluate_fast,
    )


def adjacency_matrix(graph: Digraph) -> np.ndarray:
    matrix = np.zeros((graph.n, graph.n), dtype=bool)
    for u, v in graph.edges():
        matrix[u, v] = True
    return matrix


def nc_squaring_scheme() -> PiScheme:
    """The no-preprocessing NC route: identity Pi, per-query matrix squaring.

    Demonstrates NL <= NC (Q2 is Pi-tractable with trivial preprocessing):
    depth is polylog, but per-query *work* is n^3 log n -- which is exactly
    why the closure lookup is preferable in practice (Example 3's remark).
    """

    def preprocess(graph: Digraph, tracker: CostTracker) -> np.ndarray:
        tracker.tick(graph.n)  # identity-ish: just re-represent the input
        return adjacency_matrix(graph)

    def evaluate(matrix: np.ndarray, query: ReachQuery, tracker: CostTracker) -> bool:
        source, target = query
        machine = ParallelMachine(tracker)
        return reachability_query_squaring(matrix, source, target, machine)

    return PiScheme(
        name="nc-matrix-squaring",
        preprocess=preprocess,
        evaluate=evaluate,
        description="per-query Boolean matrix squaring (NC, no preprocessing)",
    )
