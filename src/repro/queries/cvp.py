"""Circuit Value Problem query classes (paper, Section 4(8) and Theorem 9).

CVP -- given a circuit alpha with inputs x1..xn and designated output y, is
y true? -- is the canonical P-complete problem.  Two factorizations make the
paper's separation concrete:

* **Upsilon_CVP** (Section 4(8)): the circuit *and its inputs* are data, the
  designated output gate is the query.  Preprocessing evaluates every gate
  once (PTIME); each query is then an O(1) table lookup.  Many queries over
  one big circuit (think: a compiled dataflow over a fixed dataset) become
  feasible.
* **Upsilon_0** (Theorem 9): the data part is the empty string and the whole
  instance is the query.  Preprocessing sees only epsilon, so unless P = NC
  queries cannot be answered in polylog time -- the certifier measures
  exactly that: per-query depth grows linearly in |q|.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.eval import evaluate_all
from repro.circuits.generators import deep_chain_circuit, random_circuit, random_inputs
from repro.core.cost import CostTracker
from repro.core.factorization import EMPTY_DATA, Factorization
from repro.core.language import DecisionProblem
from repro.core.query import PiScheme, QueryClass

__all__ = [
    "CVPData",
    "cvp_problem",
    "cvp_factorized_class",
    "cvp_trivial_class",
    "gate_table_scheme",
    "reevaluate_scheme",
    "upsilon_cvp",
    "upsilon_zero",
]

#: Data part under Upsilon_CVP: the circuit together with its input bits.
CVPData = Tuple[Circuit, Tuple[bool, ...]]
#: Full CVP instance: (circuit, inputs, designated output gate).
CVPInstance = Tuple[Circuit, Tuple[bool, ...], int]


def _generate_data(size: int, rng: random.Random) -> CVPData:
    n_inputs = max(2, size // 64)
    circuit = random_circuit(n_inputs, max(size, 4), rng)
    return circuit, tuple(random_inputs(n_inputs, rng))


def _generate_gate_queries(data: CVPData, rng: random.Random, count: int) -> List[int]:
    circuit, _ = data
    return [rng.randrange(len(circuit.gates)) for _ in range(count)]


def _naive_gate_value(data: CVPData, gate: int, tracker: CostTracker) -> bool:
    circuit, inputs = data
    return evaluate_all(circuit, list(inputs), tracker)[gate]


def cvp_factorized_class() -> QueryClass:
    """(CVP, Upsilon_CVP): circuit+inputs as data, output gate as query."""
    return QueryClass(
        name="cvp-factorized",
        evaluate=_naive_gate_value,
        generate_data=_generate_data,
        generate_queries=_generate_gate_queries,
        data_size=lambda data: len(data[0].gates),
        description="is gate y true in circuit alpha on inputs x (Section 4(8))",
    )


def gate_table_scheme() -> PiScheme:
    """Section 4(8)'s preprocessing: evaluate all gates once; O(1) queries."""

    def preprocess(data: CVPData, tracker: CostTracker) -> List[bool]:
        circuit, inputs = data
        return evaluate_all(circuit, list(inputs), tracker)

    def evaluate(values: List[bool], gate: int, tracker: CostTracker) -> bool:
        tracker.tick(1)
        return values[gate]

    return PiScheme(
        name="gate-value-table",
        preprocess=preprocess,
        evaluate=evaluate,
        factorization_name="Upsilon_CVP",
        description="evaluate every gate in preprocessing; O(1) lookups",
    )


def cvp_trivial_class() -> QueryClass:
    """(CVP, Upsilon_0): epsilon as data, whole instances as queries.

    As with :func:`repro.queries.bds.bds_trivial_query_class`, the integer
    "data" is only a workload-scale hint with no query information;
    ``data_size`` reports |q|'s scale so certification fits against query
    size.  Instances are deep chain circuits -- the shape where layer
    parallelism cannot reduce depth below Theta(|q|).
    """

    def generate_data(size: int, rng: random.Random) -> int:
        return max(size, 8)

    def generate_queries(scale: int, rng: random.Random, count: int) -> List[CVPInstance]:
        instances: List[CVPInstance] = []
        for _ in range(count):
            circuit = deep_chain_circuit(scale, rng)
            inputs = tuple(random_inputs(circuit.n_inputs, rng))
            instances.append((circuit, inputs, circuit.output))
        return instances

    def evaluate(scale: int, query: CVPInstance, tracker: CostTracker) -> bool:
        circuit, inputs, gate = query
        return evaluate_all(circuit, list(inputs), tracker)[gate]

    return QueryClass(
        name="cvp-trivial",
        evaluate=evaluate,
        generate_data=generate_data,
        generate_queries=generate_queries,
        data_size=lambda scale: scale,
        description="(CVP, Upsilon_0): nothing to preprocess (Theorem 9)",
    )


def reevaluate_scheme() -> PiScheme:
    """The only scheme available under Upsilon_0: evaluate per query.

    Certification *fails* this scheme -- evaluation depth is Theta(|q|) --
    which is the measured content of Theorem 9's separation.
    """

    def preprocess(data, tracker: CostTracker):
        tracker.tick(1)
        return data

    def evaluate(_, query: CVPInstance, tracker: CostTracker) -> bool:
        circuit, inputs, gate = query
        return evaluate_all(circuit, list(inputs), tracker)[gate]

    return PiScheme(
        name="cvp-reevaluate",
        preprocess=preprocess,
        evaluate=evaluate,
        factorization_name="Upsilon_0[CVP]",
        description="no useful preprocessing; full evaluation per query",
    )


def cvp_problem() -> DecisionProblem:
    """CVP as a decision problem over (circuit, inputs, output) instances."""

    def contains(instance: CVPInstance, tracker: CostTracker) -> bool:
        circuit, inputs, gate = instance
        return evaluate_all(circuit, list(inputs), tracker)[gate]

    def generate(size: int, rng: random.Random) -> CVPInstance:
        circuit, inputs = _generate_data(size, rng)
        gate = rng.randrange(len(circuit.gates))
        return circuit, inputs, gate

    def encode_instance(instance: CVPInstance) -> str:
        circuit, inputs, gate = instance
        from repro.core import alphabet

        return alphabet.encode((circuit.encode(), tuple(inputs), gate))

    return DecisionProblem(
        name="CVP",
        contains=contains,
        generate=generate,
        encode_instance=encode_instance,
        description="circuit value problem (paper, Section 4(8); P-complete)",
    )


def upsilon_cvp() -> Factorization:
    """Section 4(8): pi1 = (alpha, x), pi2 = y."""
    return Factorization(
        name="Upsilon_CVP",
        pi1=lambda instance: (instance[0], instance[1]),
        pi2=lambda instance: instance[2],
        rho=lambda data, gate: (data[0], data[1], gate),
        description="circuit and inputs as data, output gate as query",
    )


def upsilon_zero() -> Factorization:
    """Theorem 9's fixed factorization: pi1 = epsilon, pi2 = the instance."""
    return Factorization(
        name="Upsilon_0[CVP]",
        pi1=lambda instance: EMPTY_DATA,
        pi2=lambda instance: instance,
        rho=lambda data, query: query,
        description="empty data part; preprocessing cannot help (Theorem 9)",
    )
