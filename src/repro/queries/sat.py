"""3SAT and the classic reduction to Vertex Cover (paper, Corollary 7).

Corollary 7: no NP-complete problem can be made Pi-tractable unless P = NP.
The paper names 3SAT and VC as its examples.  This module supplies

* 3SAT as a :class:`~repro.core.language.DecisionProblem` (with a DPLL-style
  decider and generators producing a yes/no mix), and
* the textbook Garey--Johnson reduction ``3SAT -> VC``: one vertex per
  literal occurrence -- a 2-vertex gadget per variable (x -- not-x edge) and
  a triangle per clause, with gadget-to-literal wires; the formula is
  satisfiable iff the graph has a cover of size ``n + 2m``.

The reduction is *polynomial-time many-one* (it is in fact NC: a local
per-clause construction), which is the right notion on the NP side; it is
exercised by tests to confirm that the hardness markers in the registry sit
on genuinely interreducible problems.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.language import DecisionProblem
from repro.graphs.graph import Graph
from repro.kernelization.vertex_cover import VCInstance

__all__ = [
    "Clause",
    "Formula",
    "sat_decide",
    "three_sat_problem",
    "three_sat_to_vertex_cover",
]

#: A literal is (variable index, polarity); a clause is a triple of literals.
Literal = Tuple[int, bool]
Clause = Tuple[Literal, Literal, Literal]


class Formula:
    """A 3-CNF formula over variables 0..n-1."""

    def __init__(self, n_variables: int, clauses: Sequence[Clause]):
        self.n_variables = n_variables
        self.clauses: List[Clause] = [tuple(clause) for clause in clauses]  # type: ignore[misc]
        for clause in self.clauses:
            if len(clause) != 3:
                raise ValueError("3SAT clauses must have exactly 3 literals")
            for variable, _ in clause:
                if not 0 <= variable < n_variables:
                    raise ValueError(f"variable {variable} out of range")

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        return all(
            any(assignment[variable] == polarity for variable, polarity in clause)
            for clause in self.clauses
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Formula):
            return NotImplemented
        return (
            self.n_variables == other.n_variables and self.clauses == other.clauses
        )

    def __repr__(self) -> str:
        return f"Formula(n={self.n_variables}, m={len(self.clauses)})"


def sat_decide(formula: Formula, tracker: Optional[CostTracker] = None) -> bool:
    """DPLL with unit propagation; exact, exponential worst case."""
    tracker = ensure_tracker(tracker)

    def simplify(clauses: List[FrozenSet[Literal]], literal: Literal):
        variable, polarity = literal
        result = []
        for clause in clauses:
            tracker.tick(1)
            if literal in clause:
                continue  # satisfied
            reduced = clause - {(variable, not polarity)}
            if not reduced:
                return None  # empty clause: conflict
            result.append(reduced)
        return result

    def search(clauses: List[FrozenSet[Literal]]) -> bool:
        tracker.tick(1)
        # Unit propagation.
        while True:
            unit = next((clause for clause in clauses if len(clause) == 1), None)
            if unit is None:
                break
            clauses = simplify(clauses, next(iter(unit)))
            if clauses is None:
                return False
        if not clauses:
            return True
        variable, polarity = next(iter(clauses[0]))
        for choice in (polarity, not polarity):
            branch = simplify(clauses, (variable, choice))
            if branch is not None and search(branch):
                return True
        return False

    return search([frozenset(clause) for clause in formula.clauses])


def three_sat_problem() -> DecisionProblem:
    """3SAT as a decision problem with a mixed yes/no generator."""

    def contains(formula: Formula, tracker: CostTracker) -> bool:
        return sat_decide(formula, tracker)

    def generate(size: int, rng: random.Random) -> Formula:
        # Clause/variable ratio ~4.3 sits near the satisfiability threshold,
        # giving a healthy yes/no mix.
        n = max(3, size // 8)
        m = max(1, int(4.3 * n * rng.uniform(0.7, 1.3)))
        clauses: List[Clause] = []
        for _ in range(m):
            variables = rng.sample(range(n), 3)
            clauses.append(
                tuple((variable, rng.random() < 0.5) for variable in variables)  # type: ignore[arg-type]
            )
        return Formula(n, clauses)

    def encode_instance(formula: Formula) -> str:
        from repro.core import alphabet

        return alphabet.encode(
            (formula.n_variables, tuple(tuple(clause) for clause in formula.clauses))
        )

    return DecisionProblem(
        name="3SAT",
        contains=contains,
        generate=generate,
        encode_instance=encode_instance,
        description="3-CNF satisfiability (NP-complete; paper, Corollary 7)",
    )


def three_sat_to_vertex_cover(formula: Formula) -> VCInstance:
    """Garey--Johnson: phi satisfiable iff G has a cover of size n + 2m.

    Construction: per variable x, an edge (x+, x-); per clause, a triangle;
    each triangle corner wired to its literal's variable vertex.  Any cover
    must take >= 1 vertex per variable edge and >= 2 per triangle; equality
    (n + 2m) is achievable iff a satisfying assignment exists.
    """
    n, m = formula.n_variables, len(formula.clauses)
    # Vertex layout: variable gadgets first (2 per variable: x+ = 2v,
    # x- = 2v + 1), then clause triangles (3 per clause).
    graph = Graph(2 * n + 3 * m)

    def variable_vertex(variable: int, polarity: bool) -> int:
        return 2 * variable + (0 if polarity else 1)

    for variable in range(n):
        graph.add_edge(variable_vertex(variable, True), variable_vertex(variable, False))

    for clause_index, clause in enumerate(formula.clauses):
        base = 2 * n + 3 * clause_index
        corners = (base, base + 1, base + 2)
        graph.add_edge(corners[0], corners[1])
        graph.add_edge(corners[1], corners[2])
        graph.add_edge(corners[0], corners[2])
        for corner, (variable, polarity) in zip(corners, clause):
            graph.add_edge(corner, variable_vertex(variable, polarity))

    return VCInstance(graph, n + 2 * m)
