"""Minimum range queries: the problem L2 (paper, Section 4(3)).

``RMQ_A(i, j)`` returns the position of the (leftmost) minimum of
A[i..j].  L2 is a search problem; following the paper's remark it is
converted to the Boolean class "is position p the leftmost argmin of
A[i..j]?".  The Pi-scheme is the Fischer--Heun structure [18]: linear
preprocessing, O(1) per query; the sparse table is provided as a second
certified scheme.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.cost import CostTracker
from repro.core.query import PiScheme, QueryClass, state_codec
from repro.indexes.rmq import FischerHeunRMQ
from repro.indexes.sparse_table import SparseTable, naive_range_min

__all__ = ["rmq_class", "fischer_heun_scheme", "sparse_table_scheme"]

ArrayData = Tuple[int, ...]
RMQQuery = Tuple[int, int, int]  # (i, j, p): is p the leftmost argmin of A[i..j]?


def _generate_array(size: int, rng: random.Random) -> ArrayData:
    return tuple(rng.randint(-size, size) for _ in range(size))


def _generate_rmq_queries(data: ArrayData, rng: random.Random, count: int) -> List[RMQQuery]:
    n = len(data)
    queries: List[RMQQuery] = []
    for index in range(n and count):
        i = rng.randrange(n)
        j = rng.randrange(i, n)
        if index % 2 == 0:
            position = naive_range_min(data, i, j)  # a yes-instance
        else:
            position = rng.randrange(i, j + 1)  # usually a no-instance
        queries.append((i, j, position))
    return queries


def _naive_rmq(data: ArrayData, query: RMQQuery, tracker: CostTracker) -> bool:
    i, j, position = query
    return naive_range_min(data, i, j, tracker) == position


def rmq_class() -> QueryClass:
    """Boolean MRQ: data is a static array, queries are (i, j, p) triples."""
    return QueryClass(
        name="minimum-range-query",
        evaluate=_naive_rmq,
        generate_data=_generate_array,
        generate_queries=_generate_rmq_queries,
        data_size=len,
        description="is p the leftmost argmin of A[i..j] (paper, Section 4(3))",
    )


def fischer_heun_scheme() -> PiScheme:
    """[18]: O(n) preprocessing, O(1) queries."""

    def preprocess(data: ArrayData, tracker: CostTracker) -> FischerHeunRMQ:
        return FischerHeunRMQ(data, tracker)

    def evaluate(index: FischerHeunRMQ, query: RMQQuery, tracker: CostTracker) -> bool:
        i, j, position = query
        return index.argmin(i, j, tracker) == position

    dump, load = state_codec(FischerHeunRMQ.from_state)
    return PiScheme(
        name="fischer-heun",
        preprocess=preprocess,
        evaluate=evaluate,
        description="block decomposition + Cartesian signatures (O(1) query)",
        dump=dump,
        load=load,
    )


def sparse_table_scheme() -> PiScheme:
    """The O(n log n)-space alternative with the same O(1) query bound."""

    def preprocess(data: ArrayData, tracker: CostTracker) -> SparseTable:
        return SparseTable(data, tracker)

    def evaluate(index: SparseTable, query: RMQQuery, tracker: CostTracker) -> bool:
        i, j, position = query
        return index.argmin(i, j, tracker) == position

    dump, load = state_codec(SparseTable.from_state)
    return PiScheme(
        name="sparse-table",
        preprocess=preprocess,
        evaluate=evaluate,
        description="dyadic-window sparse table (O(1) query)",
        dump=dump,
        load=load,
    )
