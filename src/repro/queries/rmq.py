"""Minimum range queries: the problem L2 (paper, Section 4(3)).

``RMQ_A(i, j)`` returns the position of the (leftmost) minimum of
A[i..j].  L2 is a search problem; following the paper's remark it is
converted to the Boolean class "is position p the leftmost argmin of
A[i..j]?".  The Pi-scheme is the Fischer--Heun structure [18]: linear
preprocessing, O(1) per query; the sparse table is provided as a second
certified scheme.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.cost import CostTracker
from repro.core.errors import DeltaError
from repro.core.query import PiScheme, QueryClass, state_codec
from repro.incremental.changes import PointWrite
from repro.indexes.rmq import FischerHeunRMQ
from repro.indexes.sparse_table import SparseTable, check_rmq_range, naive_range_min
from repro.service.merge import ShardPiece, ShardSpec, monoid_merge, range_blocks

__all__ = ["rmq_class", "rmq_shard_spec", "fischer_heun_scheme", "sparse_table_scheme"]

ArrayData = Tuple[int, ...]
RMQQuery = Tuple[int, int, int]  # (i, j, p): is p the leftmost argmin of A[i..j]?


def _generate_array(size: int, rng: random.Random) -> ArrayData:
    return tuple(rng.randint(-size, size) for _ in range(size))


def _generate_rmq_queries(data: ArrayData, rng: random.Random, count: int) -> List[RMQQuery]:
    n = len(data)
    queries: List[RMQQuery] = []
    for index in range(n and count):
        i = rng.randrange(n)
        j = rng.randrange(i, n)
        if index % 2 == 0:
            position = naive_range_min(data, i, j)  # a yes-instance
        else:
            position = rng.randrange(i, j + 1)  # usually a no-instance
        queries.append((i, j, position))
    return queries


def _naive_rmq(data: ArrayData, query: RMQQuery, tracker: CostTracker) -> bool:
    i, j, position = query
    return naive_range_min(data, i, j, tracker) == position


def rmq_class() -> QueryClass:
    """Boolean MRQ: data is a static array, queries are (i, j, p) triples."""
    return QueryClass(
        name="minimum-range-query",
        evaluate=_naive_rmq,
        generate_data=_generate_array,
        generate_queries=_generate_rmq_queries,
        data_size=len,
        description="is p the leftmost argmin of A[i..j] (paper, Section 4(3))",
    )


def _split_array(data: ArrayData, shards: int) -> List[ShardPiece]:
    """Range-partition A into balanced contiguous blocks (offset metadata).

    Block boundaries depend only on ``(len(A), shards)``, so an in-place
    point write leaves every other block's content-addressed artifact warm.
    """
    return [
        ShardPiece(
            index=i,
            count=shards,
            data=tuple(data[offset : offset + length]),
            meta={"offset": offset, "length": length},
        )
        for i, (offset, length) in enumerate(range_blocks(len(data), shards))
    ]


def _route_window(query: RMQQuery, pieces) -> List[int]:
    """Scatter only to blocks overlapping the query window [i, j].

    Malformed windows raise exactly like the monolithic indexes do, so the
    sharded path never silently clamps a query the scheme would reject.
    """
    i, j, _position = query
    check_rmq_range(i, j, sum(piece.meta["length"] for piece in pieces))
    return [
        position
        for position, piece in enumerate(pieces)
        if piece.meta["offset"] <= j
        and piece.meta["offset"] + piece.meta["length"] - 1 >= i
    ]


def _rmq_partial(index, query: RMQQuery, meta, tracker: CostTracker):
    """A block's partial aggregate: (min value, leftmost *global* argmin).

    The query window is rebased into block-local coordinates; a block the
    window misses entirely contributes the monoid identity (None).
    """
    i, j, _position = query
    low = max(i - meta["offset"], 0)
    high = min(j - meta["offset"], meta["length"] - 1)
    if low > high:
        return None
    local = index.argmin(low, high, tracker)
    return (index.value_at(local), meta["offset"] + local)


def _locate_position(item, pieces):
    """Route a changed array position to its block (non-int items unroutable)."""
    if not isinstance(item, int):
        return None
    for position, piece in enumerate(pieces):
        offset = piece.meta["offset"]
        if offset <= item < offset + piece.meta["length"]:
            return position
    return None


def rmq_shard_spec() -> ShardSpec:
    """Monoid-combine sharding for L2: fold (value, position) minima.

    Lexicographic ``min`` over ``(value, global position)`` pairs is
    associative and commutative and ties break leftmost -- exactly the
    semantics of :func:`repro.indexes.sparse_table.naive_range_min` -- so
    the gather answers "is p the leftmost argmin of A[i..j]?" exactly.
    """
    return ShardSpec(
        policy="range",
        split=_split_array,
        merge=monoid_merge(
            _rmq_partial,
            fold=min,
            finalize=lambda best, query: best is not None and best[1] == query[2],
            name="monoid[min,leftmost]",
        ),
        route=_route_window,
        locate=_locate_position,
    )


def _apply_array_delta(index, changes, tracker: CostTracker):
    """Fold a PointWrite batch into an RMQ structure (batch-atomic).

    Arrays keep their length under maintenance (L2 is defined over a static
    index space), so only :class:`~repro.incremental.changes.PointWrite`
    records are accepted; inserts/deletes fall back to a rebuild.  Both RMQ
    structures repair locally -- one block re-signature plus a summary fix
    for Fischer--Heun, the covering dyadic windows for the sparse table.
    """
    size = len(index)
    for change in changes:
        if not isinstance(change, PointWrite):
            raise DeltaError(
                f"RMQ structures maintain PointWrite batches only, "
                f"got {type(change).__name__}"
            )
        if not 0 <= change.position < size:
            raise DeltaError(f"point write at {change.position} outside [0, {size})")
    for change in changes:
        index.point_update(change.position, change.value, tracker)
    return index


def fischer_heun_scheme() -> PiScheme:
    """[18]: O(n) preprocessing, O(1) queries."""

    def preprocess(data: ArrayData, tracker: CostTracker) -> FischerHeunRMQ:
        return FischerHeunRMQ(data, tracker)

    def evaluate(index: FischerHeunRMQ, query: RMQQuery, tracker: CostTracker) -> bool:
        i, j, position = query
        return index.argmin(i, j, tracker) == position

    def evaluate_fast(index: FischerHeunRMQ, query: RMQQuery) -> bool:
        i, j, position = query
        return index.argmin_fast(i, j) == position

    dump, load = state_codec(FischerHeunRMQ.from_state)
    return PiScheme(
        name="fischer-heun",
        preprocess=preprocess,
        evaluate=evaluate,
        description="block decomposition + Cartesian signatures (O(1) query)",
        dump=dump,
        load=load,
        sharding=rmq_shard_spec(),
        apply_delta=_apply_array_delta,
        evaluate_fast=evaluate_fast,
    )


def sparse_table_scheme() -> PiScheme:
    """The O(n log n)-space alternative with the same O(1) query bound."""

    def preprocess(data: ArrayData, tracker: CostTracker) -> SparseTable:
        return SparseTable(data, tracker)

    def evaluate(index: SparseTable, query: RMQQuery, tracker: CostTracker) -> bool:
        i, j, position = query
        return index.argmin(i, j, tracker) == position

    def evaluate_fast(index: SparseTable, query: RMQQuery) -> bool:
        i, j, position = query
        return index.argmin_fast(i, j) == position

    dump, load = state_codec(SparseTable.from_state)
    return PiScheme(
        name="sparse-table",
        preprocess=preprocess,
        evaluate=evaluate,
        description="dyadic-window sparse table (O(1) query)",
        dump=dump,
        load=load,
        sharding=rmq_shard_spec(),
        apply_delta=_apply_array_delta,
        evaluate_fast=evaluate_fast,
    )
