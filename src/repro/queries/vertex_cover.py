"""Vertex Cover query classes (paper, Section 4(9) and Corollary 7).

Two registry entries with opposite fates:

* **VC (general)**: NP-complete; by Corollary 7 it cannot be made
  Pi-tractable unless P = NP.  Registered with a hardness marker and *no*
  scheme -- the Figure 2 consistency checker enforces that combination.
* **VC_K (fixed K)**: the paper's Section 4(9): Buss kernelization shrinks
  (G, k) in O(|E|) to a kernel whose size depends on k alone; for fixed K
  the post-preprocessing decision cost is O(1) *in |G|*.  Modelled as a
  query class whose data is the graph and whose queries are budgets
  k <= K_MAX; preprocessing kernelizes once per budget.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.cost import CostTracker
from repro.core.language import DecisionProblem
from repro.core.query import PiScheme, QueryClass
from repro.graphs.generators import gnm_graph
from repro.graphs.graph import Graph
from repro.kernelization.vertex_cover import (
    BussKernel,
    VCInstance,
    buss_kernelize,
    vc_branch_decide,
    vc_decide,
)

__all__ = ["K_MAX", "vc_fixed_k_class", "kernel_scheme", "vc_problem"]

#: The fixed parameter bound of the VC_K class ("when K is fixed").
K_MAX = 6


def _generate_graph(size: int, rng: random.Random) -> Graph:
    """Hub-and-spoke graphs whose minimum cover size is a few hubs.

    Every non-hub vertex attaches to a random hub, so {hubs} is a cover;
    with enough leaves per hub the hubs are also *necessary*, putting the
    answer right around the sampled budgets k <= K_MAX and mixing yes/no.
    An occasional extra matching edge bumps the needed cover by one.
    """
    n = max(size, 8)
    hubs = rng.randint(1, K_MAX)
    graph = Graph(n)
    for vertex in range(hubs, n):
        graph.add_edge(rng.randrange(hubs), vertex)
    # A few hub-disjoint matching edges raise the required cover slightly.
    for extra in range(rng.randint(0, 2)):
        u = hubs + 2 * extra
        v = hubs + 2 * extra + 1
        if v < n and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def _generate_budgets(graph: Graph, rng: random.Random, count: int) -> List[int]:
    return [rng.randint(0, K_MAX) for _ in range(count)]


def _naive_decide(graph: Graph, budget: int, tracker: CostTracker) -> bool:
    """The no-preprocessing baseline: bounded search on the *full* graph."""
    return vc_decide(VCInstance(graph, budget), tracker, kernelize=False)


def vc_fixed_k_class() -> QueryClass:
    return QueryClass(
        name=f"vertex-cover-k<={K_MAX}",
        evaluate=_naive_decide,
        generate_data=_generate_graph,
        generate_queries=_generate_budgets,
        data_size=lambda graph: graph.n,
        description=f"has G a vertex cover of size <= k (k <= {K_MAX} fixed)",
    )


def kernel_scheme() -> PiScheme:
    """Buss kernelization as preprocessing (Section 4(9)).

    ``preprocess`` kernelizes the graph once per admissible budget
    (O(K_MAX * |E|), PTIME); ``evaluate`` decides the tiny residual with a
    bounded search tree whose size depends on k alone, so measured depth is
    O(1) with respect to |G|.
    """

    def preprocess(graph: Graph, tracker: CostTracker) -> Dict[int, BussKernel]:
        return {
            budget: buss_kernelize(VCInstance(graph, budget), tracker)
            for budget in range(K_MAX + 1)
        }

    def evaluate(kernels: Dict[int, BussKernel], budget: int, tracker: CostTracker) -> bool:
        kernel = kernels[budget]
        tracker.tick(1)
        if kernel.decided is not None:
            return kernel.decided
        return vc_branch_decide(set(kernel.residual_edges), kernel.residual_budget, tracker)

    return PiScheme(
        name="buss-kernel",
        preprocess=preprocess,
        evaluate=evaluate,
        description="Buss kernels per budget; decision cost depends on k only",
    )


def vc_problem() -> DecisionProblem:
    """General Vertex Cover -- the NP-complete problem of Corollary 7."""

    def contains(instance: VCInstance, tracker: CostTracker) -> bool:
        return vc_decide(instance, tracker)

    def generate(size: int, rng: random.Random) -> VCInstance:
        graph = _generate_graph(size, rng)
        return VCInstance(graph, rng.randint(0, max(2, graph.n // 3)))

    def encode_instance(instance: VCInstance) -> str:
        from repro.core import alphabet

        return alphabet.encode(
            (instance.graph.n, tuple(sorted(instance.graph.edges())), instance.k)
        )

    return DecisionProblem(
        name="vertex-cover",
        contains=contains,
        generate=generate,
        encode_instance=encode_instance,
        description="NP-complete Vertex Cover (paper, Section 4(9))",
    )
