"""Top-k queries with early termination (paper, Section 8, open issue (5)).

The paper's closing section conjectures that "top-k query answering with
early termination [14] may be made Pi-tractable" -- finding the top-k
answers without computing all of Q(D).  This module implements the cited
machinery, Fagin's Threshold Algorithm (TA) [Fagin, Lotem, Naor, JCSS 2003]:

* **preprocessing** builds, per score attribute, a descending sorted list
  plus O(1) random access to each object's full score vector (PTIME);
* **queries** ``(weights, k, theta)`` ask (Boolean form, per the paper's
  convention): *is the k-th largest weighted score at least theta?*  TA
  walks the sorted lists round-robin, maintains the current top-k, and stops
  as soon as the threshold -- the best score any unseen object could still
  achieve -- decides the answer.

TA is instance-optimal but not worst-case polylog, so the class is *not*
registered as PiT0Q; the EXT-TOPK experiment measures how far early
termination gets on random and correlated data, which is precisely what the
paper's open issue asks ("under certain conditions").
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Sequence, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import IndexError_
from repro.core.query import PiScheme, QueryClass, state_codec
from repro.incremental.changes import ChangeKind, TupleChange
from repro.service.merge import (
    ShardPiece,
    ShardSpec,
    kway_merge,
    locate_by_content,
    merge_sorted_desc,
    stable_bucket,
)

__all__ = ["TopKIndex", "topk_class", "topk_shard_spec", "threshold_algorithm_scheme"]

#: Data: a list of score rows (one score per attribute, floats kept as ints
#: for exact arithmetic).  Query: (weights, k, theta).
ScoreTable = Tuple[Tuple[int, ...], ...]
TopKQuery = Tuple[Tuple[int, ...], int, int]


class TopKIndex:
    """Per-attribute descending sorted lists + random access (TA's inputs).

    Rows live in a dict keyed by a stable, never-reused row id, so delta
    maintenance (Section 4(7)) can insert and delete rows without renumbering
    the ``(score, row id)`` entries of the sorted lists.  Every sorted list
    holds exactly one entry per live row, which is the invariant the TA walk
    (``range(len(self.rows))`` sorted-access rounds) relies on.
    """

    def __init__(self, table: ScoreTable, tracker: CostTracker | None = None):
        tracker = ensure_tracker(tracker)
        if not table:
            raise ValueError("top-k index needs at least one row")
        self.arity = len(table[0])
        self.rows: Dict[int, Tuple[int, ...]] = {
            row_id: tuple(row) for row_id, row in enumerate(table)
        }
        self._next_id = len(table)
        self.sorted_lists: List[List[Tuple[int, int]]] = []
        n = len(table)
        import math

        for attribute in range(self.arity):
            entries = sorted(
                ((row[attribute], row_id) for row_id, row in self.rows.items()),
                reverse=True,
            )
            if n > 1:
                tracker.tick(n * math.ceil(math.log2(n)))
            self.sorted_lists.append(entries)
        self._ids_by_row = self._derive_ids_by_row()

    def _derive_ids_by_row(self) -> Dict[Tuple[int, ...], List[int]]:
        ids: Dict[Tuple[int, ...], List[int]] = {}
        for row_id, row in self.rows.items():
            ids.setdefault(row, []).append(row_id)
        return ids

    def __len__(self) -> int:
        return len(self.rows)

    # -- delta maintenance (paper, Section 4(7)) ------------------------------

    @staticmethod
    def _desc_key(entry: Tuple[int, int]) -> Tuple[int, int]:
        # The sorted lists are descending tuples; bisect needs an ascending
        # view, so compare by the negated entry.
        return (-entry[0], -entry[1])

    def insert_row(self, row: Sequence[int], tracker: CostTracker | None = None) -> None:
        """Add one score row: O(log n) locate per attribute list."""
        tracker = ensure_tracker(tracker)
        as_tuple = tuple(row)
        if len(as_tuple) != self.arity:
            raise ValueError(f"row arity {len(as_tuple)} != index arity {self.arity}")
        import bisect
        import math

        row_id = self._next_id
        self._next_id += 1
        self.rows[row_id] = as_tuple
        self._ids_by_row.setdefault(as_tuple, []).append(row_id)
        cost = max(1, math.ceil(math.log2(max(len(self.rows), 2))))
        for attribute, entries in enumerate(self.sorted_lists):
            bisect.insort(entries, (as_tuple[attribute], row_id), key=self._desc_key)
            tracker.tick(cost)

    def delete_row(self, row: Sequence[int], tracker: CostTracker | None = None) -> bool:
        """Remove one occurrence of ``row``; False when it was absent."""
        tracker = ensure_tracker(tracker)
        as_tuple = tuple(row)
        ids = self._ids_by_row.get(as_tuple)
        if not ids:
            return False
        import bisect
        import math

        row_id = ids.pop()
        if not ids:
            del self._ids_by_row[as_tuple]
        del self.rows[row_id]
        cost = max(1, math.ceil(math.log2(max(len(self.rows) + 1, 2))))
        for attribute, entries in enumerate(self.sorted_lists):
            target = (as_tuple[attribute], row_id)
            position = bisect.bisect_left(entries, self._desc_key(target), key=self._desc_key)
            if position >= len(entries) or entries[position] != target:
                # Survives ``python -O``: a desync here means the one-entry-
                # per-live-row invariant is already broken and deleting a
                # neighbor would silently corrupt the TA walk.
                raise IndexError_(
                    f"top-k sorted list {attribute} out of sync with rows "
                    f"(missing entry {target!r})"
                )
            del entries[position]
            tracker.tick(cost)
        return True

    # -- serialization --------------------------------------------------------

    def to_state(self) -> dict:
        """Plain-data snapshot: id-keyed rows plus the descending sorted lists."""
        return {
            "rows": sorted((row_id, tuple(row)) for row_id, row in self.rows.items()),
            "next_id": self._next_id,
            "sorted_lists": [list(entries) for entries in self.sorted_lists],
        }

    @classmethod
    def from_state(cls, state: dict) -> "TopKIndex":
        index = cls.__new__(cls)
        index.rows = {row_id: tuple(row) for row_id, row in state["rows"]}
        index._next_id = int(state["next_id"])
        index.arity = len(next(iter(index.rows.values())))
        index.sorted_lists = [
            [tuple(entry) for entry in entries] for entries in state["sorted_lists"]
        ]
        index._ids_by_row = index._derive_ids_by_row()
        return index

    def _ta_rounds(self, weights: Sequence[int], k: int, tracker: CostTracker):
        """The TA sorted-access walk, one round per depth.

        Yields ``(tau, top_scores, accesses)`` after each round: the current
        frontier bound, the (live) min-heap of the best <= k aggregates seen,
        and the cumulative sorted-access count.  Both the theta-deciding
        evaluator and the per-shard top-k partial consume this single walk,
        differing only in their stop condition.
        """
        n = len(self.rows)
        seen: Dict[int, int] = {}
        top_scores: List[int] = []  # min-heap of the best k aggregates
        accesses = 0
        for depth in range(n):
            frontier = []
            for entries in self.sorted_lists:
                score, row_id = entries[depth]
                accesses += 1
                tracker.tick(1)
                frontier.append(score)
                if row_id not in seen:
                    aggregate = sum(
                        weight * value
                        for weight, value in zip(weights, self.rows[row_id])
                    )
                    tracker.tick(self.arity)
                    seen[row_id] = aggregate
                    if len(top_scores) < k:
                        heapq.heappush(top_scores, aggregate)
                    elif aggregate > top_scores[0]:
                        heapq.heapreplace(top_scores, aggregate)
            tau = sum(weight * score for weight, score in zip(weights, frontier))
            tracker.tick(self.arity)
            yield tau, top_scores, accesses

    def kth_score_at_least(
        self,
        weights: Sequence[int],
        k: int,
        theta: int,
        tracker: CostTracker | None = None,
    ) -> Tuple[bool, int]:
        """TA with early termination; returns (answer, sorted accesses).

        Sorted access proceeds one row per list per round; each newly seen
        object is randomly accessed for its full score (the TA recipe).
        Stops when (a) k objects score >= theta (answer True), or (b) the
        threshold tau -- the weighted frontier -- drops below theta and no
        k objects can reach it (answer False), or (c) the classic TA stop:
        k-th best >= tau decides the exact k-th value.
        """
        tracker = ensure_tracker(tracker)
        if k < 1 or len(weights) != self.arity:
            raise ValueError("bad top-k query")
        k = min(k, len(self.rows))
        kth_best, accesses = None, 0
        for tau, top_scores, accesses in self._ta_rounds(weights, k, tracker):
            kth_best = top_scores[0] if len(top_scores) == k else None
            # Early decisions against theta.
            if kth_best is not None and kth_best >= theta:
                return True, accesses
            if tau < theta:
                # No unseen object can reach theta; the k-th best is final
                # with respect to the theta comparison.
                return (kth_best is not None and kth_best >= theta), accesses
            # Classic TA stop: the k-th best dominates the frontier bound.
            if kth_best is not None and kth_best >= tau:
                return kth_best >= theta, accesses
        return (kth_best is not None and kth_best >= theta), accesses

    def kth_score_at_least_fast(
        self, weights: Sequence[int], k: int, theta: int
    ) -> bool:
        """Untracked :meth:`kth_score_at_least` (production serving kernel).

        The same TA walk and the same three stop conditions with zero
        instrumentation -- no per-access ticks, no access counting.  Answer
        equality with the tracked evaluator is pinned by the hot-path
        property suite.
        """
        if k < 1 or len(weights) != self.arity:
            raise ValueError("bad top-k query")
        rows = self.rows
        n = len(rows)
        k = min(k, n)
        seen: Dict[int, int] = {}
        top_scores: List[int] = []
        kth_best = None
        heappush, heapreplace = heapq.heappush, heapq.heapreplace
        for depth in range(n):
            tau = 0
            for weight, entries in zip(weights, self.sorted_lists):
                score, row_id = entries[depth]
                tau += weight * score
                if row_id not in seen:
                    aggregate = sum(
                        w * value for w, value in zip(weights, rows[row_id])
                    )
                    seen[row_id] = aggregate
                    if len(top_scores) < k:
                        heappush(top_scores, aggregate)
                    elif aggregate > top_scores[0]:
                        heapreplace(top_scores, aggregate)
            kth_best = top_scores[0] if len(top_scores) == k else None
            if kth_best is not None and kth_best >= theta:
                return True
            if tau < theta:
                return kth_best is not None and kth_best >= theta
            if kth_best is not None and kth_best >= tau:
                return kth_best >= theta
        return kth_best is not None and kth_best >= theta

    def top_aggregates(
        self,
        weights: Sequence[int],
        k: int,
        tracker: CostTracker | None = None,
    ) -> List[int]:
        """The exact top-``min(k, n)`` weighted aggregates, descending.

        The same TA sorted-access walk as :meth:`kth_score_at_least`, stopped
        by the classic TA condition alone (k-th best dominates the frontier
        bound tau), so the returned run is exact regardless of any theta.
        This is the per-shard *partial* of the k-way merge operator: the
        global top-k is contained in the union of per-shard top-k runs.
        """
        tracker = ensure_tracker(tracker)
        if k < 1 or len(weights) != self.arity:
            raise ValueError("bad top-k request")
        k = min(k, len(self.rows))
        best: List[int] = []
        for tau, top_scores, _accesses in self._ta_rounds(weights, k, tracker):
            best = top_scores
            if len(top_scores) == k and top_scores[0] >= tau:
                break
        return sorted(best, reverse=True)


def _split_table(table: ScoreTable, shards: int) -> List[ShardPiece]:
    """Hash-partition score rows; duplicates co-locate but stay distinct rows."""
    buckets: List[List[Tuple[int, ...]]] = [[] for _ in range(shards)]
    for row in table:
        buckets[stable_bucket(row, shards)].append(row)
    return [
        ShardPiece(index=i, count=shards, data=tuple(bucket))
        for i, bucket in enumerate(buckets)
    ]


def _topk_partial(index: "TopKIndex", query: TopKQuery, meta, tracker: CostTracker):
    """A shard's partial: (descending top-k run, shard cardinality).

    Invalid requests (k < 1, wrong weight arity) raise inside
    :meth:`TopKIndex.top_aggregates`, mirroring the monolithic evaluator.
    """
    weights, k, _theta = query
    return index.top_aggregates(weights, k, tracker), len(index)


def _topk_finalize(partials, query: TopKQuery) -> bool:
    """K-way merge the per-shard runs and test the global k-th aggregate."""
    _weights, k, theta = query
    total = sum(size for _run, size in partials)
    if total == 0:
        # Every shard was empty: the monolithic path cannot even build.
        raise ValueError("top-k index needs at least one row")
    k = min(k, total)
    merged = merge_sorted_desc([run for run, _size in partials], k)
    return len(merged) == k and merged[k - 1] >= theta


def topk_shard_spec() -> ShardSpec:
    """K-way-merge sharding for Section 8(5): local TA runs, global k-th test.

    Every shard emits its exact local top-k (TA with early termination);
    the gather k-way merges the sorted runs, so the global k-th weighted
    aggregate -- and hence the Boolean theta comparison -- is exact.
    """
    return ShardSpec(
        policy="hash",
        split=_split_table,
        merge=kway_merge(_topk_partial, _topk_finalize, name="kway[topk]"),
        locate=locate_by_content,
    )


def _generate_table(size: int, rng: random.Random) -> ScoreTable:
    # Two score attributes, mildly anti-correlated to keep TA honest.
    rows = []
    for _ in range(max(size, 4)):
        first = rng.randint(0, 1000)
        second = max(0, 1000 - first + rng.randint(-200, 200))
        rows.append((first, second))
    return tuple(rows)


def _naive_topk(table: ScoreTable, query: TopKQuery, tracker: CostTracker) -> bool:
    """The no-early-termination baseline: aggregate everything, sort."""
    weights, k, theta = query
    k = min(k, len(table))
    aggregates = []
    for row in table:
        tracker.tick(len(weights))
        aggregates.append(sum(weight * value for weight, value in zip(weights, row)))
    aggregates.sort(reverse=True)
    import math

    tracker.tick(len(aggregates) * max(1, math.ceil(math.log2(max(len(aggregates), 2)))))
    return aggregates[k - 1] >= theta


def _generate_queries(table: ScoreTable, rng: random.Random, count: int) -> List[TopKQuery]:
    queries: List[TopKQuery] = []
    for index in range(count):
        weights = (rng.randint(1, 3), rng.randint(1, 3))
        k = rng.randint(1, 10)
        # Mix thresholds around the plausible top range so answers split.
        scale = sum(weights) * 1000
        if index % 2 == 0:
            theta = rng.randint(scale // 2, scale)
        else:
            theta = rng.randint(0, scale // 2)
        queries.append((weights, k, theta))
    return queries


def topk_class() -> QueryClass:
    return QueryClass(
        name="topk-threshold",
        evaluate=_naive_topk,
        generate_data=_generate_table,
        generate_queries=_generate_queries,
        data_size=len,
        description="is the k-th best weighted score >= theta (paper S8(5), [14])",
    )


def _apply_table_delta(index: TopKIndex, changes, tracker: CostTracker) -> TopKIndex:
    """Fold a TupleChange batch into the TA index (batch-atomic).

    Inserts and deletes cost O(log n) per attribute list; a batch that would
    delete the last row raises :class:`~repro.core.errors.DeltaError` before
    touching anything (the monolithic path cannot even build on an empty
    table, so there is no correct structure to maintain towards).
    """
    from repro.core.errors import DeltaError

    balance = 0
    for change in changes:
        if not isinstance(change, TupleChange):
            raise DeltaError(
                f"threshold-algorithm maintains TupleChange batches only, "
                f"got {type(change).__name__}"
            )
        if len(change.row) != index.arity:
            raise DeltaError(
                f"row arity {len(change.row)} != index arity {index.arity}"
            )
        balance += 1 if change.kind is ChangeKind.INSERT else -1
    if len(index) + balance < 1:
        raise DeltaError("change batch would empty the top-k index")
    for change in changes:
        if change.kind is ChangeKind.INSERT:
            index.insert_row(change.row, tracker)
        else:
            index.delete_row(change.row, tracker)
    return index


def threshold_algorithm_scheme() -> PiScheme:
    """Fagin's TA over preprocessed sorted lists, with early termination."""

    def preprocess(table: ScoreTable, tracker: CostTracker) -> TopKIndex:
        return TopKIndex(table, tracker)

    def evaluate(index: TopKIndex, query: TopKQuery, tracker: CostTracker) -> bool:
        weights, k, theta = query
        answer, _ = index.kth_score_at_least(weights, k, theta, tracker)
        return answer

    def evaluate_fast(index: TopKIndex, query: TopKQuery) -> bool:
        weights, k, theta = query
        return index.kth_score_at_least_fast(weights, k, theta)

    dump, load = state_codec(TopKIndex.from_state)
    return PiScheme(
        name="threshold-algorithm",
        preprocess=preprocess,
        evaluate=evaluate,
        description="TA with early termination over sorted score lists [14]",
        dump=dump,
        load=load,
        # v2: rows became id-keyed (delta maintenance); v1 artifacts never alias.
        artifact_version=2,
        sharding=topk_shard_spec(),
        apply_delta=_apply_table_delta,
        evaluate_fast=evaluate_fast,
    )
