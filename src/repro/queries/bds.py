"""Breadth-Depth Search order queries: BDS and Q_BDS (paper, Examples 2/4/5,
Figure 1, Theorem 5).

The problem BDS: given an undirected graph G with numbered vertices and a
pair (u, v), is u visited before v in the numbering-induced breadth-depth
search?  BDS is P-complete [21], yet *can be made Pi-tractable* -- it is in
fact the paper's ΠTP-complete problem.  Figure 1's two factorizations are
both implemented:

* ``Upsilon_BDS`` (pi1 = G, pi2 = (u, v)): preprocessing runs the search
  once (PTIME) and stores the visit positions; afterwards every order query
  is two binary searches, O(log |G|) (Example 5's list M).  An O(1)
  dict-lookup variant is included for contrast.
* ``Upsilon'`` (pi1 = epsilon, pi2 = (G, (u, v))): nothing is preprocessed;
  every query re-runs the full search, Theta(n + m) -- PTIME answering,
  not Pi-tractable.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.cost import CostTracker
from repro.core.factorization import EMPTY_DATA, Factorization, trivial_factorization
from repro.core.language import DecisionProblem
from repro.core.query import PiScheme, QueryClass
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import breadth_depth_search, visit_position
from repro.indexes.sorted_run import KeyedRunIndex

__all__ = [
    "bds_order",
    "bds_query_class",
    "bds_problem",
    "upsilon_bds",
    "upsilon_prime",
    "position_index_scheme",
    "position_dict_scheme",
    "no_preprocessing_scheme",
]

BDSInstance = Tuple[Graph, Tuple[int, int]]
OrderQuery = Tuple[int, int]


def bds_order(graph: Graph, tracker: CostTracker | None = None) -> List[int]:
    """The list M of Example 5: vertices in BDS visit order."""
    return breadth_depth_search(graph, tracker=tracker)


def _generate_graph(size: int, rng: random.Random) -> Graph:
    n = max(size, 2)
    return random_connected_graph(n, n // 2, rng)


def _generate_order_queries(graph: Graph, rng: random.Random, count: int) -> List[OrderQuery]:
    queries: List[OrderQuery] = []
    for _ in range(count):
        u = rng.randrange(graph.n)
        v = rng.randrange(graph.n)
        while v == u and graph.n > 1:
            v = rng.randrange(graph.n)
        queries.append((u, v))
    return queries


def _naive_before(graph: Graph, query: OrderQuery, tracker: CostTracker) -> bool:
    """Run the full search per query -- the Upsilon' regime of Figure 1."""
    u, v = query
    position = visit_position(breadth_depth_search(graph, tracker=tracker))
    return position[u] < position[v]


def bds_query_class() -> QueryClass:
    """Q_BDS: the query class of (BDS, Upsilon_BDS) -- Theorem 5's
    ΠTQ-complete class."""
    return QueryClass(
        name="bds-order",
        evaluate=_naive_before,
        generate_data=_generate_graph,
        generate_queries=_generate_order_queries,
        data_size=lambda graph: graph.n,
        description="is u visited before v in breadth-depth search (Example 2)",
    )


def bds_problem() -> DecisionProblem:
    """BDS as a decision problem over instances (G, (u, v))."""

    def contains(instance: BDSInstance, tracker: CostTracker) -> bool:
        graph, pair = instance
        return _naive_before(graph, pair, tracker)

    def generate(size: int, rng: random.Random) -> BDSInstance:
        graph = _generate_graph(size, rng)
        return graph, _generate_order_queries(graph, rng, 1)[0]

    def encode_instance(instance: BDSInstance) -> str:
        graph, (u, v) = instance
        from repro.core import alphabet

        return alphabet.encode((graph.directed, graph.n, tuple(sorted(graph.edges())), u, v))

    return DecisionProblem(
        name="BDS",
        contains=contains,
        generate=generate,
        encode_instance=encode_instance,
        description="breadth-depth search order (paper, Example 2; P-complete)",
    )


def bds_trivial_query_class() -> QueryClass:
    """The query class of (BDS, Upsilon'): whole instances as queries.

    The data part is the empty string epsilon; the integer returned by
    ``generate_data`` is *only a workload-scale hint* (how big the generated
    query instances should be) -- it carries no information about any graph,
    so no preprocessing of it can help.  ``data_size`` reports that scale so
    the certifier's size axis tracks |Q|, the quantity Definition 1 requires
    polylog behaviour in.  The certifier duly *fails* this class's scheme:
    that failure is the right-hand side of Figure 1.
    """

    def generate_data(size: int, rng: random.Random) -> int:
        return max(size, 2)

    def generate_queries(scale: int, rng: random.Random, count: int) -> List[BDSInstance]:
        instances: List[BDSInstance] = []
        for _ in range(count):
            graph = _generate_graph(scale, rng)
            instances.append((graph, _generate_order_queries(graph, rng, 1)[0]))
        return instances

    def evaluate(scale: int, query: BDSInstance, tracker: CostTracker) -> bool:
        graph, pair = query
        return _naive_before(graph, pair, tracker)

    return QueryClass(
        name="bds-order-trivial",
        evaluate=evaluate,
        generate_data=generate_data,
        generate_queries=generate_queries,
        data_size=lambda scale: scale,
        description="(BDS, Upsilon'): epsilon as data, (G,(u,v)) as query",
    )


def upsilon_bds() -> Factorization:
    """Figure 1 left: pi1 = G (preprocess the graph), pi2 = (u, v)."""
    return Factorization(
        name="Upsilon_BDS",
        pi1=lambda instance: instance[0],
        pi2=lambda instance: instance[1],
        rho=lambda graph, pair: (graph, pair),
        encode_data=lambda graph: graph.encode(),
        description="graph as data, vertex pair as query (Figure 1, left)",
    )


def upsilon_prime() -> Factorization:
    """Figure 1 right: pi1 = epsilon, pi2 = the whole instance.

    With nothing to preprocess, query answering stays PTIME -- the
    not-Pi-tractable regime.
    """
    return Factorization(
        name="Upsilon'[BDS]",
        pi1=lambda instance: EMPTY_DATA,
        pi2=lambda instance: instance,
        rho=lambda data, query: query,
        description="nothing as data, (G,(u,v)) as query (Figure 1, right)",
    )


def position_index_scheme() -> PiScheme:
    """Example 5's scheme: one BDS run, then binary searches on the sorted
    (vertex, position) run -- O(log |M|) per query."""

    def preprocess(graph: Graph, tracker: CostTracker) -> KeyedRunIndex:
        order = breadth_depth_search(graph, tracker=tracker)
        return KeyedRunIndex(list(zip(order, range(len(order)))), tracker)

    def evaluate(index: KeyedRunIndex, query: OrderQuery, tracker: CostTracker) -> bool:
        u, v = query
        pos_u = index.lookup(u, tracker)
        pos_v = index.lookup(v, tracker)
        tracker.tick(1)
        if pos_u is None or pos_v is None:
            return False
        return pos_u < pos_v

    def evaluate_fast(index: KeyedRunIndex, query: OrderQuery) -> bool:
        u, v = query
        pos_u = index.lookup_fast(u)
        pos_v = index.lookup_fast(v)
        if pos_u is None or pos_v is None:
            return False
        return pos_u < pos_v

    return PiScheme(
        name="bds-position-run",
        preprocess=preprocess,
        evaluate=evaluate,
        factorization_name="Upsilon_BDS",
        description="binary search on the visit-order list M (Example 5)",
        evaluate_fast=evaluate_fast,
    )


def position_dict_scheme() -> PiScheme:
    """O(1) variant: store positions in a hash map instead of a sorted run."""

    def preprocess(graph: Graph, tracker: CostTracker) -> List[int]:
        order = breadth_depth_search(graph, tracker=tracker)
        tracker.tick(len(order))
        return visit_position(order)

    def evaluate(position: List[int], query: OrderQuery, tracker: CostTracker) -> bool:
        u, v = query
        tracker.tick(2)
        return position[u] < position[v]

    return PiScheme(
        name="bds-position-dict",
        preprocess=preprocess,
        evaluate=evaluate,
        factorization_name="Upsilon_BDS",
        description="direct position-array lookups, O(1) per query",
    )


def no_preprocessing_scheme() -> PiScheme:
    """The Upsilon' regime: Pi is constant, every query replays the search.

    Registered so the certifier can *fail* it -- the measured evaluation
    depth grows linearly, demonstrating the Figure 1 dichotomy.
    """

    def preprocess(data, tracker: CostTracker):
        # The data part is (morally) epsilon: whatever arrives here carries
        # no information about the graphs the queries will mention, so the
        # only honest "preprocessing" is the identity.
        tracker.tick(1)
        return data

    def evaluate(_, query: BDSInstance, tracker: CostTracker) -> bool:
        graph, pair = query
        return _naive_before(graph, pair, tracker)

    return PiScheme(
        name="bds-no-preprocessing",
        preprocess=preprocess,
        evaluate=evaluate,
        factorization_name="Upsilon'[BDS]",
        description="replay the full search per query (Figure 1, right)",
    )
