"""The paper's case-study query classes, wired into the core framework.

=====================  =====================================================
``selection``          Example 1 / Section 4(1): point & range selection
``membership``         Section 4(2): searching in a list (L1)
``rmq``                Section 4(3): minimum range queries (L2)
``lca``                Section 4(4): LCA in trees and DAGs (L3)
``reachability``       Example 3: GAP / Q2
``bds``                Examples 2/4/5, Figure 1, Theorem 5: BDS and Q_BDS
``cvp``                Section 4(8) and Theorem 9: CVP factorizations
``vertex_cover``       Section 4(9) and Corollary 7: VC and VC_K
``strategies``         Section 4(5)-(6) as Pi-schemes (compression, views)
``sat``                Corollary 7: 3SAT and the classic 3SAT -> VC reduction
``agap``               extension: alternating reachability (P-complete)
``topk``               extension: Section 8(5), top-k via Fagin's TA [14]
=====================  =====================================================
"""

from repro.queries.agap import agap_class, agap_problem, winning_set_scheme
from repro.queries.bds import (
    bds_order,
    bds_problem,
    bds_query_class,
    bds_trivial_query_class,
    no_preprocessing_scheme,
    position_dict_scheme,
    position_index_scheme,
    upsilon_bds,
    upsilon_prime,
)
from repro.queries.cvp import (
    cvp_factorized_class,
    cvp_problem,
    cvp_trivial_class,
    gate_table_scheme,
    reevaluate_scheme,
    upsilon_cvp,
    upsilon_zero,
)
from repro.queries.lca import (
    dag_bitset_scheme,
    dag_lca_class,
    euler_tour_scheme,
    tree_lca_class,
)
from repro.queries.membership import (
    membership_class,
    membership_factorization,
    membership_problem,
    membership_shard_spec,
    sorted_run_scheme,
)
from repro.queries.reachability import (
    closure_scheme,
    nc_squaring_scheme,
    reachability_class,
)
from repro.queries.rmq import (
    fischer_heun_scheme,
    rmq_class,
    rmq_shard_spec,
    sparse_table_scheme,
)
from repro.queries.sat import (
    Formula,
    sat_decide,
    three_sat_problem,
    three_sat_to_vertex_cover,
)
from repro.queries.selection import (
    btree_point_scheme,
    btree_range_scheme,
    hash_point_scheme,
    point_selection_class,
    range_selection_class,
    selection_shard_spec,
)
from repro.queries.strategies import compression_scheme, views_scheme
from repro.queries.topk import (
    TopKIndex,
    threshold_algorithm_scheme,
    topk_class,
    topk_shard_spec,
)
from repro.queries.vertex_cover import (
    K_MAX,
    kernel_scheme,
    vc_fixed_k_class,
    vc_problem,
)

__all__ = [
    "agap_class",
    "agap_problem",
    "winning_set_scheme",
    "TopKIndex",
    "threshold_algorithm_scheme",
    "topk_class",
    "topk_shard_spec",
    "bds_order",
    "bds_problem",
    "bds_query_class",
    "bds_trivial_query_class",
    "no_preprocessing_scheme",
    "position_dict_scheme",
    "position_index_scheme",
    "upsilon_bds",
    "upsilon_prime",
    "cvp_factorized_class",
    "cvp_problem",
    "cvp_trivial_class",
    "gate_table_scheme",
    "reevaluate_scheme",
    "upsilon_cvp",
    "upsilon_zero",
    "dag_bitset_scheme",
    "dag_lca_class",
    "euler_tour_scheme",
    "tree_lca_class",
    "membership_class",
    "membership_factorization",
    "membership_problem",
    "membership_shard_spec",
    "sorted_run_scheme",
    "closure_scheme",
    "nc_squaring_scheme",
    "reachability_class",
    "fischer_heun_scheme",
    "rmq_class",
    "rmq_shard_spec",
    "sparse_table_scheme",
    "Formula",
    "sat_decide",
    "three_sat_problem",
    "three_sat_to_vertex_cover",
    "btree_point_scheme",
    "btree_range_scheme",
    "hash_point_scheme",
    "point_selection_class",
    "range_selection_class",
    "selection_shard_spec",
    "compression_scheme",
    "views_scheme",
    "K_MAX",
    "kernel_scheme",
    "vc_fixed_k_class",
    "vc_problem",
]
