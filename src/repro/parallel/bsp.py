"""A BSP (bulk-synchronous parallel) cost model (paper, Section 8, issue (1)).

The paper's first open issue: NC's PRAM "may not be accurate for parallel
systems such as MapReduce and its variants", and calls for models that
account both computation and *coordination* (synchronisation rounds) -- the
measure of [25, 29] and of Valiant's BSP [40].  This module supplies the
standard BSP accounting so the reproduction's algorithms can be re-measured
in round-oriented terms:

    cost = sum over supersteps of ( max local work + g * max messages + L )

with ``g`` the bandwidth coefficient and ``L`` the per-superstep latency
(barrier) charge.  The *number of supersteps* is the coordination complexity
a MapReduce deployment would care about.

Two reachability routes are provided as worked algorithms: frontier BFS
(diameter-many supersteps, light rounds) and repeated matrix squaring
(ceil(log2 n) supersteps, heavy rounds) -- the BSP rendering of Example 3's
trade-off, measured in ``benchmarks/bench_extension_models.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

__all__ = ["BSPMachine", "bsp_reachability_frontier", "bsp_reachability_squaring"]


@dataclass
class _Superstep:
    max_local_work: int
    max_messages: int


@dataclass
class BSPMachine:
    """Superstep ledger with Valiant's cost formula."""

    g: int = 2  #: bandwidth cost per message word
    latency: int = 50  #: barrier/synchronisation charge per superstep
    supersteps: List[_Superstep] = field(default_factory=list)

    def superstep(self, local_work_per_processor: Sequence[int], messages_per_processor: Sequence[int]) -> None:
        """Record one superstep from per-processor work/message profiles."""
        self.supersteps.append(
            _Superstep(
                max_local_work=max(local_work_per_processor, default=0),
                max_messages=max(messages_per_processor, default=0),
            )
        )

    @property
    def rounds(self) -> int:
        """Coordination complexity: the number of global synchronisations."""
        return len(self.supersteps)

    @property
    def total_cost(self) -> int:
        return sum(
            step.max_local_work + self.g * step.max_messages + self.latency
            for step in self.supersteps
        )

    def summary(self) -> str:
        return (
            f"BSP(rounds={self.rounds}, cost={self.total_cost}, "
            f"g={self.g}, L={self.latency})"
        )


def bsp_reachability_frontier(
    adjacency: np.ndarray,
    source: int,
    target: int,
    machine: BSPMachine,
) -> bool:
    """Frontier-expansion BFS: one vertex per processor, one superstep per
    BFS level.  Rounds = eccentricity of the source (up to n), each round
    cheap -- many synchronisations, little work."""
    n = adjacency.shape[0]
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    while frontier.any():
        if visited[target]:
            return True
        # Each frontier processor scans its adjacency row and messages its
        # unvisited successors.
        successors = adjacency[frontier].any(axis=0) & ~visited
        work = [int(adjacency[v].sum()) + 1 for v in np.flatnonzero(frontier)]
        messages = [int((adjacency[v] & ~visited).sum()) for v in np.flatnonzero(frontier)]
        machine.superstep(work, messages)
        visited |= successors
        frontier = successors
    return bool(visited[target])


def bsp_reachability_squaring(
    adjacency: np.ndarray,
    source: int,
    target: int,
    machine: BSPMachine,
) -> bool:
    """Matrix-squaring reachability: ceil(log2 n) supersteps, each a full
    Boolean matrix product -- few synchronisations, heavy rounds.  This is
    the BSP/MapReduce rendering of the NC algorithm (cf. [28]: NC algorithms
    translate to O(t) MapReduce rounds)."""
    import math

    n = adjacency.shape[0]
    reach = adjacency.astype(bool) | np.eye(n, dtype=bool)
    rounds = max(1, math.ceil(math.log2(max(n, 2))))
    for _ in range(rounds):
        reach = np.matmul(reach, reach) > 0
        # One processor per matrix row: n^2 multiply-adds of local work,
        # and it exchanges its row (n words) with the others.
        machine.superstep([n * n] * n, [n] * n)
    return bool(reach[source, target])
