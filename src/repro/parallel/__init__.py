"""Work--depth PRAM simulation: the NC substrate of the reproduction.

See :mod:`repro.parallel.pram` for the machine model and
:mod:`repro.parallel.primitives` for executed/charged primitives.
"""

from repro.parallel.bsp import (
    BSPMachine,
    bsp_reachability_frontier,
    bsp_reachability_squaring,
)
from repro.parallel.pram import ParallelMachine
from repro.parallel.primitives import (
    parallel_any,
    parallel_binary_search,
    parallel_max,
    parallel_sort,
    parallel_sum,
    reachability_query_squaring,
    transitive_closure_squaring,
)

__all__ = [
    "BSPMachine",
    "bsp_reachability_frontier",
    "bsp_reachability_squaring",
    "ParallelMachine",
    "parallel_any",
    "parallel_binary_search",
    "parallel_max",
    "parallel_sort",
    "parallel_sum",
    "reachability_query_squaring",
    "transitive_closure_squaring",
]
