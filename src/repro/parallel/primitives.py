"""PRAM primitives built on :class:`~repro.parallel.pram.ParallelMachine`.

Each primitive notes whether it is **executed** (the parallel round structure
really runs, charging per element per round) or **charged** (the value is
computed by an efficient sequential/numpy kernel while the textbook PRAM cost
is charged analytically).  Charged primitives exist where honestly executing
the PRAM schedule in pure Python would be quadratic-or-worse overhead without
changing any measured *shape* -- the depth formula is what certification
consumes.  See DESIGN.md, "Hardware substitution".

A third category exists for the serving hot path: **untracked** kernels
(:func:`binary_search_untracked`) compute the same value as their executed
twin with zero instrumentation -- the production fast path of the service
layer, where the polylog *shape* is already certified and only the constant
matters.  Analytic callers must keep using the executed primitives.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import List, Optional, Sequence, TypeVar

import numpy as np

from repro.core.cost import CostTracker, ensure_tracker
from repro.parallel.pram import ParallelMachine

__all__ = [
    "parallel_sum",
    "parallel_max",
    "parallel_any",
    "parallel_binary_search",
    "binary_search_untracked",
    "parallel_sort",
    "transitive_closure_squaring",
    "reachability_query_squaring",
]

T = TypeVar("T")


def parallel_sum(values: Sequence[float], machine: ParallelMachine) -> float:
    """Tree-sum (executed): depth O(log n), work O(n)."""

    def combine(a: float, b: float, tracker: CostTracker) -> float:
        tracker.tick(1)
        return a + b

    result = machine.preduce(combine, values, identity=0.0)
    assert result is not None
    return result


def parallel_max(values: Sequence[T], machine: ParallelMachine) -> Optional[T]:
    """Tree-max (executed): depth O(log n), work O(n); None on empty input."""

    def combine(a: T, b: T, tracker: CostTracker) -> T:
        tracker.tick(1)
        return a if a >= b else b  # type: ignore[operator]

    return machine.preduce(combine, values)


def parallel_any(flags: Sequence[bool], machine: ParallelMachine) -> bool:
    """Tree-OR (executed): depth O(log n), work O(n)."""

    def combine(a: bool, b: bool, tracker: CostTracker) -> bool:
        tracker.tick(1)
        return a or b

    result = machine.preduce(combine, flags, identity=False)
    return bool(result)


def parallel_binary_search(
    sorted_values: Sequence[T],
    key: T,
    tracker: Optional[CostTracker] = None,
) -> int:
    """Leftmost insertion point of ``key`` in ``sorted_values`` (executed).

    Binary search is already in NC -- a single processor, O(log n) depth --
    which is exactly the paper's Example 1/Example 5 query step.  One unit is
    charged per comparison.
    """
    tracker = ensure_tracker(tracker)
    lo, hi = 0, len(sorted_values)
    while lo < hi:
        mid = (lo + hi) // 2
        tracker.tick(1)
        if sorted_values[mid] < key:  # type: ignore[operator]
            lo = mid + 1
        else:
            hi = mid
    return lo


def binary_search_untracked(sorted_values: Sequence[T], key: T) -> int:
    """Leftmost insertion point of ``key`` (untracked; C ``bisect``).

    The production twin of :func:`parallel_binary_search`: identical result
    for every input (both compute the leftmost insertion point), but the
    comparisons run inside CPython's C ``bisect_left`` with no per-step
    charge -- the kernel behind the service layer's untracked serving
    fast path.
    """
    return bisect_left(sorted_values, key)  # type: ignore[arg-type]


def parallel_sort(
    values: Sequence[T],
    machine: ParallelMachine,
    *,
    key=None,
) -> List[T]:
    """Sort (charged): bitonic-network cost -- depth O(log^2 n), work
    O(n log^2 n).

    The values are produced by Python's sort; the charge follows Batcher's
    bitonic sorting network, the standard NC sorting bound used when citing
    "sorting is in NC".
    """
    n = len(values)
    result = sorted(values, key=key)
    if n > 1:
        rounds = math.ceil(math.log2(n)) ** 2
        machine.tracker.tick(work=n * rounds, depth=rounds)
    return result


def transitive_closure_squaring(
    adjacency: np.ndarray,
    machine: ParallelMachine,
) -> np.ndarray:
    """Reflexive-transitive closure by repeated Boolean squaring (charged).

    This is the classical NC algorithm for the Graph Accessibility Problem
    (paper, Example 3: GAP is NL-complete and NL is contained in NC): square
    the Boolean matrix ceil(log2 n) times.  Each squaring charges n^3 work
    (one processor per (i, j, k) triple) and log2(n) + 1 depth (an AND, then
    an OR-reduction tree over n terms); total depth O(log^2 n).

    The value itself is computed with numpy matrix products.
    """
    n = adjacency.shape[0]
    if adjacency.shape != (n, n):
        raise ValueError("adjacency must be a square Boolean matrix")
    reach = adjacency.astype(bool) | np.eye(n, dtype=bool)
    if n <= 1:
        return reach
    rounds = math.ceil(math.log2(n))
    depth_per_round = math.ceil(math.log2(n)) + 1
    for _ in range(rounds):
        reach = np.matmul(reach, reach) > 0
        machine.tracker.tick(work=n**3, depth=depth_per_round)
    return reach


def reachability_query_squaring(
    adjacency: np.ndarray,
    source: int,
    target: int,
    machine: ParallelMachine,
) -> bool:
    """Answer one s-t reachability query in NC *without preprocessing*.

    Used by the Example 3 experiment to contrast three regimes: per-query BFS
    (PTIME), per-query NC matrix squaring (polylog depth, n^3 log n work),
    and O(1) lookup in a precomputed closure (Pi-tractable regime).
    """
    closure = transitive_closure_squaring(adjacency, machine)
    machine.tracker.tick(1)
    return bool(closure[source, target])
