"""A work--depth PRAM simulator (the paper's NC substrate).

The paper's online query-answering bound is **NC**: O(log^O(1) n) time on a
PRAM with n^O(1) processors (Section 2, "P and NC").  We cannot run a PRAM,
so this module *simulates* one at the cost-model level: parallel constructs
execute their branches sequentially in Python while accounting cost as a PRAM
would -- ``work = sum`` over branches, ``depth = max`` over branches (plus
O(1) fork/join overhead).  Measured depth is what the tractability certifier
feeds to the scaling classifier; see DESIGN.md, "Hardware substitution".

Two kinds of primitives exist in :mod:`repro.parallel`:

* **executed** primitives really perform the round structure of the parallel
  algorithm (pointer jumping, tree reduction, Hillis--Steele scan), charging
  per-element per-round; and
* **charged** primitives compute the value with an efficient sequential or
  numpy kernel but charge the textbook PRAM cost analytically (Boolean matrix
  squaring at n^3 work, sorting networks).  Each is documented as such.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

from repro.core.cost import CostTracker, ensure_tracker

__all__ = ["ParallelMachine"]

T = TypeVar("T")
R = TypeVar("R")


class ParallelMachine:
    """One PRAM, charging all parallel constructs to a single tracker.

    Branch callables receive a *forked* tracker; the machine folds branch
    snapshots back with ``work = sum``/``depth = max`` semantics.
    """

    def __init__(self, tracker: Optional[CostTracker] = None) -> None:
        self.tracker = ensure_tracker(tracker)

    # -- data-parallel map ---------------------------------------------------

    def pmap(self, fn: Callable[[T, CostTracker], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item on its own processor (executed).

        Depth is the maximum branch depth + O(1); work is the branch sum plus
        one unit per processor activation.
        """
        results: List[R] = []
        costs = []
        for item in items:
            sub = self.tracker.fork()
            sub.tick(1)  # processor activation
            results.append(fn(item, sub))
            costs.append(sub.snapshot())
        self.tracker.parallel(costs)
        return results

    # -- tree reduction --------------------------------------------------------

    def preduce(
        self,
        combine: Callable[[T, T, CostTracker], T],
        items: Sequence[T],
        identity: Optional[T] = None,
    ) -> Optional[T]:
        """Balanced-tree reduction (executed): depth O(log n * d_combine).

        Returns ``identity`` on empty input.
        """
        level = list(items)
        if not level:
            return identity
        while len(level) > 1:
            next_level: List[T] = []
            costs = []
            for i in range(0, len(level) - 1, 2):
                sub = self.tracker.fork()
                next_level.append(combine(level[i], level[i + 1], sub))
                costs.append(sub.snapshot())
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            self.tracker.parallel(costs)
            level = next_level
        return level[0]

    # -- inclusive scan --------------------------------------------------------

    def pscan(self, op: Callable[[T, T], T], items: Sequence[T]) -> List[T]:
        """Hillis--Steele inclusive scan (executed).

        Depth O(log n), work O(n log n); ``op`` must be associative and is
        charged one unit per application.
        """
        values = list(items)
        n = len(values)
        distance = 1
        while distance < n:
            updated = list(values)
            applications = 0
            for i in range(distance, n):
                updated[i] = op(values[i - distance], values[i])
                applications += 1
            # One parallel round: every application runs concurrently.
            self.tracker.tick(work=applications, depth=1)
            values = updated
            distance *= 2
        return values

    # -- pointer jumping ---------------------------------------------------------

    def list_rank(self, successor: Sequence[Optional[int]]) -> List[int]:
        """Rank every node of a linked list by pointer jumping (executed).

        ``successor[i]`` is the next node index or ``None`` at the tail.
        Returns the number of hops from each node to the tail.  Depth
        O(log n), work O(n log n) -- the Wyllie list-ranking algorithm.
        """
        n = len(successor)
        nxt: List[Optional[int]] = list(successor)
        rank = [0 if nxt[i] is None else 1 for i in range(n)]
        rounds = 0
        while any(pointer is not None for pointer in nxt):
            new_rank = list(rank)
            new_next: List[Optional[int]] = list(nxt)
            for i in range(n):
                pointer = nxt[i]
                if pointer is not None:
                    new_rank[i] = rank[i] + rank[pointer]
                    new_next[i] = nxt[pointer]
            # Each of the n processors does O(1) per round.
            self.tracker.tick(work=n, depth=1)
            rank, nxt = new_rank, new_next
            rounds += 1
            if rounds > 2 * n + 2:  # pragma: no cover - guards against cycles
                raise ValueError("successor structure is not a forest of lists")
        return rank
