"""Circuit evaluation: sequential CVP and the layered work--depth view.

Three evaluators, matching the three roles circuits play in the paper:

* :func:`evaluate` -- the plain PTIME CVP decision procedure (one pass over
  the gate list); this is the per-query cost that Theorem 9 shows cannot be
  preprocessed away under the empty-data factorization.
* :func:`evaluate_all` -- evaluates *every* gate and returns the value
  vector; this is the PTIME preprocessing step of the Section 4(8)
  factorization (circuit + inputs as data, designated output as query).
* :func:`evaluate_layered` -- evaluates level by level on the
  :class:`~repro.parallel.pram.ParallelMachine`; its measured depth is the
  circuit depth, making the P-completeness obstruction *visible*: for deep
  circuits the depth is linear, for shallow (NC-like) circuits polylog.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import CircuitError
from repro.circuits.circuit import Circuit, Gate, GateOp
from repro.parallel.pram import ParallelMachine

__all__ = ["evaluate", "evaluate_all", "evaluate_layered", "gate_value"]


def _check_inputs(circuit: Circuit, inputs: List[bool]) -> None:
    if len(inputs) != circuit.n_inputs:
        raise CircuitError(
            f"expected {circuit.n_inputs} input bits, got {len(inputs)}"
        )


def gate_value(gate: Gate, values: List[bool], inputs: List[bool]) -> bool:
    """The value of one gate given already-computed predecessor values."""
    if gate.op is GateOp.INPUT:
        return inputs[gate.payload]
    if gate.op is GateOp.CONST:
        return bool(gate.payload)
    return gate.op.apply([values[argument] for argument in gate.args])


def evaluate_all(
    circuit: Circuit,
    inputs: List[bool],
    tracker: Optional[CostTracker] = None,
) -> List[bool]:
    """Value of every gate, one sequential pass; Theta(|circuit|)."""
    tracker = ensure_tracker(tracker)
    _check_inputs(circuit, inputs)
    values: List[bool] = []
    for gate in circuit.gates:
        tracker.tick(1 + len(gate.args))
        values.append(gate_value(gate, values, inputs))
    return values


def evaluate(
    circuit: Circuit,
    inputs: List[bool],
    tracker: Optional[CostTracker] = None,
) -> bool:
    """CVP: the value of the designated output gate (PTIME, full pass)."""
    return evaluate_all(circuit, inputs, tracker)[circuit.output]


def evaluate_layered(
    circuit: Circuit,
    inputs: List[bool],
    machine: ParallelMachine,
) -> bool:
    """Layer-parallel evaluation: depth = circuit depth, work = circuit size.

    Each layer's gates evaluate concurrently (one processor per gate); the
    layers themselves are inherently sequential.  For circuits of depth d
    the measured PRAM depth is Theta(d) -- polylog only when the circuit is
    shallow, which is exactly the NC-vs-P boundary CVP sits on.
    """
    _check_inputs(circuit, inputs)
    values: List[Optional[bool]] = [None] * len(circuit.gates)

    for layer in circuit.layers():

        def eval_one(index: int, tracker: CostTracker) -> bool:
            gate = circuit.gates[index]
            tracker.tick(1 + len(gate.args))
            return gate_value(gate, values, inputs)  # type: ignore[arg-type]

        results = machine.pmap(eval_one, layer)
        for index, value in zip(layer, results):
            values[index] = value

    output = values[circuit.output]
    assert output is not None
    return output
