"""Random circuit generators for CVP workloads.

Deep chains make P-hardness-shaped instances (depth Theta(n), where
layer-parallelism cannot help); shallow layered circuits make NC-shaped
instances; unrestricted random DAG circuits exercise correctness.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.circuits.circuit import Circuit, Gate, GateOp

__all__ = [
    "random_circuit",
    "random_monotone_circuit",
    "layered_circuit",
    "deep_chain_circuit",
    "random_inputs",
]

_GENERAL_OPS = (GateOp.AND, GateOp.OR, GateOp.NOT, GateOp.NAND, GateOp.NOR)
_MONOTONE_OPS = (GateOp.AND, GateOp.OR)


def random_inputs(n_inputs: int, rng: random.Random) -> List[bool]:
    return [rng.random() < 0.5 for _ in range(n_inputs)]


def _input_layer(n_inputs: int) -> List[Gate]:
    return [Gate(GateOp.INPUT, payload=position) for position in range(n_inputs)]


def random_circuit(
    n_inputs: int,
    n_gates: int,
    rng: random.Random,
    *,
    ops: Tuple[GateOp, ...] = _GENERAL_OPS,
) -> Circuit:
    """A random DAG circuit: each new gate draws arguments uniformly from
    all earlier gates.  Output = last gate."""
    if n_inputs < 1 or n_gates < 1:
        raise ValueError("need at least one input and one gate")
    gates = _input_layer(n_inputs)
    for _ in range(n_gates):
        op = ops[rng.randrange(len(ops))]
        args = tuple(rng.randrange(len(gates)) for _ in range(op.arity))
        gates.append(Gate(op, args=args))
    return Circuit(n_inputs, gates)


def random_monotone_circuit(n_inputs: int, n_gates: int, rng: random.Random) -> Circuit:
    """AND/OR-only random circuit (the domain of the CVP -> BDS gadget)."""
    return random_circuit(n_inputs, n_gates, rng, ops=_MONOTONE_OPS)


def layered_circuit(
    n_inputs: int,
    width: int,
    depth: int,
    rng: random.Random,
    *,
    monotone: bool = True,
) -> Circuit:
    """A width x depth layered circuit; arguments come from the previous
    layer only, so the circuit depth equals ``depth`` exactly."""
    if min(n_inputs, width, depth) < 1:
        raise ValueError("n_inputs, width and depth must be positive")
    ops = _MONOTONE_OPS if monotone else _GENERAL_OPS
    gates = _input_layer(n_inputs)
    previous = list(range(n_inputs))
    for _ in range(depth):
        current = []
        for _ in range(width):
            op = ops[rng.randrange(len(ops))]
            args = tuple(previous[rng.randrange(len(previous))] for _ in range(op.arity))
            current.append(len(gates))
            gates.append(Gate(op, args=args))
        previous = current
    return Circuit(n_inputs, gates)


def deep_chain_circuit(length: int, rng: random.Random, *, n_inputs: int = 8) -> Circuit:
    """A depth-Theta(length) chain: gate i combines gate i-1 with a random
    input.  The hard shape for parallel evaluation -- layered depth grows
    linearly with size, the Theorem 9 workload."""
    if length < 1:
        raise ValueError("length must be positive")
    gates = _input_layer(n_inputs)
    previous = 0
    for step in range(length):
        other = rng.randrange(n_inputs)
        op = (GateOp.AND, GateOp.OR)[step % 2]
        gates.append(Gate(op, args=(previous, other)))
        previous = len(gates) - 1
    return Circuit(n_inputs, gates)
