"""Circuit transformations: dual-rail monotonization and relabeling.

The CVP -> BDS gadget reduction (:mod:`repro.reductions_zoo.cvp_to_bds`)
operates on monotone circuits; :func:`to_monotone_dual_rail` lifts it to
general circuits.  The construction is the standard dual-rail trick: every
gate g is replaced by a pair (g+, g-) computing g and NOT g, with De Morgan
swapping AND/OR on the negative rail.  Negated inputs become *fresh inputs*
(positions n..2n-1), so the transformed circuit is monotone and evaluates
correctly when fed ``inputs + [not b for b in inputs]``.  Every step is a
local rewrite -- an NC function in the paper's sense.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.circuits.circuit import Circuit, Gate, GateOp
from repro.core.errors import CircuitError

__all__ = ["to_monotone_dual_rail", "dual_rail_inputs"]


def dual_rail_inputs(inputs: List[bool]) -> List[bool]:
    """The input vector for a dual-rail-transformed circuit."""
    return list(inputs) + [not bit for bit in inputs]


def to_monotone_dual_rail(circuit: Circuit) -> Circuit:
    """An AND/OR-only circuit equivalent to ``circuit`` under
    :func:`dual_rail_inputs`.

    Size exactly doubles (one positive and one negative rail per gate);
    depth is preserved.
    """
    n = circuit.n_inputs
    gates: List[Gate] = []
    # positive[i] / negative[i]: indices of the rails of original gate i.
    positive: List[int] = []
    negative: List[int] = []

    def emit(gate: Gate) -> int:
        gates.append(gate)
        return len(gates) - 1

    for gate in circuit.gates:
        if gate.op is GateOp.INPUT:
            positive.append(emit(Gate(GateOp.INPUT, payload=gate.payload)))
            negative.append(emit(Gate(GateOp.INPUT, payload=n + gate.payload)))
        elif gate.op is GateOp.CONST:
            positive.append(emit(Gate(GateOp.CONST, payload=gate.payload)))
            negative.append(emit(Gate(GateOp.CONST, payload=1 - gate.payload)))
        elif gate.op is GateOp.NOT:
            (argument,) = gate.args
            positive.append(negative[argument])
            negative.append(positive[argument])
        elif gate.op in (GateOp.AND, GateOp.OR, GateOp.NAND, GateOp.NOR):
            a, b = gate.args
            if gate.op in (GateOp.AND, GateOp.NAND):
                # value rail: AND of positives; complement: OR of negatives.
                value = emit(Gate(GateOp.AND, args=_ordered(positive[a], positive[b])))
                complement = emit(Gate(GateOp.OR, args=_ordered(negative[a], negative[b])))
            else:
                # value rail: OR of positives; complement: AND of negatives.
                value = emit(Gate(GateOp.OR, args=_ordered(positive[a], positive[b])))
                complement = emit(Gate(GateOp.AND, args=_ordered(negative[a], negative[b])))
            if gate.op in (GateOp.AND, GateOp.OR):
                positive.append(value)
                negative.append(complement)
            else:  # NAND / NOR swap the rails
                positive.append(complement)
                negative.append(value)
        else:  # pragma: no cover - exhaustive over GateOp
            raise CircuitError(f"unsupported gate op {gate.op}")

    return Circuit(2 * n, gates, output=positive[circuit.output])


def _ordered(a: int, b: int) -> Tuple[int, int]:
    """Argument order is semantically irrelevant for AND/OR; normalize."""
    return (a, b) if a <= b else (b, a)
