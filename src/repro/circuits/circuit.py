"""Boolean circuits and the Circuit Value Problem substrate (Section 4(8)).

A circuit is a DAG of gates; the paper's encoding "alpha-bar is a sequence of
tuples, one for each node" is mirrored exactly: gates are stored in a list,
each referring to strictly earlier gates (so the list order is a topological
order and the encoding is the tuple sequence).

Gate kinds: INPUT (reads one of the instance's input bits), CONST, NOT, AND,
OR, NAND, NOR.  AND/OR/NAND/NOR are binary; NOT unary.  The *output* is a
designated gate index (the paper's designated output y).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core import alphabet
from repro.core.errors import CircuitError

__all__ = ["GateOp", "Gate", "Circuit"]


class GateOp(enum.Enum):
    INPUT = "input"
    CONST = "const"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"

    @property
    def arity(self) -> int:
        if self in (GateOp.INPUT, GateOp.CONST):
            return 0
        if self is GateOp.NOT:
            return 1
        return 2

    @property
    def monotone(self) -> bool:
        return self in (GateOp.INPUT, GateOp.CONST, GateOp.AND, GateOp.OR)

    def apply(self, args: Sequence[bool]) -> bool:
        if self is GateOp.NOT:
            return not args[0]
        if self is GateOp.AND:
            return args[0] and args[1]
        if self is GateOp.OR:
            return args[0] or args[1]
        if self is GateOp.NAND:
            return not (args[0] and args[1])
        if self is GateOp.NOR:
            return not (args[0] or args[1])
        raise CircuitError(f"gate op {self} has no Boolean function")


@dataclass(frozen=True)
class Gate:
    """One node of the circuit DAG.

    ``args`` are indices of earlier gates; ``payload`` is the input position
    for INPUT gates and the constant (0/1) for CONST gates.
    """

    op: GateOp
    args: Tuple[int, ...] = ()
    payload: int = 0


class Circuit:
    """An encoded Boolean circuit: gate list + designated output."""

    def __init__(self, n_inputs: int, gates: Sequence[Gate], output: Optional[int] = None):
        self.n_inputs = n_inputs
        self.gates: List[Gate] = list(gates)
        self.output = output if output is not None else len(self.gates) - 1
        self._validate()

    def _validate(self) -> None:
        if self.n_inputs < 0:
            raise CircuitError("negative input count")
        if not self.gates:
            raise CircuitError("circuit must have at least one gate")
        if not 0 <= self.output < len(self.gates):
            raise CircuitError(f"output index {self.output} out of range")
        for index, gate in enumerate(self.gates):
            if len(gate.args) != gate.op.arity:
                raise CircuitError(
                    f"gate {index} ({gate.op.value}) expects arity "
                    f"{gate.op.arity}, got {len(gate.args)}"
                )
            for argument in gate.args:
                if not 0 <= argument < index:
                    raise CircuitError(
                        f"gate {index} refers to gate {argument}, which is "
                        "not strictly earlier (list order must be topological)"
                    )
            if gate.op is GateOp.INPUT and not 0 <= gate.payload < self.n_inputs:
                raise CircuitError(
                    f"gate {index} reads input {gate.payload}, but the "
                    f"circuit has {self.n_inputs} inputs"
                )
            if gate.op is GateOp.CONST and gate.payload not in (0, 1):
                raise CircuitError(f"gate {index}: constant must be 0 or 1")

    def __len__(self) -> int:
        return len(self.gates)

    @property
    def is_monotone(self) -> bool:
        return all(gate.op.monotone for gate in self.gates)

    def depth(self) -> int:
        """Longest gate-to-gate path ending at the output (levels)."""
        level = [0] * len(self.gates)
        for index, gate in enumerate(self.gates):
            if gate.args:
                level[index] = 1 + max(level[argument] for argument in gate.args)
        return level[self.output]

    def layers(self) -> List[List[int]]:
        """Gate indices grouped by level; level L gates depend only on < L.

        The layered-parallel evaluator maps over one layer at a time.
        """
        level = [0] * len(self.gates)
        for index, gate in enumerate(self.gates):
            if gate.args:
                level[index] = 1 + max(level[argument] for argument in gate.args)
        grouped: List[List[int]] = [[] for _ in range(max(level) + 1)] if level else []
        for index, gate_level in enumerate(level):
            grouped[gate_level].append(index)
        return grouped

    # -- Sigma* view -------------------------------------------------------------

    def encode(self) -> str:
        """The paper's alpha-bar: a sequence of per-gate tuples."""
        return alphabet.encode(
            (
                self.n_inputs,
                tuple(
                    (gate.op.value, tuple(gate.args), gate.payload)
                    for gate in self.gates
                ),
                self.output,
            )
        )

    @staticmethod
    def decode(text: str) -> "Circuit":
        n_inputs, gate_tuples, output = alphabet.decode(text)
        gates = [
            Gate(op=GateOp(op), args=tuple(args), payload=payload)
            for op, args, payload in gate_tuples
        ]
        return Circuit(n_inputs, gates, output)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self.n_inputs == other.n_inputs
            and self.gates == other.gates
            and self.output == other.output
        )

    def __hash__(self) -> int:
        return hash((self.n_inputs, tuple(self.gates), self.output))

    def __repr__(self) -> str:
        return (
            f"Circuit(inputs={self.n_inputs}, gates={len(self.gates)}, "
            f"depth={self.depth()}, output={self.output})"
        )
