"""Boolean circuits: the CVP substrate (paper, Sections 4(8), 6 and 7)."""

from repro.circuits.circuit import Circuit, Gate, GateOp
from repro.circuits.eval import evaluate, evaluate_all, evaluate_layered, gate_value
from repro.circuits.generators import (
    deep_chain_circuit,
    layered_circuit,
    random_circuit,
    random_inputs,
    random_monotone_circuit,
)
from repro.circuits.transform import dual_rail_inputs, to_monotone_dual_rail

__all__ = [
    "Circuit",
    "Gate",
    "GateOp",
    "evaluate",
    "evaluate_all",
    "evaluate_layered",
    "gate_value",
    "deep_chain_circuit",
    "layered_circuit",
    "random_circuit",
    "random_inputs",
    "random_monotone_circuit",
    "dual_rail_inputs",
    "to_monotone_dual_rail",
]
