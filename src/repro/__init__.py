"""repro: a reproduction of "Making Queries Tractable on Big Data with
Preprocessing" (Fan, Geerts, Neven; PVLDB 6(9), 2013).

The package turns the paper's complexity-theoretic framework into an
executable library:

* :mod:`repro.core` -- Pi-tractability, factorizations, NC-factor and
  F-reductions, the certification harness, the Figure 2 registry;
* :mod:`repro.parallel` -- the work--depth PRAM cost model standing in for NC;
* :mod:`repro.storage`, :mod:`repro.indexes`, :mod:`repro.graphs`,
  :mod:`repro.circuits` -- the substrates (relations, B+-trees, RMQ/LCA
  structures, graphs with breadth-depth search, Boolean circuits);
* :mod:`repro.queries` -- the paper's case studies wired into the framework
  (selection, list membership, RMQ, LCA, reachability, BDS, CVP, vertex
  cover);
* :mod:`repro.compression`, :mod:`repro.views`, :mod:`repro.incremental`,
  :mod:`repro.kernelization` -- the preprocessing strategies of Section 4;
* :mod:`repro.reductions_zoo` -- concrete reductions, including every
  registered problem to BDS (Theorem 5 / Corollary 6);
* :mod:`repro.catalog` -- builds the default registry of everything above.

Quickstart::

    from repro.catalog import build_registry
    from repro.core import figure2_report

    registry = build_registry(certify_all=False)
    print(figure2_report(registry))
"""

from repro.core import (
    Certificate,
    Cost,
    CostTracker,
    Factorization,
    FReduction,
    Membership,
    NCFactorReduction,
    PairLanguage,
    PiScheme,
    QueryClass,
    Registry,
    ScalingKind,
    certify,
    compose,
    figure2_report,
    transfer_scheme,
    verify_reduction,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Certificate",
    "Cost",
    "CostTracker",
    "Factorization",
    "FReduction",
    "Membership",
    "NCFactorReduction",
    "PairLanguage",
    "PiScheme",
    "QueryClass",
    "Registry",
    "ScalingKind",
    "certify",
    "compose",
    "figure2_report",
    "transfer_scheme",
    "verify_reduction",
]
