"""Scaling-law fitting: deciding "polylog or polynomial?" from measurements.

The certifier in :mod:`repro.core.tractability` sweeps input sizes in
geometric progression, measures evaluator depth (parallel time) at each size,
and must decide which asymptotic family the curve belongs to.  Two models are
fitted by least squares in log space:

``power``      y = c * n^a          (log y linear in log n)
``polylog``    y = c * (log2 n)^k   (log y linear in log log n)

Over any finite size range a polylog curve *is* well approximated by a small
power law: for n in [2^12, 2^20], ``log2 n`` grows by a factor 20/12, which
matches a local exponent of ln(20/12)/ln(2^8) = 0.09, and ``(log2 n)^3``
matches 0.28.  A genuinely linear cost has exponent 1.0 and sqrt has 0.5.
The verdict therefore uses the fitted *power* exponent as the discriminator,
with a decision threshold of 0.35 between POLYLOG and POLYNOMIAL -- curves
``(log n)^k`` for k <= 3 fall well below it, ``n^0.5`` and up fall well above.
This heuristic is documented behaviour, exercised directly by the tests in
``tests/unit/test_fitting.py``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import CertificationError

__all__ = [
    "ScalingKind",
    "Fit",
    "ScalingVerdict",
    "fit_power",
    "fit_polylog",
    "classify_scaling",
    "POLYLOG_EXPONENT_THRESHOLD",
    "CONSTANT_RATIO_THRESHOLD",
]

#: Fitted power exponents at or below this value are classified POLYLOG.
POLYLOG_EXPONENT_THRESHOLD = 0.35

#: If max(y)/min(y) stays below this, the curve is classified CONSTANT.
CONSTANT_RATIO_THRESHOLD = 3.0


class ScalingKind(enum.Enum):
    """Asymptotic family assigned to a measured cost curve."""

    CONSTANT = "O(1)"
    POLYLOG = "polylog(n)"
    POLYNOMIAL = "poly(n)"


@dataclass(frozen=True)
class Fit:
    """One fitted model ``y = scale * basis(n) ** exponent``.

    ``r2`` is the coefficient of determination in log space (1.0 = perfect).
    """

    model: str
    scale: float
    exponent: float
    r2: float

    def predict(self, n: float) -> float:
        if self.model == "power":
            return self.scale * n**self.exponent
        if self.model == "polylog":
            return self.scale * math.log2(n) ** self.exponent
        raise ValueError(f"unknown model {self.model!r}")


@dataclass(frozen=True)
class ScalingVerdict:
    """The classification of a measured (sizes, costs) curve."""

    kind: ScalingKind
    power: Fit
    polylog: Fit
    sizes: tuple[int, ...]
    values: tuple[float, ...]

    @property
    def is_feasible_online(self) -> bool:
        """True when the curve is CONSTANT or POLYLOG -- the paper's notion of
        query cost that remains feasible as data grows big."""
        return self.kind is not ScalingKind.POLYNOMIAL

    def describe(self) -> str:
        return (
            f"{self.kind.value} "
            f"[power exp={self.power.exponent:.3f} r2={self.power.r2:.3f}; "
            f"polylog exp={self.polylog.exponent:.3f} r2={self.polylog.r2:.3f}]"
        )


def _linear_least_squares(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    """Ordinary least squares for y = a*x + b; returns (a, b, r2).

    Implemented directly (no numpy dependency here) since the inputs are tiny
    -- one point per swept size.
    """
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0.0:
        return 0.0, mean_y, 1.0
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return slope, intercept, r2


def _validate(sizes: Sequence[int], values: Sequence[float]) -> list[float]:
    if len(sizes) != len(values):
        raise CertificationError(
            f"sizes and values length mismatch: {len(sizes)} vs {len(values)}"
        )
    if len(sizes) < 3:
        raise CertificationError("need at least 3 sizes to fit a scaling law")
    if any(n < 4 for n in sizes):
        raise CertificationError("sizes must be >= 4 (log log n must be defined)")
    if sorted(set(sizes)) != list(sizes):
        raise CertificationError("sizes must be strictly increasing")
    # Clamp to >= 1 so log() is defined; a measured depth of 0 means O(1).
    return [max(float(v), 1.0) for v in values]


def fit_power(sizes: Sequence[int], values: Sequence[float]) -> Fit:
    """Fit ``y = c * n^a`` by least squares on (log n, log y)."""
    ys = _validate(sizes, values)
    log_n = [math.log(n) for n in sizes]
    log_y = [math.log(y) for y in ys]
    a, b, r2 = _linear_least_squares(log_n, log_y)
    return Fit(model="power", scale=math.exp(b), exponent=a, r2=r2)


def fit_polylog(sizes: Sequence[int], values: Sequence[float]) -> Fit:
    """Fit ``y = c * (log2 n)^k`` by least squares on (log log2 n, log y)."""
    ys = _validate(sizes, values)
    log_log_n = [math.log(math.log2(n)) for n in sizes]
    log_y = [math.log(y) for y in ys]
    k, b, r2 = _linear_least_squares(log_log_n, log_y)
    return Fit(model="polylog", scale=math.exp(b), exponent=k, r2=r2)


def classify_scaling(sizes: Sequence[int], values: Sequence[float]) -> ScalingVerdict:
    """Classify a measured cost curve as CONSTANT, POLYLOG, or POLYNOMIAL.

    Decision procedure (documented heuristic, see module docstring):

    1. if the curve varies by less than ``CONSTANT_RATIO_THRESHOLD`` overall,
       it is CONSTANT;
    2. otherwise fit both models; if the power exponent is at most
       ``POLYLOG_EXPONENT_THRESHOLD`` the curve is POLYLOG, else POLYNOMIAL.
    """
    ys = _validate(sizes, values)
    power = fit_power(sizes, values)
    polylog = fit_polylog(sizes, values)
    if max(ys) / min(ys) < CONSTANT_RATIO_THRESHOLD:
        kind = ScalingKind.CONSTANT
    elif power.exponent <= POLYLOG_EXPONENT_THRESHOLD:
        kind = ScalingKind.POLYLOG
    else:
        kind = ScalingKind.POLYNOMIAL
    return ScalingVerdict(
        kind=kind,
        power=power,
        polylog=polylog,
        sizes=tuple(sizes),
        values=tuple(float(v) for v in values),
    )
