"""Factorizations of decision problems (paper, Section 3).

A language L *can be factored* when there are three NC-computable functions
``pi1``, ``pi2`` and ``rho`` with ``rho(pi1(x), pi2(x)) == x`` for all
instances x.  A factorization ``Upsilon = (pi1, pi2, rho)`` splits every
instance into a **data part** (eligible for preprocessing) and a **query
part** (answered online), and induces

* the language of pairs  ``S(L, Upsilon) = {<pi1(x), pi2(x)> | x in L}``,
* the data set           ``L(D, Upsilon) = {pi1(x)}``, and
* the query class        ``L(Q, Upsilon) = {pi2(x)}``.

Proposition 1 of the paper makes membership of factored pairs decidable via
``rho``: ``x in L  iff  <pi1(x), pi2(x)> in S(L, Upsilon)``, which is how
:meth:`Factorization.pair_language` implements ``contains``.

Three stock factorizations recur throughout the paper and are provided here:

``canonical``  (for L_Q = {D#Q})  pi1 = D, pi2 = Q             -- recovers S_Q
``trivial``    (Figure 1 right, Theorem 9's Upsilon_0)
               pi1 = epsilon, pi2 = x                           -- nothing to preprocess
``identity``   (Theorem 5 proof)  pi1 = pi2 = x                 -- everything in both parts
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Tuple

from repro.core import alphabet
from repro.core.cost import CostTracker
from repro.core.errors import FactorizationError
from repro.core.language import DecisionProblem, PairLanguage
from repro.core.query import QueryClass

__all__ = [
    "Factorization",
    "EMPTY_DATA",
    "canonical_factorization",
    "trivial_factorization",
    "identity_factorization",
]

#: The object-level stand-in for the empty string epsilon as a data part.
EMPTY_DATA: str = ""


@dataclass
class Factorization:
    """``Upsilon = (pi1, pi2, rho)`` with the round-trip law.

    ``pi1``/``pi2``/``rho`` operate on decoded (object-level) instances; all
    three are required to be NC-computable, which for every factorization in
    this library is a constant-depth projection or pairing.
    """

    name: str
    pi1: Callable[[Any], Any]
    pi2: Callable[[Any], Any]
    rho: Callable[[Any, Any], Any]
    encode_data: Callable[[Any], str] = alphabet.encode
    encode_query: Callable[[Any], str] = alphabet.encode
    description: str = ""

    def split(self, instance: Any) -> Tuple[Any, Any]:
        """``(pi1(x), pi2(x))`` -- the data and query parts of an instance."""
        return self.pi1(instance), self.pi2(instance)

    def check_round_trip(self, instance: Any) -> None:
        """Assert ``rho(pi1(x), pi2(x)) == x``; raises FactorizationError."""
        data, query = self.split(instance)
        restored = self.rho(data, query)
        if restored != instance:
            raise FactorizationError(
                f"factorization {self.name!r} violates the round-trip law: "
                f"rho(pi1(x), pi2(x)) != x for instance {instance!r}"
            )

    def check_round_trips(self, instances: Iterable[Any]) -> None:
        for instance in instances:
            self.check_round_trip(instance)

    def data_size(self, data: Any) -> int:
        """``|pi1(x)|`` -- encoded length of the data part."""
        return len(self.encode_data(data))

    def pair_language(self, problem: DecisionProblem) -> PairLanguage:
        """``S(L, Upsilon)`` with membership via Proposition 1."""

        def contains(data: Any, query: Any, tracker: CostTracker) -> bool:
            return problem.member(self.rho(data, query), tracker)

        return PairLanguage(
            name=f"S[{problem.name},{self.name}]",
            contains=contains,
            encode_data=self.encode_data,
            encode_query=self.encode_query,
        )


def canonical_factorization(
    query_class: Optional[QueryClass] = None,
    *,
    name: Optional[str] = None,
) -> Factorization:
    """The factorization of ``L_Q = {D#Q}`` that recovers S_Q (Section 3).

    Instances are ``(data, query)`` tuples (the object form of ``D#Q``);
    ``pi1`` projects the data, ``pi2`` the query, ``rho`` re-pairs them.
    """
    label = name or (f"canonical[{query_class.name}]" if query_class else "canonical")
    encode_data = query_class.encode_data if query_class else alphabet.encode
    encode_query = query_class.encode_query if query_class else alphabet.encode
    return Factorization(
        name=label,
        pi1=lambda instance: instance[0],
        pi2=lambda instance: instance[1],
        rho=lambda data, query: (data, query),
        encode_data=encode_data,
        encode_query=encode_query,
        description="pi1 = D, pi2 = Q over instances D#Q",
    )


def trivial_factorization(name: str = "trivial") -> Factorization:
    """Everything in the query part; nothing to preprocess.

    This is Figure 1's ``Upsilon'`` for BDS and the ``Upsilon_0`` used in the
    Theorem 9 separation: ``pi1(x) = epsilon``, ``pi2(x) = x``.  Preprocessing
    is applied to the constant ``epsilon`` and thus cannot help.
    """
    return Factorization(
        name=name,
        pi1=lambda instance: EMPTY_DATA,
        pi2=lambda instance: instance,
        rho=lambda data, query: query,
        description="pi1 = epsilon, pi2 = x (no data part)",
    )


def identity_factorization(name: str = "identity") -> Factorization:
    """Both parts are the whole instance: ``pi1(x) = pi2(x) = x``.

    Used in the Theorem 5 proof to reduce an arbitrary problem in P to BDS:
    the NC functions alpha/beta each see the complete instance.
    ``rho(x, x) = x``; rho raises if the two copies disagree.
    """

    def rho(data: Any, query: Any) -> Any:
        if data != query:
            raise FactorizationError(
                "identity factorization requires both parts to be equal"
            )
        return data

    return Factorization(
        name=name,
        pi1=lambda instance: instance,
        pi2=lambda instance: instance,
        rho=rho,
        description="pi1 = pi2 = x (Theorem 5 proof device)",
    )
