"""Languages of pairs and decision problems (paper, Section 3).

The paper moves between three views of the same object:

* a **query class** Q, practically a :class:`~repro.core.query.QueryClass`;
* its **language of pairs** ``S_Q = {<D, Q> | Q(D) true}``; and
* its **decision problem** ``L_Q = {D#Q | <D, Q> in S_Q}``, a plain language
  over Sigma* whose instances concatenate data and query with the ``#``
  delimiter.

This module implements all three and the conversions between them, plus the
generic :class:`DecisionProblem` record used for problems that are *not* born
from a query class (BDS, CVP, Vertex Cover, ...).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.core import alphabet
from repro.core.cost import CostTracker, ensure_tracker
from repro.core.query import QueryClass

__all__ = [
    "PairLanguage",
    "DecisionProblem",
    "pair_language_of",
    "decision_problem_of",
]


@dataclass
class PairLanguage:
    """A language S of pairs ``<D, Q>`` with a decidable membership test.

    ``contains`` is the reference membership procedure; for a language born
    from a query class it is the naive evaluator, for one born from a
    factorized decision problem it is "reassemble with rho, then decide"
    (Proposition 1 of the paper guarantees this is sound).
    """

    name: str
    contains: Callable[[Any, Any, CostTracker], bool]
    encode_data: Callable[[Any], str] = alphabet.encode
    encode_query: Callable[[Any], str] = alphabet.encode

    def member(self, data: Any, query: Any, tracker: Optional[CostTracker] = None) -> bool:
        return bool(self.contains(data, query, ensure_tracker(tracker)))

    def encoded_pair(self, data: Any, query: Any) -> str:
        """The raw-string pair; data and query encodings joined by '#'."""
        return self.encode_data(data) + alphabet.PAIR_DELIMITER + self.encode_query(query)


@dataclass
class DecisionProblem:
    """A decision problem L, i.e. a language over Sigma* with typed instances.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"BDS"``.
    contains:
        Reference (PTIME) decision procedure on decoded instances.
    generate:
        ``(size, rng) -> instance``: deterministic generator producing a mix
        of yes- and no-instances, used by reduction verification and
        certification sweeps.
    encode_instance / decode_instance:
        The Sigma* codec for instances; ``|x|`` is the encoded length.
    """

    name: str
    contains: Callable[[Any, CostTracker], bool]
    generate: Callable[[int, random.Random], Any]
    encode_instance: Callable[[Any], str] = alphabet.encode
    decode_instance: Callable[[str], Any] = alphabet.decode
    description: str = ""

    def member(self, instance: Any, tracker: Optional[CostTracker] = None) -> bool:
        return bool(self.contains(instance, ensure_tracker(tracker)))

    def instance_size(self, instance: Any) -> int:
        return len(self.encode_instance(instance))

    def sample_instances(self, size: int, seed: int, count: int) -> List[Any]:
        from repro.core.query import stable_seed

        rng = random.Random(stable_seed(seed, size, self.name))
        return [self.generate(size, rng) for _ in range(count)]


def pair_language_of(query_class: QueryClass) -> PairLanguage:
    """The language of pairs S_Q of a query class (Section 3)."""

    def contains(data: Any, query: Any, tracker: CostTracker) -> bool:
        return query_class.pair_in_language(data, query, tracker)

    return PairLanguage(
        name=f"S[{query_class.name}]",
        contains=contains,
        encode_data=query_class.encode_data,
        encode_query=query_class.encode_query,
    )


def decision_problem_of(
    query_class: QueryClass,
    *,
    query_count_per_instance: int = 1,
) -> DecisionProblem:
    """The decision problem ``L_Q = {D#Q}`` of a query class (Section 3).

    Instances are ``(data, query)`` tuples at the object level; their Sigma*
    encoding is exactly the paper's ``D#Q`` string via
    :func:`repro.core.alphabet.encode_pair`-style concatenation.
    """

    def contains(instance: Tuple[Any, Any], tracker: CostTracker) -> bool:
        data, query = instance
        return query_class.pair_in_language(data, query, tracker)

    def generate(size: int, rng: random.Random) -> Tuple[Any, Any]:
        data = query_class.generate_data(size, rng)
        queries = query_class.generate_queries(data, rng, query_count_per_instance)
        return data, queries[0]

    def encode_instance(instance: Tuple[Any, Any]) -> str:
        data, query = instance
        return (
            query_class.encode_data(data)
            + alphabet.PAIR_DELIMITER
            + query_class.encode_query(query)
        )

    def decode_instance(text: str) -> Tuple[Any, Any]:
        return alphabet.decode_pair(text)

    return DecisionProblem(
        name=f"L[{query_class.name}]",
        contains=contains,
        generate=generate,
        encode_instance=encode_instance,
        decode_instance=decode_instance,
        description=f"decision problem of query class {query_class.name}",
    )
