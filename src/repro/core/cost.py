"""Work--depth cost accounting: the paper's complexity claims, made measurable.

The paper defines online query answering to be feasible on big data when it is
in **NC**: parallel polylog *time* on polynomially many processors.  Python
wall-clock cannot witness that claim, so every algorithm in this library is
written against a :class:`CostTracker` that accounts two quantities in the
standard work--depth (PRAM) model:

``work``
    total number of elementary operations across all processors, and

``depth``
    the length of the critical path, i.e. parallel time with unbounded
    processors.

Sequential code charges ``tick(w)`` which advances *both* counters by ``w``.
Parallel constructs combine branch costs with ``work = sum`` and
``depth = max`` via :meth:`CostTracker.parallel`.  The certification harness
(:mod:`repro.core.tractability`) then fits measured depth curves against
``c * log^k n`` and ``c * n^a`` to decide, empirically, whether an evaluator
is in NC (depth polylog, work polynomial).

Conventions used throughout the library:

* one comparison, hash probe, pointer dereference, or arithmetic operation
  costs ``1`` unit of work;
* functions that accept an optional tracker use ``ensure_tracker`` so that the
  common no-measurement path pays a near-zero price (:data:`NULL_TRACKER`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = [
    "Cost",
    "CostTracker",
    "NullTracker",
    "NULL_TRACKER",
    "ensure_tracker",
]


@dataclass(frozen=True)
class Cost:
    """An immutable (work, depth) pair in the PRAM work--depth model."""

    work: int = 0
    depth: int = 0

    def then(self, other: "Cost") -> "Cost":
        """Sequential composition: work and depth both add."""
        return Cost(self.work + other.work, self.depth + other.depth)

    def beside(self, other: "Cost") -> "Cost":
        """Parallel composition: work adds, depth takes the maximum."""
        return Cost(self.work + other.work, max(self.depth, other.depth))

    def __add__(self, other: "Cost") -> "Cost":
        return self.then(other)

    def __bool__(self) -> bool:
        return self.work != 0 or self.depth != 0


class CostTracker:
    """Mutable accumulator of work and depth.

    A tracker models one sequential thread of control.  Parallel sections are
    measured on forked trackers (one per branch) and folded back in with
    :meth:`parallel`.

    Example::

        tracker = CostTracker()
        tracker.tick(3)                      # 3 sequential steps
        branches = []
        for item in items:
            sub = tracker.fork()
            do_work(item, sub)               # charged to the branch
            branches.append(sub.snapshot())
        tracker.parallel(branches)           # work=sum, depth=max
    """

    __slots__ = ("work", "depth")

    def __init__(self) -> None:
        self.work = 0
        self.depth = 0

    # -- charging -----------------------------------------------------------

    def tick(self, work: int = 1, depth: Optional[int] = None) -> None:
        """Charge ``work`` sequential operations.

        ``depth`` defaults to ``work`` (sequential semantics).  Pass an
        explicit smaller ``depth`` only for analytically-charged parallel
        primitives (see :mod:`repro.parallel.primitives`).
        """
        self.work += work
        self.depth += work if depth is None else depth

    def charge(self, cost: Cost) -> None:
        """Sequentially append a measured :class:`Cost`."""
        self.work += cost.work
        self.depth += cost.depth

    def parallel(self, branch_costs: Iterable[Cost], overhead: int = 1) -> None:
        """Fold the costs of parallel branches into this tracker.

        Work is the sum over branches, depth is the maximum, and ``overhead``
        units of depth are charged for the fork/join (a PRAM charges O(1) to
        activate processors).
        """
        total_work = 0
        max_depth = 0
        for cost in branch_costs:
            total_work += cost.work
            if cost.depth > max_depth:
                max_depth = cost.depth
        self.work += total_work + overhead
        self.depth += max_depth + overhead

    # -- measurement --------------------------------------------------------

    def fork(self) -> "CostTracker":
        """A fresh tracker for measuring one parallel branch."""
        return CostTracker()

    def snapshot(self) -> Cost:
        """The cost accumulated so far."""
        return Cost(self.work, self.depth)

    def reset(self) -> None:
        self.work = 0
        self.depth = 0

    @contextmanager
    def measure(self) -> Iterator["_Measurement"]:
        """Context manager yielding the cost delta of the enclosed block::

            with tracker.measure() as m:
                evaluate(..., tracker)
            print(m.cost.depth)
        """
        measurement = _Measurement()
        start_work, start_depth = self.work, self.depth
        try:
            yield measurement
        finally:
            measurement.cost = Cost(self.work - start_work, self.depth - start_depth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostTracker(work={self.work}, depth={self.depth})"


class _Measurement:
    """Holder populated by :meth:`CostTracker.measure` on block exit."""

    __slots__ = ("cost",)

    def __init__(self) -> None:
        self.cost = Cost()


class NullTracker(CostTracker):
    """A tracker that ignores all charges.

    Used as the default in hot paths (index probes inside large benchmarks)
    so un-instrumented callers pay almost nothing.  ``fork`` returns the
    shared singleton, so branch measurement is free as well.
    """

    __slots__ = ()

    def tick(self, work: int = 1, depth: Optional[int] = None) -> None:
        pass

    def charge(self, cost: Cost) -> None:
        pass

    def parallel(self, branch_costs: Iterable[Cost], overhead: int = 1) -> None:
        # The iterable may be lazy (a generator of snapshots); drain it so the
        # branch computations still run identically with or without tracking.
        for _ in branch_costs:
            pass

    def fork(self) -> "CostTracker":
        return self


NULL_TRACKER = NullTracker()


def ensure_tracker(tracker: Optional[CostTracker]) -> CostTracker:
    """Return ``tracker`` itself, or the shared no-op tracker for ``None``."""
    return NULL_TRACKER if tracker is None else tracker
