"""The complexity-class registry: Figure 2, machine-checked.

Figure 2 of the paper relates three sets: PiT0Q (Pi-tractable query classes,
Definition 1), PiTP (decision problems that can be made Pi-tractable,
Definition 2) and PiTQ (query classes that can be made Pi-tractable,
Definition 3), against the ambient classes NC and P.  The paper proves

* ``NC <= PiT0Q <= P``  and  ``PiT0Q != P`` unless P = NC   (Theorem 9),
* ``PiTP = P``  and  ``PiTQ = P``                            (Corollary 6),
* no NP-complete problem is in PiTP unless P = NP            (Corollary 7).

This module keeps a registry of every problem and query class implemented in
the reproduction together with the *evidence* for its claimed memberships:
certificates (for PiT0Q claims), reductions to BDS (for PiTP/PiTQ claims),
and hardness markers.  :func:`figure2_report` renders the figure as a
containment table and cross-checks each claim against its evidence, so the
"reproduction" of Figure 2 is an executable consistency check rather than a
drawing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import ReproError
from repro.core.language import DecisionProblem
from repro.core.query import PiScheme, QueryClass
from repro.core.reductions import NCFactorReduction
from repro.core.tractability import Certificate

__all__ = ["Membership", "RegistryEntry", "Registry", "figure2_report"]


class Membership(enum.Enum):
    """Class memberships a registry entry may claim."""

    NC = "NC"
    P = "P"
    PI_T0Q = "PiT0Q"  # Pi-tractable with its native factorization
    PI_TP = "PiTP"  # can be made Pi-tractable (decision problem)
    PI_TQ = "PiTQ"  # can be made Pi-tractable (query class)
    NP_COMPLETE = "NP-complete"


@dataclass
class RegistryEntry:
    """One problem/query class with claims and supporting evidence."""

    name: str
    claims: set
    query_class: Optional[QueryClass] = None
    problem: Optional[DecisionProblem] = None
    schemes: List[PiScheme] = field(default_factory=list)
    certificates: List[Certificate] = field(default_factory=list)
    reduction_to_complete: Optional[NCFactorReduction] = None
    paper_reference: str = ""
    notes: str = ""

    @property
    def certified(self) -> bool:
        """At least one certificate was measured for this entry."""
        return bool(self.certificates)

    def serving_scheme(self) -> Optional[PiScheme]:
        """The scheme a query engine should serve this entry with.

        Prefers the first *serializable* scheme (its artifacts can live in
        the store and survive the process); falls back to the first scheme,
        which the engine can still build and cache in memory.
        """
        for scheme in self.schemes:
            if scheme.serializable:
                return scheme
        return self.schemes[0] if self.schemes else None

    def evidence_gaps(self) -> List[str]:
        """Claims whose supporting evidence is *failing* or contradictory.

        Entries without measurements are reported as "uncertified" by
        :func:`figure2_report` rather than flagged here; a gap means the
        evidence that exists contradicts the claim.
        """
        gaps: List[str] = []
        if Membership.PI_T0Q in self.claims and self.certificates:
            if not any(c.is_pi_tractable for c in self.certificates):
                gaps.append(
                    f"{self.name}: claims PiT0Q but every certificate failed"
                )
        made_tractable = {Membership.PI_TP, Membership.PI_TQ} & self.claims
        if made_tractable and Membership.PI_T0Q not in self.claims:
            # A "can be made" claim needs either a direct scheme under some
            # factorization or a reduction to the complete problem (Thm 5).
            if not self.certificates and self.reduction_to_complete is None:
                gaps.append(
                    f"{self.name}: claims {sorted(m.value for m in made_tractable)}"
                    " but has neither a certificate nor a reduction to BDS"
                )
        if Membership.NP_COMPLETE in self.claims and (
            Membership.PI_TP in self.claims or Membership.PI_T0Q in self.claims
        ):
            gaps.append(
                f"{self.name}: claims NP-completeness together with "
                "Pi-tractability, contradicting Corollary 7 (unless P = NP)"
            )
        return gaps


class Registry:
    """All problems and query classes of the reproduction, with evidence."""

    def __init__(self) -> None:
        self._entries: Dict[str, RegistryEntry] = {}

    def add(self, entry: RegistryEntry) -> RegistryEntry:
        if entry.name in self._entries:
            raise ReproError(f"duplicate registry entry {entry.name!r}")
        self._entries[entry.name] = entry
        return entry

    def get(self, name: str) -> RegistryEntry:
        try:
            return self._entries[name]
        except KeyError as exc:
            raise ReproError(f"no registry entry named {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def entries(self) -> List[RegistryEntry]:
        return sorted(self._entries.values(), key=lambda entry: entry.name)

    def with_claim(self, membership: Membership) -> List[RegistryEntry]:
        return [e for e in self.entries() if membership in e.claims]

    # -- Figure 2 ------------------------------------------------------------

    def check_containments(self) -> List[str]:
        """Violations of the paper's containments among *registered* claims.

        * NC claims must co-claim PiT0Q (NC <= PiT0Q: preprocessing may be the
          identity) and P (NC <= P).
        * PiT0Q claims must co-claim P (PiT0Q <= P) and PiTQ/PiTP.
        * P-claimed entries must co-claim PiTP or PiTQ (Corollary 6: all of
          P can be made Pi-tractable).
        * Every entry's evidence must support its claims.
        """
        violations: List[str] = []
        for entry in self.entries():
            claims = entry.claims
            if Membership.NC in claims:
                if Membership.PI_T0Q not in claims:
                    violations.append(f"{entry.name}: NC but not PiT0Q (NC <= PiT0Q)")
                if Membership.P not in claims:
                    violations.append(f"{entry.name}: NC but not P (NC <= P)")
            if Membership.PI_T0Q in claims:
                if Membership.P not in claims:
                    violations.append(f"{entry.name}: PiT0Q but not P (PiT0Q <= P)")
                if (
                    Membership.PI_TQ not in claims
                    and Membership.PI_TP not in claims
                ):
                    violations.append(
                        f"{entry.name}: PiT0Q but no made-tractable claim"
                        " (PiT0Q <= PiTQ)"
                    )
            if Membership.P in claims and Membership.NP_COMPLETE not in claims:
                if (
                    Membership.PI_TP not in claims
                    and Membership.PI_TQ not in claims
                ):
                    violations.append(
                        f"{entry.name}: in P but no made-tractable claim"
                        " (Corollary 6: PiTP = P)"
                    )
            violations.extend(entry.evidence_gaps())
        return violations


def figure2_report(registry: Registry) -> str:
    """Render Figure 2 as a containment table over the registry."""
    lines = [
        "Figure 2 (executable): PiT0Q <= PiTQ = P (query classes);"
        " PiTP = P (decision problems)",
        "",
        f"{'entry':34s} {'NC':>3s} {'PiT0Q':>6s} {'PiTP/PiTQ':>10s} {'P':>3s} {'NPC':>4s}  evidence",
        "-" * 100,
    ]

    def mark(entry: RegistryEntry, membership: Membership) -> str:
        return "yes" if membership in entry.claims else "."

    for entry in registry.entries():
        made = (
            "yes"
            if (
                Membership.PI_TP in entry.claims or Membership.PI_TQ in entry.claims
            )
            else "."
        )
        evidence_bits = []
        if any(c.is_pi_tractable for c in entry.certificates):
            evidence_bits.append("certified")
        elif entry.certificates:
            evidence_bits.append("certificates failed")
        elif Membership.PI_T0Q in entry.claims:
            evidence_bits.append("uncertified")
        if entry.reduction_to_complete is not None:
            evidence_bits.append(
                f"reduces to {entry.reduction_to_complete.target.name}"
            )
        if Membership.NP_COMPLETE in entry.claims:
            evidence_bits.append("hardness marker")
        lines.append(
            f"{entry.name:34s} {mark(entry, Membership.NC):>3s} "
            f"{mark(entry, Membership.PI_T0Q):>6s} {made:>10s} "
            f"{mark(entry, Membership.P):>3s} "
            f"{mark(entry, Membership.NP_COMPLETE):>4s}  "
            f"{', '.join(evidence_bits) or '-'}"
        )

    violations = registry.check_containments()
    lines.append("-" * 100)
    if violations:
        lines.append("CONTAINMENT VIOLATIONS:")
        lines.extend(f"  - {violation}" for violation in violations)
    else:
        lines.append("All registered claims consistent with Figure 2 containments.")
    return "\n".join(lines)
