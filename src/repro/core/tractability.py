"""Empirical Pi-tractability certification (paper, Definition 1, measured).

A :class:`~repro.core.query.PiScheme` *claims* that a query class is
Pi-tractable: PTIME preprocessing, NC online evaluation.  This module checks
the claim the only way an implementation can -- empirically:

1. **Correctness**: over a sweep of data sizes, every scheme answer must
   agree with the naive reference evaluator of the query class.
2. **Preprocessing is polynomial**: the measured preprocessing *work* is fit
   against a power law ``c * n^a``; the fit must be good and the exponent
   bounded (PTIME, and therefore poly-size output, is structural -- Python
   terminates and we additionally cap the exponent).
3. **Online evaluation is NC**: the measured evaluation *depth* (parallel
   time in the work--depth model) per query must classify as CONSTANT or
   POLYLOG in the data size, and the evaluation *work* must stay polynomial.

The result is a :class:`Certificate`, the object every case-study test and
the Figure 2 registry consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.core.cost import Cost, CostTracker
from repro.core.errors import CertificationError
from repro.core.fitting import Fit, ScalingKind, ScalingVerdict, classify_scaling, fit_power
from repro.core.query import PiScheme, QueryClass

__all__ = ["SizeSample", "Certificate", "certify"]

#: Preprocessing power-law exponents above this fail certification outright;
#: generous (the paper allows any polynomial) but catches exponential blowup.
MAX_PREPROCESSING_EXPONENT = 4.5


@dataclass(frozen=True)
class SizeSample:
    """Measurements at one swept data size."""

    size: int
    query_count: int
    preprocessing: Cost
    max_eval_depth: int
    mean_eval_depth: float
    max_eval_work: int
    naive_mean_work: Optional[float]
    all_correct: bool


@dataclass
class Certificate:
    """Outcome of certifying one (query class, Pi-scheme) pair."""

    query_class_name: str
    scheme_name: str
    samples: List[SizeSample]
    correct: bool
    preprocessing_fit: Fit
    evaluation_depth: ScalingVerdict
    evaluation_work: Fit
    naive_work: Optional[ScalingVerdict] = None
    notes: List[str] = field(default_factory=list)

    @property
    def preprocessing_polynomial(self) -> bool:
        return self.preprocessing_fit.exponent <= MAX_PREPROCESSING_EXPONENT

    @property
    def is_pi_tractable(self) -> bool:
        """The empirical verdict: the scheme witnesses Definition 1."""
        return (
            self.correct
            and self.preprocessing_polynomial
            and self.evaluation_depth.is_feasible_online
        )

    def summary(self) -> str:
        lines = [
            f"Certificate[{self.query_class_name} / {self.scheme_name}]",
            f"  correct on all sampled queries : {self.correct}",
            f"  preprocessing work             : ~n^{self.preprocessing_fit.exponent:.2f}"
            f" (r2={self.preprocessing_fit.r2:.3f})",
            f"  online eval depth              : {self.evaluation_depth.describe()}",
            f"  online eval work               : ~n^{self.evaluation_work.exponent:.2f}",
        ]
        if self.naive_work is not None:
            lines.append(f"  naive eval work (baseline)     : {self.naive_work.describe()}")
        lines.append(f"  Pi-tractable                   : {self.is_pi_tractable}")
        return "\n".join(lines)


def certify(
    query_class: QueryClass,
    scheme: PiScheme,
    *,
    sizes: Sequence[int],
    queries_per_size: int = 24,
    seed: int = 20130826,  # the paper's presentation date at VLDB 2013
    compare_naive: bool = True,
) -> Certificate:
    """Measure a Pi-scheme across a size sweep and classify its scaling.

    Raises :class:`CertificationError` if the sweep is too small to fit
    scaling laws (fewer than 3 sizes).
    """
    if len(sizes) < 3:
        raise CertificationError("certification needs at least 3 sizes")

    samples: List[SizeSample] = []
    for size in sizes:
        data, queries = query_class.sample_workload(size, seed, queries_per_size)
        actual_size = query_class.size_of_data(data)

        prep_tracker = CostTracker()
        preprocessed = scheme.preprocess(data, prep_tracker)

        max_depth = 0
        depth_sum = 0
        max_work = 0
        naive_work_sum = 0
        all_correct = True
        for query in queries:
            eval_tracker = CostTracker()
            answer = scheme.answer(preprocessed, query, eval_tracker)
            cost = eval_tracker.snapshot()
            max_depth = max(max_depth, cost.depth)
            max_work = max(max_work, cost.work)
            depth_sum += cost.depth

            naive_tracker = CostTracker()
            expected = query_class.pair_in_language(data, query, naive_tracker)
            naive_work_sum += naive_tracker.snapshot().work
            if bool(answer) != bool(expected):
                all_correct = False

        samples.append(
            SizeSample(
                size=actual_size,
                query_count=len(queries),
                preprocessing=prep_tracker.snapshot(),
                max_eval_depth=max_depth,
                mean_eval_depth=depth_sum / max(len(queries), 1),
                max_eval_work=max_work,
                naive_mean_work=(naive_work_sum / max(len(queries), 1))
                if compare_naive
                else None,
                all_correct=all_correct,
            )
        )

    sweep_sizes = [s.size for s in samples]
    prep_fit = fit_power(sweep_sizes, [max(s.preprocessing.work, 1) for s in samples])
    depth_verdict = classify_scaling(sweep_sizes, [s.max_eval_depth for s in samples])
    work_fit = fit_power(sweep_sizes, [max(s.max_eval_work, 1) for s in samples])
    naive_verdict = None
    if compare_naive:
        naive_verdict = classify_scaling(
            sweep_sizes, [s.naive_mean_work or 1.0 for s in samples]
        )

    notes: List[str] = []
    if depth_verdict.kind is ScalingKind.POLYNOMIAL:
        notes.append(
            "online evaluation depth grows polynomially -- scheme fails Definition 1"
        )

    return Certificate(
        query_class_name=query_class.name,
        scheme_name=scheme.name,
        samples=samples,
        correct=all(s.all_correct for s in samples),
        preprocessing_fit=prep_fit,
        evaluation_depth=depth_verdict,
        evaluation_work=work_fit,
        naive_work=naive_verdict,
        notes=notes,
    )
