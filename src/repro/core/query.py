"""Boolean query classes and Pi-schemes (paper, Definition 1).

A *query class* Q is, in the paper, a language of pairs ``S = {<D, Q>}``
with ``<D, Q> in S`` iff ``Q(D)`` is true.  This module gives the practical,
object-level counterpart used throughout the reproduction:

:class:`QueryClass`
    bundles the reference (naive, PTIME) semantics ``evaluate(D, Q)`` with
    deterministic generators for data and queries, and codecs to Sigma*.

:class:`PiScheme`
    a candidate witness of Pi-tractability: a PTIME ``preprocess`` function
    Pi and an NC ``evaluate`` over the preprocessed structure.  Whether a
    scheme really is such a witness is decided empirically by
    :func:`repro.core.tractability.certify`.

Both are plain data records of callables so that each case-study module
(:mod:`repro.queries`) can define its classes declaratively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.core import alphabet
from repro.core.cost import CostTracker

__all__ = ["QueryClass", "PiScheme", "default_sizes", "stable_seed", "state_codec"]


def stable_seed(*parts: Any) -> int:
    """A run-independent seed from arbitrary parts (zlib.crc32, not hash)."""
    import zlib

    text = "\x1f".join(repr(part) for part in parts)
    return zlib.crc32(text.encode("utf-8"))

#: Evaluator signature: (data, query, tracker) -> bool
Evaluator = Callable[[Any, Any, CostTracker], bool]
#: Preprocessor signature: (data, tracker) -> preprocessed structure
Preprocessor = Callable[[Any, CostTracker], Any]


def default_sizes(small: bool = False) -> List[int]:
    """The geometric size sweep used by certification and benchmarks."""
    if small:
        return [2**k for k in range(8, 13)]
    return [2**k for k in range(10, 17)]


@dataclass
class QueryClass:
    """A class of Boolean queries with reference semantics and generators.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"point-selection"``.
    evaluate:
        The reference semantics ``Q(D)`` -- the naive PTIME evaluation used
        both as the membership test of the language of pairs and as the
        no-preprocessing baseline in experiments.
    generate_data:
        ``(size, rng) -> D``; deterministic given the rng.
    generate_queries:
        ``(D, rng, count) -> [Q]``; queries *defined on* D (the set Q_D of
        the paper), mixing positive and negative answers.
    encode_data / encode_query:
        Sigma* codecs; default to :func:`repro.core.alphabet.encode`.
    data_size:
        ``|D|``; defaults to the length of the Sigma* encoding.
    """

    name: str
    evaluate: Evaluator
    generate_data: Callable[[int, random.Random], Any]
    generate_queries: Callable[[Any, random.Random, int], List[Any]]
    encode_data: Callable[[Any], str] = alphabet.encode
    encode_query: Callable[[Any], str] = alphabet.encode
    data_size: Optional[Callable[[Any], int]] = None
    description: str = ""

    def size_of_data(self, data: Any) -> int:
        if self.data_size is not None:
            return self.data_size(data)
        return len(self.encode_data(data))

    def pair_in_language(self, data: Any, query: Any, tracker: Optional[CostTracker] = None) -> bool:
        """Membership of ``<D, Q>`` in the language of pairs S for this class."""
        from repro.core.cost import ensure_tracker

        return bool(self.evaluate(data, query, ensure_tracker(tracker)))

    def sample_workload(
        self, size: int, seed: int, query_count: int
    ) -> tuple[Any, List[Any]]:
        """Deterministic (data, queries) workload for experiments.

        The per-size seed is derived with a *stable* hash (not Python's
        per-process-salted ``hash``) so workloads are identical across runs.
        """
        rng = random.Random(stable_seed(seed, size, self.name))
        data = self.generate_data(size, rng)
        queries = self.generate_queries(data, rng, query_count)
        return data, queries


@dataclass
class PiScheme:
    """A preprocessing scheme: candidate witness that a class is in PiT0Q.

    ``preprocess`` must run in PTIME in ``|D|`` and produce a structure of
    polynomial size; ``evaluate`` must answer any query of the class over the
    preprocessed structure in NC (polylog depth, polynomial work).  Both
    requirements are checked empirically by the certifier rather than
    trusted.

    ``factorization_name`` records which factorization of the underlying
    decision problem this scheme answers (needed by Lemma 3 transfer, see
    :func:`repro.core.reductions.transfer_scheme`); ``None`` means the
    canonical factorization of the query class itself.

    ``dump``/``load`` make the scheme *servable*: they round-trip the
    preprocessed structure through bytes so the artifact store
    (:mod:`repro.service.artifacts`) can persist Pi(D) once and every later
    process can serve queries without re-running ``preprocess``.  Schemes
    without a codec are still usable by the engine but are rebuilt per
    process (cached in memory only).  ``artifact_version`` must be bumped
    whenever the byte layout changes, so stale artifacts are rejected
    instead of mis-loaded.

    ``sharding`` makes the scheme *partitionable*: a
    :class:`repro.service.merge.ShardSpec` declaring how datasets split into
    shards and how per-shard answers merge (union / k-way merge / monoid
    combine).  Kinds registered with ``shards=K`` on the engine require it;
    schemes without a spec simply cannot be sharded.  Typed ``Any`` to keep
    :mod:`repro.core` free of service-layer imports.

    ``apply_delta`` makes the scheme *delta-maintainable* (paper, Section
    4(7)): ``apply_delta(structure, changes, tracker) -> structure`` folds a
    batch of :mod:`repro.incremental.changes` records into an already-built
    structure in O(|CHANGED| * polylog) instead of re-running ``preprocess``
    over the whole dataset.  The hook owns the structure it is handed (the
    serving layer gives every mutable dataset a private copy) and must be
    batch-atomic: raise :class:`repro.core.errors.DeltaError` *before*
    mutating anything when the batch contains a change it cannot apply, so
    the caller can fall back to a rebuild without ever observing a
    half-applied structure.

    ``evaluate_fast``/``evaluate_many`` make the scheme *fast-servable*:
    untracked production kernels behind :meth:`answer_fast` /
    :meth:`answer_many`.  ``evaluate`` is the *analytic* evaluator -- every
    comparison charges the :class:`~repro.core.cost.CostTracker`, which is
    what certification fits -- and it stays the source of truth for answers.
    ``evaluate_fast(structure, query) -> bool`` answers the same query with
    zero instrumentation (C ``bisect``, plain dict probes, tracker-free
    walks), and ``evaluate_many(structure, queries) -> [bool]`` amortizes
    per-call overhead across a batch.  Both MUST be answer-identical to
    ``evaluate`` (the hot-path property suite pins this); they exist only to
    shrink the *constant* of the polylog query step, never its answers.
    """

    name: str
    preprocess: Preprocessor
    evaluate: Evaluator
    factorization_name: Optional[str] = None
    description: str = ""
    #: Optional PTIME query rewriting lambda: Q -> Q' (paper, remark under
    #: Definition 1); identity when absent.
    rewrite_query: Optional[Callable[[Any], Any]] = None
    #: Optional artifact codec: preprocessed structure <-> bytes.
    dump: Optional[Callable[[Any], bytes]] = None
    load: Optional[Callable[[bytes], Any]] = None
    #: Version of the dumped byte layout (part of the artifact identity).
    artifact_version: int = 1
    #: Optional ShardSpec (see :mod:`repro.service.merge`) enabling sharded
    #: scatter-gather serving of this scheme.
    sharding: Optional[Any] = None
    #: Optional delta-maintenance hook: ``(structure, changes, tracker) ->
    #: structure``, batch-atomic (raise DeltaError before mutating).
    apply_delta: Optional[Callable[[Any, Sequence[Any], CostTracker], Any]] = None
    #: Optional untracked production kernel ``(structure, query) -> bool``;
    #: must agree with ``evaluate`` on every query.
    evaluate_fast: Optional[Callable[[Any, Any], bool]] = None
    #: Optional untracked batch kernel ``(structure, queries) -> [bool]``;
    #: must agree with ``evaluate`` element-wise.
    evaluate_many: Optional[Callable[[Any, Sequence[Any]], List[bool]]] = None

    @property
    def serializable(self) -> bool:
        """True when the preprocessed structure can round-trip through bytes."""
        return self.dump is not None and self.load is not None

    @property
    def supports_delta(self) -> bool:
        """True when built structures can be maintained under change batches."""
        return self.apply_delta is not None

    def answer(
        self,
        preprocessed: Any,
        query: Any,
        tracker: Optional[CostTracker] = None,
    ) -> bool:
        """Evaluate one query over the preprocessed structure."""
        from repro.core.cost import ensure_tracker

        effective_query = query if self.rewrite_query is None else self.rewrite_query(query)
        return bool(self.evaluate(preprocessed, effective_query, ensure_tracker(tracker)))

    def answer_fast(self, preprocessed: Any, query: Any) -> bool:
        """Answer one query through the untracked production kernel.

        Falls back to the analytic ``evaluate`` under the shared no-op
        tracker when the scheme declares no ``evaluate_fast`` -- always
        answer-identical to :meth:`answer`, only the instrumentation differs.
        """
        effective_query = query if self.rewrite_query is None else self.rewrite_query(query)
        if self.evaluate_fast is not None:
            return bool(self.evaluate_fast(preprocessed, effective_query))
        from repro.core.cost import NULL_TRACKER

        return bool(self.evaluate(preprocessed, effective_query, NULL_TRACKER))

    def answer_many(self, preprocessed: Any, queries: Sequence[Any]) -> List[bool]:
        """Answer a batch of queries, amortizing dispatch across the batch.

        Uses ``evaluate_many`` when the scheme declares one, otherwise loops
        the per-query fast kernel; answers are position-stable and identical
        to calling :meth:`answer` per query.
        """
        if self.rewrite_query is not None:
            queries = [self.rewrite_query(query) for query in queries]
        if self.evaluate_many is not None:
            return [bool(answer) for answer in self.evaluate_many(preprocessed, queries)]
        if self.evaluate_fast is not None:
            evaluate_fast = self.evaluate_fast
            return [bool(evaluate_fast(preprocessed, query)) for query in queries]
        from repro.core.cost import NULL_TRACKER

        evaluate = self.evaluate
        return [bool(evaluate(preprocessed, query, NULL_TRACKER)) for query in queries]


def state_codec(
    from_state: Callable[[Any], Any],
    to_state: Optional[Callable[[Any], Any]] = None,
) -> tuple[Callable[[Any], bytes], Callable[[bytes], Any]]:
    """Build a ``(dump, load)`` pair from plain-state converters.

    ``to_state`` maps the preprocessed structure to plain picklable data
    (defaults to calling the structure's own ``to_state()``); ``from_state``
    rebuilds the structure.  The byte layer is pickle of the *plain state*,
    never of the live object graph -- linked structures like the B+-tree leaf
    chain would otherwise exceed the recursion limit, and plain state keeps
    the layout stable across refactors of the in-memory classes.

    Artifacts are trusted local files (the store detects corruption, not
    malice); do not load artifacts from untrusted sources.
    """
    import pickle

    def dump(structure: Any) -> bytes:
        state = structure.to_state() if to_state is None else to_state(structure)
        return pickle.dumps(state, protocol=4)

    def load(blob: bytes) -> Any:
        return from_state(pickle.loads(blob))

    return dump, load


@dataclass
class Workload:
    """A concrete (data, queries) pair plus bookkeeping, used by benchmarks."""

    query_class: QueryClass
    data: Any
    queries: Sequence[Any]
    seed: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return self.query_class.size_of_data(self.data)
