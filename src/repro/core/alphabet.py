"""Sigma* encodings: databases and queries as strings (paper, Section 3).

The paper follows the convention of complexity theory: both data ``D`` and
queries ``Q`` are strings over a finite alphabet, ``|D|`` and ``|Q|`` are
string lengths, and a query class is a language of pairs ``<D, Q>``.  This
module supplies the concrete, deterministic, self-delimiting codec the rest
of the library uses whenever the *string* view matters (size measurement,
the ``D#Q`` decision-problem form, factorizations defined on raw strings).

Supported values: ``None``, ``bool``, ``int``, ``str``, and arbitrarily
nested sequences thereof (lists and tuples both encode the same way and
decode as tuples -- the codec is canonical, not type-preserving for the
list/tuple distinction).

Grammar (``encode`` output)::

    token   := none | boolean | integer | string | sequence
    none    := "n;"
    boolean := "b1;" | "b0;"
    integer := "i" ["-"] digits ";"
    string  := "s" escaped ";"
    sequence:= "l" digits ":" token*          -- count-prefixed children

Escaping: ``%`` -> ``%25``, ``;`` -> ``%3B``, ``#`` -> ``%23`` inside string
payloads, so that (a) tokens are parseable by scanning to the next ``;`` and
(b) encoded strings never contain a raw ``#``.  Property (b) makes the
``D#Q`` delimiter of the decision problem ``L_Q = {D#Q}`` unambiguous
(paper, Section 3, "the decision problem of Q").
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.core.errors import EncodingError

__all__ = [
    "encode",
    "decode",
    "encode_pair",
    "decode_pair",
    "PAIR_DELIMITER",
    "PADDING_DELIMITER",
]

#: Delimiter of the decision-problem form D#Q (Section 3).
PAIR_DELIMITER = "#"

#: The special symbol "@" used by the Lemma 2 padding construction; like
#: ``#`` it never occurs in codec output (it is not in the emitted alphabet).
PADDING_DELIMITER = "@"

_ESCAPES = (("%", "%25"), (";", "%3B"), ("#", "%23"), ("@", "%40"))


def _escape(payload: str) -> str:
    for raw, esc in _ESCAPES:
        payload = payload.replace(raw, esc)
    return payload


def _unescape(payload: str) -> str:
    for raw, esc in reversed(_ESCAPES):
        payload = payload.replace(esc, raw)
    return payload


def encode(value: Any) -> str:
    """Encode ``value`` as a self-delimiting string over the codec alphabet."""
    if value is None:
        return "n;"
    # bool must be tested before int (bool is an int subclass).
    if isinstance(value, bool):
        return "b1;" if value else "b0;"
    if isinstance(value, int):
        return f"i{value};"
    if isinstance(value, str):
        return f"s{_escape(value)};"
    if isinstance(value, (list, tuple)):
        children = "".join(encode(child) for child in value)
        return f"l{len(value)}:{children}"
    raise EncodingError(f"cannot encode value of type {type(value).__name__}")


def decode(text: str) -> Any:
    """Decode a string produced by :func:`encode`; inverse up to tuple/list."""
    value, pos = _decode_token(text, 0)
    if pos != len(text):
        raise EncodingError(f"trailing data after token at position {pos}")
    return value


def _decode_token(text: str, pos: int) -> Tuple[Any, int]:
    if pos >= len(text):
        raise EncodingError("unexpected end of input")
    tag = text[pos]
    if tag == "n":
        _expect(text, pos + 1, ";")
        return None, pos + 2
    if tag == "b":
        flag = text[pos + 1 : pos + 2]
        _expect(text, pos + 2, ";")
        if flag not in ("0", "1"):
            raise EncodingError(f"bad boolean payload {flag!r}")
        return flag == "1", pos + 3
    if tag == "i":
        end = text.find(";", pos + 1)
        if end == -1:
            raise EncodingError("unterminated integer token")
        body = text[pos + 1 : end]
        try:
            return int(body), end + 1
        except ValueError as exc:
            raise EncodingError(f"bad integer payload {body!r}") from exc
    if tag == "s":
        end = text.find(";", pos + 1)
        if end == -1:
            raise EncodingError("unterminated string token")
        return _unescape(text[pos + 1 : end]), end + 1
    if tag == "l":
        colon = text.find(":", pos + 1)
        if colon == -1:
            raise EncodingError("unterminated sequence header")
        try:
            count = int(text[pos + 1 : colon])
        except ValueError as exc:
            raise EncodingError("bad sequence count") from exc
        if count < 0:
            raise EncodingError("negative sequence count")
        items = []
        cursor = colon + 1
        for _ in range(count):
            item, cursor = _decode_token(text, cursor)
            items.append(item)
        return tuple(items), cursor
    raise EncodingError(f"unknown token tag {tag!r} at position {pos}")


def _expect(text: str, pos: int, char: str) -> None:
    if pos >= len(text) or text[pos] != char:
        found = text[pos] if pos < len(text) else "<eof>"
        raise EncodingError(f"expected {char!r} at position {pos}, found {found!r}")


def encode_pair(data: Any, query: Any) -> str:
    """The decision-problem string ``D#Q`` for a pair (Section 3)."""
    return encode(data) + PAIR_DELIMITER + encode(query)


def decode_pair(text: str) -> Tuple[Any, Any]:
    """Split and decode a ``D#Q`` string; inverse of :func:`encode_pair`."""
    left, sep, right = text.partition(PAIR_DELIMITER)
    if not sep:
        raise EncodingError("pair string lacks the '#' delimiter")
    if PAIR_DELIMITER in right:
        raise EncodingError("pair string contains more than one '#' delimiter")
    return decode(left), decode(right)


def encoded_size(value: Any) -> int:
    """``|x|`` in the paper's sense: the length of the Sigma* encoding."""
    return len(encode(value))


def sequence_of(value: Any) -> Sequence[Any]:
    """Helper asserting a decoded value is a sequence, for typed decoders."""
    if not isinstance(value, tuple):
        raise EncodingError(f"expected a sequence, found {type(value).__name__}")
    return value
