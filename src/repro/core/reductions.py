"""NC-factor reductions and F-reductions (paper, Sections 5 and 7).

Two transformation regimes are defined by the paper and implemented here as
*executable* objects:

:class:`NCFactorReduction` -- ``L1 <=NC_fa L2`` (Definition 4)
    Picks factorizations ``Upsilon1`` of L1 and ``Upsilon2`` of L2 plus NC
    functions ``alpha`` (on data parts) and ``beta`` (on query parts) with
    ``<D, Q> in S(L1, Upsilon1)  iff  <alpha(D), beta(Q)> in S(L2, Upsilon2)``.
    Re-factorization is allowed, which is what makes every PTIME problem
    reducible to BDS (Theorem 5 / Corollary 6).

:class:`FReduction` -- ``S1 <=NC_F S2`` (Definition 7)
    The conservative form: operates on the languages of pairs themselves,
    with no re-factorization.  Compatible with PiT0Q (Lemma 8), and the form
    under which the Theorem 9 separation holds.

Both come with executable versions of the paper's meta-theorems:

* :func:`compose` implements Lemma 2's transitivity construction, including
  the ``@``-padding trick (the composite's source factorization duplicates
  the pair into both parts so that the second reduction can re-factorize);
* :func:`transfer_scheme` implements the heart of Lemma 3: pulling a
  Pi-scheme for the target back along a reduction to obtain a Pi-scheme for
  the source (``Pi' = Pi . alpha``, ``eval' = eval . (id, beta)``);
* :func:`verify_reduction` checks the Definition 4/7 equivalence empirically
  on generated instances, including mismatched cross pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import FactorizationError, ReductionError
from repro.core.factorization import Factorization
from repro.core.language import DecisionProblem, PairLanguage
from repro.core.query import PiScheme

__all__ = [
    "NCFactorReduction",
    "FReduction",
    "compose",
    "compose_f",
    "transfer_scheme",
    "transfer_scheme_f",
    "verify_reduction",
    "verify_f_reduction",
    "padded_factorization",
]


@dataclass
class NCFactorReduction:
    """``source <=NC_fa target`` via (Upsilon1, Upsilon2, alpha, beta)."""

    name: str
    source: DecisionProblem
    target: DecisionProblem
    source_factorization: Factorization
    target_factorization: Factorization
    alpha: Callable[[Any], Any]
    beta: Callable[[Any], Any]
    description: str = ""

    def map_pair(self, data: Any, query: Any) -> Tuple[Any, Any]:
        """``<D, Q> -> <alpha(D), beta(Q)>``."""
        return self.alpha(data), self.beta(query)

    def map_instance(self, instance: Any) -> Any:
        """Push a whole source instance to a target instance.

        Factorize with Upsilon1, map with (alpha, beta), reassemble with
        Upsilon2's rho.  Sound by Definition 4 plus Proposition 1.
        """
        data, query = self.source_factorization.split(instance)
        target_data, target_query = self.map_pair(data, query)
        return self.target_factorization.rho(target_data, target_query)


@dataclass
class FReduction:
    """``S1 <=NC_F S2``: pair-language to pair-language, no re-factorization."""

    name: str
    source: PairLanguage
    target: PairLanguage
    alpha: Callable[[Any], Any]
    beta: Callable[[Any], Any]
    description: str = ""

    def map_pair(self, data: Any, query: Any) -> Tuple[Any, Any]:
        return self.alpha(data), self.beta(query)


# ---------------------------------------------------------------------------
# Lemma 2: transitivity of <=NC_fa, with the padding construction
# ---------------------------------------------------------------------------


def padded_factorization(base: Factorization, name: Optional[str] = None) -> Factorization:
    """The ``@``-padded factorization ``Upsilon'`` from the Lemma 2 proof.

    ``sigma1(x) = sigma2(x) = (pi1(x), pi2(x))`` -- the *pair* is duplicated
    into both the data and the query part (the paper concatenates the two
    strings with the fresh symbol ``@``; at the object level a tuple plays
    that role).  ``rho'((x1, x2), (x1, x2)) = rho(x1, x2)``.
    """

    def project(instance: Any) -> Tuple[Any, Any]:
        return base.pi1(instance), base.pi2(instance)

    def rho(data: Any, query: Any) -> Any:
        if data != query:
            raise FactorizationError(
                "padded factorization requires identical data and query copies"
            )
        return base.rho(data[0], data[1])

    return Factorization(
        name=name or f"{base.name}@padded",
        pi1=project,
        pi2=project,
        rho=rho,
        description=f"Lemma 2 padding of {base.name}",
    )


def compose(
    first: NCFactorReduction,
    second: NCFactorReduction,
    *,
    name: Optional[str] = None,
) -> NCFactorReduction:
    """Lemma 2: from ``L1 <=NC_fa L2`` and ``L2 <=NC_fa L3``, build
    ``L1 <=NC_fa L3``.

    A naive function composition fails because ``second``'s alpha/beta may
    depend on *both* parts produced by ``first``.  Following the paper's
    proof, the composite's source factorization pads both parts with the
    full (data, query) pair; alpha and beta each (i) apply the first
    reduction, (ii) reassemble an L2 instance with ``first``'s target rho,
    (iii) re-factorize it under ``second``'s source factorization, and
    (iv) apply the second reduction's alpha / beta respectively.
    """
    if first.target.name != second.source.name:
        raise ReductionError(
            f"cannot compose {first.name} with {second.name}: "
            f"{first.target.name} != {second.source.name}"
        )

    padded = padded_factorization(first.source_factorization)

    def rebuild_intermediate(padded_part: Tuple[Any, Any]) -> Any:
        source_data, source_query = padded_part
        mid_data, mid_query = first.map_pair(source_data, source_query)
        return first.target_factorization.rho(mid_data, mid_query)

    def alpha(padded_data: Tuple[Any, Any]) -> Any:
        intermediate = rebuild_intermediate(padded_data)
        return second.alpha(second.source_factorization.pi1(intermediate))

    def beta(padded_query: Tuple[Any, Any]) -> Any:
        intermediate = rebuild_intermediate(padded_query)
        return second.beta(second.source_factorization.pi2(intermediate))

    return NCFactorReduction(
        name=name or f"{first.name};{second.name}",
        source=first.source,
        target=second.target,
        source_factorization=padded,
        target_factorization=second.target_factorization,
        alpha=alpha,
        beta=beta,
        description=f"Lemma 2 composition of {first.name} and {second.name}",
    )


def compose_f(
    first: FReduction,
    second: FReduction,
    *,
    name: Optional[str] = None,
) -> FReduction:
    """Transitivity of <=NC_F (Lemma 8): plain composition, no padding needed
    because F-reductions map data to data and query to query independently."""
    if first.target.name != second.source.name:
        raise ReductionError(
            f"cannot compose {first.name} with {second.name}: "
            f"{first.target.name} != {second.source.name}"
        )
    return FReduction(
        name=name or f"{first.name};{second.name}",
        source=first.source,
        target=second.target,
        alpha=lambda data: second.alpha(first.alpha(data)),
        beta=lambda query: second.beta(first.beta(query)),
        description=f"Lemma 8 composition of {first.name} and {second.name}",
    )


# ---------------------------------------------------------------------------
# Lemma 3 / Lemma 8: compatibility -- pulling schemes back along reductions
# ---------------------------------------------------------------------------


def transfer_scheme(
    reduction: NCFactorReduction,
    target_scheme: PiScheme,
    *,
    name: Optional[str] = None,
) -> PiScheme:
    """Lemma 3, constructive direction: a Pi-scheme for the target yields one
    for the source.

    ``Pi'(D1) = Pi(alpha(D1))`` and ``eval'(D', Q1) = eval(D', beta(Q1))``.
    ``Pi'`` is PTIME because ``alpha`` is NC and NC is contained in P; the new
    evaluator is NC because ``beta`` is NC and the target evaluator is NC.

    The target scheme must answer the pair language of *this reduction's*
    target factorization; the paper handles mismatches by re-deriving the
    reduction (proof of Lemma 3) -- here we require the match explicitly and
    raise :class:`ReductionError` otherwise.
    """
    expected = target_scheme.factorization_name
    if expected is not None and expected != reduction.target_factorization.name:
        raise ReductionError(
            f"scheme {target_scheme.name!r} answers factorization "
            f"{expected!r}, but reduction {reduction.name!r} targets "
            f"{reduction.target_factorization.name!r}"
        )

    def preprocess(data: Any, tracker: CostTracker) -> Any:
        return target_scheme.preprocess(reduction.alpha(data), tracker)

    def evaluate(preprocessed: Any, query: Any, tracker: CostTracker) -> bool:
        return target_scheme.answer(preprocessed, reduction.beta(query), tracker)

    return PiScheme(
        name=name or f"{target_scheme.name}<-{reduction.name}",
        preprocess=preprocess,
        evaluate=evaluate,
        factorization_name=reduction.source_factorization.name,
        description=f"Lemma 3 transfer of {target_scheme.name} along {reduction.name}",
    )


def transfer_scheme_f(
    reduction: FReduction,
    target_scheme: PiScheme,
    *,
    name: Optional[str] = None,
) -> PiScheme:
    """Lemma 8, constructive direction: same construction for F-reductions."""

    def preprocess(data: Any, tracker: CostTracker) -> Any:
        return target_scheme.preprocess(reduction.alpha(data), tracker)

    def evaluate(preprocessed: Any, query: Any, tracker: CostTracker) -> bool:
        return target_scheme.answer(preprocessed, reduction.beta(query), tracker)

    return PiScheme(
        name=name or f"{target_scheme.name}<-{reduction.name}",
        preprocess=preprocess,
        evaluate=evaluate,
        description=f"Lemma 8 transfer of {target_scheme.name} along {reduction.name}",
    )


# ---------------------------------------------------------------------------
# Empirical verification of the Definition 4 / Definition 7 equivalences
# ---------------------------------------------------------------------------


def verify_reduction(
    reduction: NCFactorReduction,
    instances: Sequence[Any],
    *,
    cross_pairs: bool = True,
    tracker: Optional[CostTracker] = None,
) -> List[str]:
    """Check ``<D,Q> in S1 iff <alpha(D), beta(Q)> in S2`` on real instances.

    Returns a list of human-readable violation descriptions (empty = all
    checks passed).  With ``cross_pairs``, data and query parts of *different*
    instances are recombined, exercising pairs that are typically
    non-members.  Pairs whose recombination is rejected by ``rho`` (the
    factorization's domain is violated) are skipped: Definition 4 quantifies
    over Sigma* x Sigma*, but object-level rho functions are partial.
    """
    tracker = ensure_tracker(tracker)
    violations: List[str] = []
    source_pairs = reduction.source_factorization
    target = reduction.target_factorization

    def check(data: Any, query: Any, label: str) -> None:
        try:
            source_instance = source_pairs.rho(data, query)
        except FactorizationError:
            return
        in_source = reduction.source.member(source_instance, tracker)
        target_data, target_query = reduction.map_pair(data, query)
        target_instance = target.rho(target_data, target_query)
        in_target = reduction.target.member(target_instance, tracker)
        if in_source != in_target:
            violations.append(
                f"{label}: source membership {in_source} but target {in_target}"
            )

    parts = [source_pairs.split(instance) for instance in instances]
    for index, (data, query) in enumerate(parts):
        check(data, query, f"instance #{index}")
    if cross_pairs and len(parts) > 1:
        for i, (data, _) in enumerate(parts):
            j = (i + 1) % len(parts)
            check(data, parts[j][1], f"cross pair #{i}x#{j}")
    return violations


def verify_f_reduction(
    reduction: FReduction,
    pairs: Sequence[Tuple[Any, Any]],
    *,
    tracker: Optional[CostTracker] = None,
) -> List[str]:
    """Check the Definition 7 equivalence on explicit (data, query) pairs."""
    tracker = ensure_tracker(tracker)
    violations: List[str] = []
    for index, (data, query) in enumerate(pairs):
        in_source = reduction.source.member(data, query, tracker)
        target_data, target_query = reduction.map_pair(data, query)
        in_target = reduction.target.member(target_data, target_query, tracker)
        if in_source != in_target:
            violations.append(
                f"pair #{index}: source membership {in_source} but target {in_target}"
            )
    return violations
