"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class EncodingError(ReproError):
    """Raised when a string in Sigma* cannot be decoded, or an object cannot
    be encoded (Section 3 'Notations' of the paper)."""


class FactorizationError(ReproError):
    """Raised when a factorization violates its contract, e.g. the round-trip
    law rho(pi1(x), pi2(x)) == x fails for some instance x."""


class ReductionError(ReproError):
    """Raised when a reduction is malformed or its factorizations are
    incompatible (e.g. transferring a Pi-scheme across a reduction whose
    target factorization differs from the scheme's factorization)."""


class CertificationError(ReproError):
    """Raised when the empirical Pi-tractability certifier cannot run, e.g.
    not enough sizes to fit a scaling curve."""


class SchemaError(ReproError):
    """Raised on relational schema violations (unknown attribute, arity
    mismatch, type mismatch)."""


class IndexError_(ReproError):
    """Raised on index misuse (e.g. querying an unbuilt index).

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``.
    """


class GraphError(ReproError):
    """Raised on malformed graph input (unknown vertex, bad numbering)."""


class CircuitError(ReproError):
    """Raised on malformed Boolean circuits (cycles, bad fan-in, unknown
    gate references)."""


class ViewError(ReproError):
    """Raised when a query cannot be answered from the available views."""


class ArtifactError(ReproError):
    """Base class for preprocessing-artifact store failures."""


class ArtifactCorruptionError(ArtifactError):
    """Raised when a stored artifact fails its integrity checks (bad magic,
    truncated header, checksum mismatch, or key mismatch)."""


class ArtifactVersionError(ArtifactError):
    """Raised when a stored artifact was written under an incompatible store
    format or scheme artifact version."""


class ServiceError(ReproError):
    """Raised on query-engine misuse (unknown query kind, closed engine)."""


class UnknownDatasetError(ServiceError):
    """Raised when a request names a dataset the engine does not serve: the
    name was never attached, or the :class:`repro.service.dataset.Dataset`
    session was detached.  A subclass of :class:`ServiceError`, so existing
    ``except ServiceError`` handlers keep catching it."""


class WorkloadError(ReproError):
    """Raised when a :class:`repro.workloads.WorkloadSpec` cannot be bound to
    a dataset session: a kind in the mix is unknown or not served, a write
    ratio targets an immutable session, or the mix itself is malformed."""


class InjectedFaultError(ReproError):
    """Raised by an armed :class:`repro.service.faults.FaultPlan` at an
    injection point whose mode is ``"raise"`` (a dead shard, a failing
    delta apply).  Deliberately *outside* the ``ServiceError``/
    ``ArtifactError`` branches: recovery code distinguishes injected
    faults from genuine query errors (e.g. :class:`IndexError_`), which
    must keep propagating unchanged."""


class ShardFailedError(ServiceError):
    """Raised when scatter-gather loses a shard and the kind's merge
    family cannot tolerate a missing partial (monoid combine and k-way
    merge need *every* shard; only union kinds may degrade to an
    explicit partial answer)."""


class WriteBehindError(ServiceError):
    """Raised by ``flush()``/``close()`` when write-behind persistence
    exhausted its retries: the in-memory structure is current, but the
    on-disk artifact is stale.  Carries the terminal store failure as
    ``__cause__``."""


class ProtocolError(ServiceError):
    """Raised by the serving front's wire protocol
    (:mod:`repro.service.frontend.protocol`) on malformed, oversized,
    version-mismatched or unencodable frames.  A subclass of
    :class:`ServiceError`: a protocol failure is a serving failure, and
    clients catching the service hierarchy keep catching it."""


class OverloadedError(ServiceError):
    """Raised (and sent as a structured error frame) when the gateway's
    admission control rejects a request: the dataset's in-flight permits
    are exhausted and the waiting queue is at its watermark.  Explicit
    load shedding -- the gateway never buffers unboundedly; back off and
    retry."""


class DeadlineExceededError(ServiceError):
    """Raised when a request's end-to-end deadline budget expires before an
    answer is produced: at the gateway (already expired on arrival or while
    waiting for an admission permit), in the supervisor (no worker response
    within the remaining budget), or in a worker (the frame aged out in the
    inbox before serving started).  Carries the request identity and the
    budget arithmetic so operators can see *where* the time went; the
    serving front's wire protocol preserves these fields across the wire.
    """

    def __init__(
        self,
        message: str,
        *,
        op: "str | None" = None,
        dataset: "str | None" = None,
        elapsed_ms: "float | None" = None,
        budget_ms: "float | None" = None,
    ):
        super().__init__(message)
        self.op = op
        self.dataset = dataset
        self.elapsed_ms = elapsed_ms
        self.budget_ms = budget_ms

    def wire_details(self) -> dict:
        """Structured fields for the error frame (see
        :func:`repro.service.frontend.protocol.error_payload`)."""
        details = {
            "op": self.op,
            "dataset": self.dataset,
            "elapsed_ms": self.elapsed_ms,
            "budget_ms": self.budget_ms,
        }
        return {key: value for key, value in details.items() if value is not None}


class WorkerFailedError(ServiceError):
    """Raised when a serving-front worker process died while holding a
    request and the request could not be transparently retried: a write
    that may or may not have applied, a read whose one retry also failed,
    or a dataset whose home worker is gone and not yet re-homed.  Answers
    are never silently wrong -- the failure is structured and loud."""


class DeltaError(ReproError):
    """Raised by a scheme's ``apply_delta`` hook when a change batch cannot
    be applied incrementally (unsupported change kind, out-of-range target,
    or a batch that would leave the structure unbuildable).

    The hook must raise *before* mutating the structure, so the caller --
    :class:`repro.service.mutable.DatasetHandle` -- can fall back to a
    rebuild of the whole batch without observing a half-applied structure.
    """
