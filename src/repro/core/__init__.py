"""Core framework: the paper's primary contribution, as executable objects.

Layout (one concept per module):

========================  ====================================================
``alphabet``              Sigma* encodings, the ``D#Q`` form (Section 3)
``cost``                  work--depth cost accounting (the PRAM yardstick)
``fitting``               polylog-vs-polynomial scaling classification
``query``                 :class:`QueryClass` and :class:`PiScheme`
``language``              languages of pairs, decision problems, L_Q
``factorization``         ``Upsilon = (pi1, pi2, rho)`` (Definitions 2-3)
``tractability``          empirical certification of Definition 1
``reductions``            ``<=NC_fa`` and ``<=NC_F`` (Definitions 4 and 7),
                          Lemma 2/3/8 as executable constructions
``classes``               the Figure 2 registry and containment checker
========================  ====================================================
"""

from repro.core.alphabet import decode, decode_pair, encode, encode_pair, encoded_size
from repro.core.classes import Membership, Registry, RegistryEntry, figure2_report
from repro.core.cost import NULL_TRACKER, Cost, CostTracker, NullTracker, ensure_tracker
from repro.core.errors import (
    CertificationError,
    CircuitError,
    EncodingError,
    FactorizationError,
    GraphError,
    ReductionError,
    ReproError,
    SchemaError,
    ViewError,
)
from repro.core.factorization import (
    EMPTY_DATA,
    Factorization,
    canonical_factorization,
    identity_factorization,
    trivial_factorization,
)
from repro.core.fitting import (
    Fit,
    ScalingKind,
    ScalingVerdict,
    classify_scaling,
    fit_polylog,
    fit_power,
)
from repro.core.language import (
    DecisionProblem,
    PairLanguage,
    decision_problem_of,
    pair_language_of,
)
from repro.core.query import PiScheme, QueryClass, default_sizes
from repro.core.reductions import (
    FReduction,
    NCFactorReduction,
    compose,
    compose_f,
    padded_factorization,
    transfer_scheme,
    transfer_scheme_f,
    verify_f_reduction,
    verify_reduction,
)
from repro.core.tractability import Certificate, SizeSample, certify

__all__ = [
    # alphabet
    "encode",
    "decode",
    "encode_pair",
    "decode_pair",
    "encoded_size",
    # cost
    "Cost",
    "CostTracker",
    "NullTracker",
    "NULL_TRACKER",
    "ensure_tracker",
    # fitting
    "Fit",
    "ScalingKind",
    "ScalingVerdict",
    "classify_scaling",
    "fit_power",
    "fit_polylog",
    # query / language
    "QueryClass",
    "PiScheme",
    "default_sizes",
    "PairLanguage",
    "DecisionProblem",
    "pair_language_of",
    "decision_problem_of",
    # factorization
    "Factorization",
    "EMPTY_DATA",
    "canonical_factorization",
    "trivial_factorization",
    "identity_factorization",
    # tractability
    "Certificate",
    "SizeSample",
    "certify",
    # reductions
    "NCFactorReduction",
    "FReduction",
    "compose",
    "compose_f",
    "padded_factorization",
    "transfer_scheme",
    "transfer_scheme_f",
    "verify_reduction",
    "verify_f_reduction",
    # registry
    "Membership",
    "Registry",
    "RegistryEntry",
    "figure2_report",
    # errors
    "ReproError",
    "EncodingError",
    "FactorizationError",
    "ReductionError",
    "CertificationError",
    "SchemaError",
    "GraphError",
    "CircuitError",
    "ViewError",
]
