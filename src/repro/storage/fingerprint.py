"""Dataset fingerprints: content addresses for preprocessing artifacts.

The artifact store keys a persisted Pi-structure by *what data it was built
over*, not by object identity: two processes that load the same relation must
resolve to the same artifact.  ``dataset_fingerprint`` therefore hashes a
canonical byte rendering of the dataset:

* objects with an ``encode()`` method (:class:`~repro.storage.relation.Relation`,
  the graph classes) use their deterministic Sigma* encoding;
* plain nested sequences of ints/strings/bools/None -- the array, list and
  score-table datasets -- use the same Sigma* codec directly;
* anything else falls back to ``repr``, which is deterministic for the value
  types this library generates (``PYTHONHASHSEED`` does not affect it).

The type name is mixed in so that, e.g., a Graph and a Digraph with equal
edge sets do not collide.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.core import alphabet
from repro.core.errors import EncodingError

__all__ = ["dataset_fingerprint", "canonical_bytes"]


def canonical_bytes(data: Any) -> bytes:
    """A deterministic byte rendering of a dataset (not reversible)."""
    encode = getattr(data, "encode", None)
    if callable(encode) and not isinstance(data, (str, bytes)):
        rendered = encode()
        if isinstance(rendered, bytes):
            return rendered
        return str(rendered).encode("utf-8")
    if isinstance(data, bytes):
        return data
    try:
        return alphabet.encode(data).encode("utf-8")
    except EncodingError:
        return repr(data).encode("utf-8")


def dataset_fingerprint(data: Any) -> str:
    """SHA-256 hex digest identifying a dataset's content and type."""
    digest = hashlib.sha256()
    digest.update(type(data).__name__.encode("ascii", "replace"))
    digest.update(b"\x00")
    digest.update(canonical_bytes(data))
    return digest.hexdigest()
