"""Relational schemas: typed attribute lists with validation.

The selection case studies (paper, Example 1 and Section 4(1)) operate on a
relation ``D`` of schema ``R``.  A :class:`Schema` names the attributes and
their types; :class:`repro.storage.relation.Relation` enforces it on insert.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Sequence, Tuple

from repro.core.errors import SchemaError

__all__ = ["AttributeType", "Attribute", "Schema"]


class AttributeType(enum.Enum):
    """Supported attribute domains."""

    INT = "int"
    STR = "str"
    BOOL = "bool"

    def validate(self, value: Any) -> None:
        if self is AttributeType.INT:
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif self is AttributeType.STR:
            ok = isinstance(value, str)
        else:
            ok = isinstance(value, bool)
        if not ok:
            raise SchemaError(
                f"value {value!r} does not inhabit domain {self.value}"
            )


@dataclass(frozen=True)
class Attribute:
    """One named, typed column."""

    name: str
    type: AttributeType


class Schema:
    """An ordered list of uniquely-named attributes."""

    def __init__(self, name: str, attributes: Sequence[Tuple[str, AttributeType]]):
        self.name = name
        self.attributes = tuple(Attribute(n, t) for n, t in attributes)
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"schema {name!r} has duplicate attribute names")
        if not names:
            raise SchemaError(f"schema {name!r} has no attributes")
        self._positions = {a.name: i for i, a in enumerate(self.attributes)}

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def position_of(self, attribute: str) -> int:
        """Column index of ``attribute``; raises SchemaError when unknown."""
        try:
            return self._positions[attribute]
        except KeyError as exc:
            raise SchemaError(
                f"schema {self.name!r} has no attribute {attribute!r}"
            ) from exc

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self._positions

    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def validate_row(self, row: Sequence[Any]) -> None:
        """Check arity and per-column domains; raises SchemaError."""
        if len(row) != self.arity:
            raise SchemaError(
                f"row arity {len(row)} does not match schema "
                f"{self.name!r} arity {self.arity}"
            )
        for attribute, value in zip(self.attributes, row):
            attribute.type.validate(value)

    def project_positions(self, attributes: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.position_of(a) for a in attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.type.value}" for a in self.attributes)
        return f"Schema({self.name!r}, [{cols}])"
