"""Relations: in-memory tuple stores with cost-charged scans.

A :class:`Relation` is the paper's database ``D`` for the selection case
studies.  Scans charge one cost unit per tuple inspected, which is what makes
the naive-evaluation baseline measurably linear.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core import alphabet
from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import SchemaError
from repro.storage.schema import AttributeType, Schema

__all__ = ["Relation", "Row"]

Row = Tuple[Any, ...]


class Relation:
    """A bag of rows under a schema, supporting scans and point lookups.

    Rows are stored in insertion order with stable integer row ids; deleted
    slots are tombstoned so row ids stay valid (the incremental-maintenance
    case study depends on that).
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._rows: List[Optional[Row]] = []
        self._live = 0

    # -- mutation -------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> int:
        """Validate and append; returns the new row id."""
        as_tuple = tuple(row)
        self.schema.validate_row(as_tuple)
        self._rows.append(as_tuple)
        self._live += 1
        return len(self._rows) - 1

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> List[int]:
        return [self.insert(row) for row in rows]

    def delete(self, row_id: int) -> Row:
        """Tombstone a row; returns the removed row."""
        row = self.fetch(row_id)
        self._rows[row_id] = None
        self._live -= 1
        return row

    # -- access ---------------------------------------------------------------

    def fetch(self, row_id: int) -> Row:
        if not 0 <= row_id < len(self._rows):
            raise SchemaError(f"row id {row_id} out of range")
        row = self._rows[row_id]
        if row is None:
            raise SchemaError(f"row id {row_id} is deleted")
        return row

    def scan(self, tracker: Optional[CostTracker] = None) -> Iterator[Tuple[int, Row]]:
        """Full scan, charging one unit per slot inspected."""
        tracker = ensure_tracker(tracker)
        for row_id, row in enumerate(self._rows):
            tracker.tick(1)
            if row is not None:
                yield row_id, row

    def select(
        self,
        predicate: Callable[[Row], bool],
        tracker: Optional[CostTracker] = None,
    ) -> List[Row]:
        """sigma_predicate(D) by scan."""
        return [row for _, row in self.scan(tracker) if predicate(row)]

    def exists(
        self,
        predicate: Callable[[Row], bool],
        tracker: Optional[CostTracker] = None,
    ) -> bool:
        """Boolean selection: does any tuple satisfy the predicate?

        This is the paper's Boolean point/range selection semantics; the
        scan stops at the first witness (still linear in the worst case and
        on negative answers).
        """
        for _, row in self.scan(tracker):
            if predicate(row):
                return True
        return False

    def column(self, attribute: str, tracker: Optional[CostTracker] = None) -> List[Any]:
        position = self.schema.position_of(attribute)
        return [row[position] for _, row in self.scan(tracker)]

    def value(self, row: Row, attribute: str) -> Any:
        """``t[A]`` -- the attribute value of a row."""
        return row[self.schema.position_of(attribute)]

    def rows(self) -> List[Row]:
        """All live rows (no cost charged; testing/utility accessor)."""
        return [row for row in self._rows if row is not None]

    def __len__(self) -> int:
        return self._live

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    # -- Sigma* view ------------------------------------------------------------

    def encode(self) -> str:
        """Deterministic Sigma* encoding: schema header then live rows."""
        header = (
            self.schema.name,
            tuple((a.name, a.type.value) for a in self.schema.attributes),
        )
        return alphabet.encode((header, tuple(self.rows())))

    @staticmethod
    def decode(text: str) -> "Relation":
        (name, columns), rows = alphabet.decode(text)
        schema = Schema(name, [(n, AttributeType(t)) for n, t in columns])
        relation = Relation(schema)
        for row in rows:
            relation.insert(row)
        return relation

    def __repr__(self) -> str:
        return f"Relation({self.schema.name!r}, rows={self._live})"


def uniform_int_relation(
    size: int,
    rng: random.Random,
    *,
    name: str = "R",
    attributes: Sequence[str] = ("a", "b"),
    value_range: Optional[Tuple[int, int]] = None,
) -> Relation:
    """A synthetic relation with uniformly random integer columns.

    ``value_range`` defaults to ``(0, 4 * size)`` so that roughly a quarter
    of random point probes hit -- workloads mix positive and negative
    answers.
    """
    lo, hi = value_range if value_range is not None else (0, 4 * size)
    schema = Schema(name, [(a, AttributeType.INT) for a in attributes])
    relation = Relation(schema)
    for _ in range(size):
        relation.insert(tuple(rng.randint(lo, hi) for _ in attributes))
    return relation
