"""A database catalog: named relations plus the indexes built over them.

The catalog is the object a :class:`~repro.core.query.PiScheme` for
relational queries produces as its preprocessed structure ``D' = Pi(D)``:
the base relation together with whatever auxiliary access paths (B+-trees,
hash indexes) the preprocessing step chose to build.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.core.errors import SchemaError
from repro.storage.relation import Relation

__all__ = ["Database"]


class Database:
    """Named relations and per-(relation, attribute) secondary indexes."""

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}
        self._indexes: Dict[Tuple[str, str, str], Any] = {}

    # -- relations -------------------------------------------------------------

    def create(self, relation: Relation) -> Relation:
        name = relation.schema.name
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        self._relations[name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise SchemaError(f"no relation named {name!r}") from exc

    def drop(self, name: str) -> None:
        if name not in self._relations:
            raise SchemaError(f"no relation named {name!r}")
        del self._relations[name]
        self._indexes = {
            key: index for key, index in self._indexes.items() if key[0] != name
        }

    def relation_names(self) -> Iterable[str]:
        return sorted(self._relations)

    # -- indexes ---------------------------------------------------------------

    def attach_index(self, relation: str, attribute: str, kind: str, index: Any) -> Any:
        """Register an index over ``relation.attribute`` (e.g. kind='btree')."""
        self.relation(relation).schema.position_of(attribute)  # validate
        key = (relation, attribute, kind)
        if key in self._indexes:
            raise SchemaError(f"index {key} already exists")
        self._indexes[key] = index
        return index

    def index(self, relation: str, attribute: str, kind: str) -> Any:
        try:
            return self._indexes[(relation, attribute, kind)]
        except KeyError as exc:
            raise SchemaError(
                f"no {kind} index on {relation}.{attribute}"
            ) from exc

    def maybe_index(self, relation: str, attribute: str, kind: str) -> Optional[Any]:
        return self._indexes.get((relation, attribute, kind))

    def index_keys(self) -> Iterable[Tuple[str, str, str]]:
        return sorted(self._indexes)

    def __repr__(self) -> str:
        return (
            f"Database(relations={sorted(self._relations)}, "
            f"indexes={len(self._indexes)})"
        )
