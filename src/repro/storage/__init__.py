"""Relational storage substrate: schemas, relations, the catalog."""

from repro.storage.catalog import Database
from repro.storage.fingerprint import canonical_bytes, dataset_fingerprint
from repro.storage.relation import Relation, Row, uniform_int_relation
from repro.storage.schema import Attribute, AttributeType, Schema

__all__ = [
    "Attribute",
    "AttributeType",
    "Database",
    "Relation",
    "Row",
    "Schema",
    "canonical_bytes",
    "dataset_fingerprint",
    "uniform_int_relation",
]
