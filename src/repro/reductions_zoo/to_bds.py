"""Reductions into BDS: the executable shape of Theorem 5 / Corollary 6.

Theorem 5 proves every problem L in P NC-factor-reducible to BDS using the
identity factorization of L and the NC function h supplied by BDS's
P-completeness.  Two executable specimens are provided:

:func:`solve_and_emit_bds`
    The generic reduction for problems whose (factored) pair language we can
    decide: alpha maps everything to one fixed 3-path *witness graph*, beta
    decides the instance and emits the vertex pair (1, 2) for yes and (2, 1)
    for no.  For sources in NC, deciding *is* an NC function and this is
    literally the Theorem 5 construction; for harder sources it is still a
    correct many-one reduction, merely a PTIME one -- the genuinely-NC gadget
    for the P-complete case lives in :mod:`repro.reductions_zoo.cvp_to_bds`.

:func:`refactorize_to_bds`
    The Figure 1 move as a reduction: the *trivially factorized* BDS query
    class (nothing preprocessable) NC-factor-reduces to the properly
    factorized BDS problem with identity alpha/beta -- the source
    factorization simply re-partitions each instance.  This is what
    "making a query class Pi-tractable by re-factorization" means.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from repro.core.cost import NULL_TRACKER
from repro.core.factorization import EMPTY_DATA, Factorization, identity_factorization
from repro.core.language import DecisionProblem, decision_problem_of
from repro.core.query import QueryClass
from repro.core.reductions import NCFactorReduction
from repro.graphs.graph import Graph
from repro.queries.bds import bds_problem, upsilon_bds

__all__ = [
    "witness_graph",
    "witness_pair",
    "solve_and_emit_bds",
    "refactorize_to_bds",
]


def witness_graph() -> Graph:
    """The canonical BDS target: the path 0 - 1 - 2.

    Its breadth-depth search visits 0, 1, 2 in numbering order, so the query
    (1, 2) is a yes-instance and (2, 1) a no-instance.
    """
    graph = Graph(3)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    return graph


def witness_pair(answer: bool) -> Tuple[int, int]:
    return (1, 2) if answer else (2, 1)


def solve_and_emit_bds(
    problem: DecisionProblem,
    *,
    name: str | None = None,
) -> NCFactorReduction:
    """``problem <=NC_fa BDS`` via the identity factorization of the source.

    Both alpha and beta receive the full instance (pi1 = pi2 = x); alpha is
    the constant witness graph, beta decides x and picks the matching vertex
    pair.  Definition 4's equivalence holds by construction:
    ``x in L  iff  (1, 2) visited in order  iff  <alpha(x), beta(x)> in
    S(BDS, Upsilon_BDS)``.
    """
    target = bds_problem()

    def beta(instance: Any) -> Tuple[int, int]:
        return witness_pair(problem.member(instance, NULL_TRACKER))

    return NCFactorReduction(
        name=name or f"{problem.name}<=fa BDS",
        source=problem,
        target=target,
        source_factorization=identity_factorization(f"identity[{problem.name}]"),
        target_factorization=upsilon_bds(),
        alpha=lambda instance: witness_graph(),
        beta=beta,
        description="Theorem 5 solve-and-emit reduction to BDS",
    )


def refactorize_to_bds(trivial_class: QueryClass) -> NCFactorReduction:
    """The trivially-factorized BDS class, re-factorized into BDS proper.

    Instances of the source decision problem are ``(scale, (G, (u, v)))``
    pairs (the data part is morally epsilon; see
    :func:`repro.queries.bds.bds_trivial_query_class`).  The source
    factorization *re-partitions* them -- pi1 extracts G, pi2 extracts
    (u, v) -- after which alpha and beta are identities.  Corollary 6 in one
    object: nothing changed but the factorization, and the problem became
    Pi-tractable.
    """
    source = decision_problem_of(trivial_class)
    target = bds_problem()

    refactorization = Factorization(
        name=f"refactorized[{trivial_class.name}]",
        pi1=lambda instance: instance[1][0],  # the graph inside the query part
        pi2=lambda instance: instance[1][1],  # the vertex pair
        rho=lambda graph, pair: (max(graph.n, 2), (graph, pair)),
        description="re-partition: graph becomes the data part",
    )

    return NCFactorReduction(
        name=f"{trivial_class.name}<=fa BDS (refactorization)",
        source=source,
        target=target,
        source_factorization=refactorization,
        target_factorization=upsilon_bds(),
        alpha=lambda graph: graph,
        beta=lambda pair: pair,
        description="Figure 1's re-factorization, as an NC-factor reduction",
    )
