"""Concrete reductions: the executable content of Sections 5-7.

=====================  =====================================================
``f_reductions``       membership -> point selection -> range selection
                       (Definition 7 / Lemma 8 specimens)
``to_bds``             Theorem 5 reductions into BDS: solve-and-emit, and
                       the Figure 1 re-factorization
``refactorize_cvp``    Corollary 6 for CVP: Upsilon_0 -> Upsilon_CVP
=====================  =====================================================
"""

from repro.reductions_zoo.f_reductions import (
    membership_to_point_selection,
    point_to_range_selection,
)
from repro.reductions_zoo.refactorize_cvp import refactorize_cvp
from repro.reductions_zoo.to_bds import (
    refactorize_to_bds,
    solve_and_emit_bds,
    witness_graph,
    witness_pair,
)

__all__ = [
    "membership_to_point_selection",
    "point_to_range_selection",
    "refactorize_cvp",
    "refactorize_to_bds",
    "solve_and_emit_bds",
    "witness_graph",
    "witness_pair",
]
