"""Concrete F-reductions (paper, Definition 7 / Lemma 8).

F-reductions map data parts to data parts and query parts to query parts
with *no* re-factorization; they are the conservative transformations under
which PiT0Q is downward closed.  Two natural specimens:

* ``list-membership <=NC_F point-selection``: a list becomes a unary
  relation, an element becomes an (attribute, constant) probe;
* ``point-selection <=NC_F range-selection``: a point probe becomes the
  degenerate range [c, c].

Composing them (Lemma 8's transitivity) gives
``list-membership <=NC_F range-selection``, and transferring the B+-tree
scheme backwards along the composite yields a certified Pi-scheme for list
membership "for free" -- exercised in tests and the Theorem 5 benchmark.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.language import pair_language_of
from repro.core.reductions import FReduction
from repro.queries.membership import ListData, membership_class
from repro.queries.selection import point_selection_class, range_selection_class
from repro.storage.relation import Relation
from repro.storage.schema import AttributeType, Schema

__all__ = [
    "membership_to_point_selection",
    "point_to_range_selection",
]

#: The attribute name used when a list is re-encoded as a unary relation.
LIST_ATTRIBUTE = "element"


def _list_as_relation(data: ListData) -> Relation:
    relation = Relation(Schema("M", [(LIST_ATTRIBUTE, AttributeType.INT)]))
    for value in data:
        relation.insert((value,))
    return relation


def membership_to_point_selection() -> FReduction:
    """alpha: list -> unary relation; beta: element -> (attribute, element)."""
    return FReduction(
        name="membership<=F point-selection",
        source=pair_language_of(membership_class()),
        target=pair_language_of(point_selection_class()),
        alpha=_list_as_relation,
        beta=lambda element: (LIST_ATTRIBUTE, element),
        description="lists are unary relations; membership is point selection",
    )


def point_to_range_selection() -> FReduction:
    """alpha: identity; beta: (A, c) -> (A, c, c)."""

    def beta(query: Tuple[str, int]) -> Tuple[str, int, int]:
        attribute, constant = query
        return attribute, constant, constant

    return FReduction(
        name="point<=F range-selection",
        source=pair_language_of(point_selection_class()),
        target=pair_language_of(range_selection_class()),
        alpha=lambda relation: relation,
        beta=beta,
        description="a point probe is a width-zero range probe",
    )
