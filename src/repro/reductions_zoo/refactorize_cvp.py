"""Re-factorizing CVP: from the Theorem 9 shape to the Section 4(8) shape.

The class ``cvp-trivial`` (data part epsilon) is not Pi-tractable unless
P = NC; yet Corollary 6 promises it *can be made* Pi-tractable.  This module
exhibits the witness: an NC-factor reduction from its decision problem to
CVP under ``Upsilon_CVP``, whose only real content is the re-partition --
the circuit and inputs move from the query part into the data part.  After
Lemma 3 transfer of the gate-table scheme, the once-intractable class
answers queries in O(1).
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.core.factorization import Factorization
from repro.core.language import decision_problem_of
from repro.core.reductions import NCFactorReduction
from repro.queries.cvp import cvp_problem, cvp_trivial_class, upsilon_cvp

__all__ = ["refactorize_cvp"]


def refactorize_cvp() -> NCFactorReduction:
    """``L[cvp-trivial] <=NC_fa CVP`` with identity alpha and projecting beta.

    Source instances are ``(scale, (circuit, inputs, gate))``; the source
    factorization re-partitions them as pi1 = (circuit, inputs) and
    pi2 = (scale, gate), keeping the scale hint in the query part so the
    round-trip law is exact.
    """
    trivial = cvp_trivial_class()
    source = decision_problem_of(trivial)
    target = cvp_problem()

    refactorization = Factorization(
        name=f"refactorized[{trivial.name}]",
        pi1=lambda instance: (instance[1][0], instance[1][1]),
        pi2=lambda instance: (instance[0], instance[1][2]),
        rho=lambda data, query: (query[0], (data[0], data[1], query[1])),
        description="re-partition: circuit and inputs become the data part",
    )

    def beta(query: Tuple[int, int]) -> int:
        _, gate = query
        return gate

    return NCFactorReduction(
        name=f"{trivial.name}<=fa CVP (refactorization)",
        source=source,
        target=target,
        source_factorization=refactorization,
        target_factorization=upsilon_cvp(),
        alpha=lambda data: data,
        beta=beta,
        description="Corollary 6 for CVP: only the factorization changes",
    )
