"""Query-preserving compression for reachability (paper, Section 4(5)).

The paper's strategy (5), instantiated for the reachability query class as
in Fan et al., "Query preserving graph compression", SIGMOD 2012 [16]: find
a smaller graph ``Dc`` such that every reachability query over ``D`` can be
answered over ``Dc`` -- *without decompression*.  Two PTIME merges:

1. **SCC contraction**: vertices in one strongly connected component are
   mutually reachable, so the condensation preserves all answers;
2. **Reachability-equivalence merge** on the condensation: DAG vertices with
   identical (reflexive) ancestor *and* descendant sets are interchangeable
   for every query not between themselves; in a DAG such vertices are
   incomparable, so queries between two merged vertices are uniformly false
   unless they shared an SCC.

The answer translation is therefore:

* same SCC -> True;
* same equivalence class (different SCCs) -> False;
* otherwise -> reachability between classes in the compressed graph.

In contrast to *lossless* compression (see
:mod:`repro.compression.dictionary`), queries run directly on the compressed
structure; the paper notes this is why query-preserving schemes achieve
better effective ratios -- they only keep what the query class can observe.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.graphs.graph import Digraph
from repro.graphs.scc import condensation

__all__ = ["ReachabilityPreservingCompression"]


class ReachabilityPreservingCompression:
    """Compress a digraph while preserving all reachability answers."""

    def __init__(self, graph: Digraph, tracker: Optional[CostTracker] = None):
        tracker = ensure_tracker(tracker)
        self.original_vertices = graph.n
        self.original_edges = graph.edge_count

        dag, component_of = condensation(graph, tracker)
        self._component_of = component_of

        # Reflexive descendant and ancestor bitsets on the condensation.
        n = dag.n
        words = max(1, n // 64)
        descendants = [0] * n
        for vertex in range(n - 1, -1, -1):  # component ids are topological
            bits = 1 << vertex
            for successor in dag.neighbors(vertex):
                bits |= descendants[successor]
                tracker.tick(words)
            descendants[vertex] = bits
        ancestors = [0] * n
        reverse = dag.reversed()
        for vertex in range(n):
            bits = 1 << vertex
            for predecessor in reverse.neighbors(vertex):
                bits |= ancestors[predecessor]
                tracker.tick(words)
            ancestors[vertex] = bits

        # Group condensation vertices by (ancestors - self, descendants - self).
        signature_to_class: Dict[Tuple[int, int], int] = {}
        class_of_component: List[int] = [0] * n
        for vertex in range(n):
            self_bit = 1 << vertex
            signature = (ancestors[vertex] ^ self_bit, descendants[vertex] ^ self_bit)
            tracker.tick(words)
            if signature not in signature_to_class:
                signature_to_class[signature] = len(signature_to_class)
            class_of_component[vertex] = signature_to_class[signature]
        self._class_of_component = class_of_component

        # The compressed graph on equivalence classes.
        compressed = Digraph(len(signature_to_class))
        seen = set()
        for u, v in dag.edges():
            tracker.tick(1)
            cu, cv = class_of_component[u], class_of_component[v]
            if cu != cv and (cu, cv) not in seen:
                seen.add((cu, cv))
                compressed.add_edge(cu, cv)
        self.compressed = compressed

        # Class-level closure, for O(1) answers on the compressed structure.
        cn = compressed.n
        cwords = max(1, cn // 64)
        closure = [0] * cn
        order = _topological(compressed)
        for vertex in reversed(order):
            bits = 1 << vertex
            for successor in compressed.neighbors(vertex):
                bits |= closure[successor]
                tracker.tick(cwords)
            closure[vertex] = bits
        self._closure = closure

    # -- accounting ---------------------------------------------------------------

    @property
    def compressed_vertices(self) -> int:
        return self.compressed.n

    @property
    def compressed_edges(self) -> int:
        return self.compressed.edge_count

    def compression_ratio(self) -> float:
        """(original n + m) / (compressed n + m); > 1 means smaller."""
        original = self.original_vertices + self.original_edges
        compressed = self.compressed_vertices + max(self.compressed_edges, 0)
        return original / max(compressed, 1)

    # -- querying ------------------------------------------------------------------

    def class_of(self, vertex: int) -> int:
        return self._class_of_component[self._component_of[vertex]]

    def reachable(self, source: int, target: int, tracker: Optional[CostTracker] = None) -> bool:
        """Answer ``source ->* target`` on the compressed structure; O(1)."""
        tracker = ensure_tracker(tracker)
        tracker.tick(3)
        source_component = self._component_of[source]
        target_component = self._component_of[target]
        if source_component == target_component:
            return True
        source_class = self._class_of_component[source_component]
        target_class = self._class_of_component[target_component]
        if source_class == target_class:
            # Equivalent but in different SCCs: incomparable in the DAG.
            return False
        return bool(self._closure[source_class] & (1 << target_class))


def _topological(dag: Digraph) -> List[int]:
    from repro.graphs.scc import topological_order

    return topological_order(dag)
