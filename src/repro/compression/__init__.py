"""Query-preserving vs lossless compression (paper, Section 4(5))."""

from repro.compression.dictionary import LosslessCompressedGraph
from repro.compression.reachability_preserving import ReachabilityPreservingCompression

__all__ = ["LosslessCompressedGraph", "ReachabilityPreservingCompression"]
