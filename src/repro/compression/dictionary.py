"""Lossless compression baseline (contrast for Section 4(5)).

The paper contrasts query-preserving compression with lossless schemes
[6, 9, 17]: lossless compression preserves *all* information, so queries
must first decompress -- per-query cost returns to Theta(|D|) and the
scheme buys nothing for Pi-tractability.  This module makes that concrete:
the graph's Sigma* encoding is deflate-compressed; every reachability query
pays decompress + BFS.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.core.cost import CostTracker, ensure_tracker
from repro.graphs.graph import Digraph
from repro.graphs.traversal import is_reachable

__all__ = ["LosslessCompressedGraph"]


class LosslessCompressedGraph:
    """Deflate-compressed graph; queries decompress first."""

    def __init__(self, graph: Digraph, tracker: Optional[CostTracker] = None):
        tracker = ensure_tracker(tracker)
        encoded = graph.encode()
        tracker.tick(len(encoded))
        self._blob = zlib.compress(encoded.encode("ascii"), level=6)
        self.original_bytes = len(encoded)
        self.compressed_bytes = len(self._blob)

    def compression_ratio(self) -> float:
        return self.original_bytes / max(self.compressed_bytes, 1)

    def decompress(self, tracker: Optional[CostTracker] = None) -> Digraph:
        """Charged linearly in the decoded size -- the cost every query pays."""
        tracker = ensure_tracker(tracker)
        encoded = zlib.decompress(self._blob).decode("ascii")
        tracker.tick(len(encoded))
        graph = Digraph.decode(encoded)
        assert isinstance(graph, Digraph)
        return graph

    def reachable(self, source: int, target: int, tracker: Optional[CostTracker] = None) -> bool:
        """Decompress-then-BFS: Theta(|D|) per query, the paper's point."""
        tracker = ensure_tracker(tracker)
        graph = self.decompress(tracker)
        return is_reachable(graph, source, target, tracker)
