"""Graphs with vertex numbering (the substrate of BDS, GAP, LCA, VC).

Vertices are the integers ``0 .. n-1``; the *numbering* that induces the
breadth-depth search of Example 2 is exactly this integer order.  Adjacency
lists are kept sorted so "visit children in the order induced by the vertex
numbering" is a plain left-to-right sweep.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.core import alphabet
from repro.core.errors import GraphError

__all__ = ["Graph", "Digraph"]

Edge = Tuple[int, int]


class _BaseGraph:
    """Shared storage for directed and undirected graphs."""

    directed: bool

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise GraphError("vertex count must be non-negative")
        self.n = n
        self._adj: List[List[int]] = [[] for _ in range(n)]
        self._edge_count = 0
        for u, v in edges:
            self.add_edge(u, v)

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise GraphError(f"vertex {v} out of range [0, {self.n})")

    def add_edge(self, u: int, v: int) -> None:
        self._check_vertex(u)
        self._check_vertex(v)
        self._insert_sorted(self._adj[u], v)
        if not self.directed and u != v:
            self._insert_sorted(self._adj[v], u)
        self._edge_count += 1

    @staticmethod
    def _insert_sorted(adjacency: List[int], v: int) -> None:
        """Insert keeping the list sorted; ignore duplicate edges."""
        import bisect

        position = bisect.bisect_left(adjacency, v)
        if position < len(adjacency) and adjacency[position] == v:
            return
        adjacency.insert(position, v)

    @staticmethod
    def _remove_sorted(adjacency: List[int], v: int) -> bool:
        """Remove ``v`` from a sorted adjacency; False when absent."""
        import bisect

        position = bisect.bisect_left(adjacency, v)
        if position < len(adjacency) and adjacency[position] == v:
            del adjacency[position]
            return True
        return False

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete edge ``(u, v)`` if present; returns whether one was removed.

        The mutation counterpart of :meth:`add_edge`, used by the mutable
        serving layer to maintain working graph copies under
        :class:`~repro.incremental.changes.EdgeChange` batches.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        removed = self._remove_sorted(self._adj[u], v)
        if removed:
            if not self.directed and u != v:
                self._remove_sorted(self._adj[v], u)
            self._edge_count -= 1
        return removed

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        import bisect

        adjacency = self._adj[u]
        position = bisect.bisect_left(adjacency, v)
        return position < len(adjacency) and adjacency[position] == v

    def neighbors(self, v: int) -> Sequence[int]:
        """Sorted adjacency of ``v`` (out-neighbors when directed)."""
        self._check_vertex(v)
        return self._adj[v]

    def vertices(self) -> range:
        return range(self.n)

    def edges(self) -> Iterator[Edge]:
        """Each edge once: (u <= v) for undirected, (u, v) for directed."""
        for u in range(self.n):
            for v in self._adj[u]:
                if self.directed or u <= v:
                    yield (u, v)

    @property
    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    def degree(self, v: int) -> int:
        return len(self.neighbors(v))

    # -- Sigma* view ------------------------------------------------------------

    def encode(self) -> str:
        return alphabet.encode(
            (self.directed, self.n, tuple(sorted(self.edges())))
        )

    @classmethod
    def decode(cls, text: str) -> "_BaseGraph":
        directed, n, edges = alphabet.decode(text)
        graph: _BaseGraph = Digraph(n) if directed else Graph(n)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _BaseGraph):
            return NotImplemented
        return (
            self.directed == other.directed
            and self.n == other.n
            and self._adj == other._adj
        )

    def __hash__(self) -> int:
        return hash((self.directed, self.n, tuple(tuple(a) for a in self._adj)))

    def __repr__(self) -> str:
        kind = "Digraph" if self.directed else "Graph"
        return f"{kind}(n={self.n}, m={self.edge_count})"


class Graph(_BaseGraph):
    """Undirected graph with numbered vertices (BDS operates on these)."""

    directed = False


class Digraph(_BaseGraph):
    """Directed graph (GAP/reachability, DAG LCA, circuits-as-DAGs)."""

    directed = True

    def reversed(self) -> "Digraph":
        result = Digraph(self.n)
        for u, v in self.edges():
            result.add_edge(v, u)
        return result

    def out_neighbors(self, v: int) -> Sequence[int]:
        return self.neighbors(v)

    def in_degree_sequence(self) -> List[int]:
        indeg = [0] * self.n
        for _, v in self.edges():
            indeg[v] += 1
        return indeg


def permute_vertices(graph: _BaseGraph, permutation: Sequence[int]) -> _BaseGraph:
    """Renumber vertices: new id of old vertex v is ``permutation[v]``.

    Renumbering changes BDS visit order (the search is *induced by* the
    numbering), which the Figure 1 experiments exercise.
    """
    if sorted(permutation) != list(range(graph.n)):
        raise GraphError("permutation must be a bijection on the vertex set")
    result: _BaseGraph = Digraph(graph.n) if graph.directed else Graph(graph.n)
    for u, v in graph.edges():
        result.add_edge(permutation[u], permutation[v])
    return result


def random_permutation(n: int, rng: random.Random) -> List[int]:
    permutation = list(range(n))
    rng.shuffle(permutation)
    return permutation
