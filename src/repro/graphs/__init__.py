"""Graph substrate: numbered graphs, traversals (incl. BDS), SCC, generators."""

from repro.graphs.alternating import (
    AlternatingDigraph,
    AlternatingReachabilityIndex,
    alternating_reachable,
    random_alternating_digraph,
)
from repro.graphs.generators import (
    gnm_digraph,
    gnm_graph,
    layered_dag,
    random_connected_graph,
    random_dag,
    random_tree,
    random_vertex_pairs,
    social_digraph,
)
from repro.graphs.graph import Digraph, Graph, permute_vertices, random_permutation
from repro.graphs.scc import (
    condensation,
    is_dag,
    strongly_connected_components,
    topological_order,
)
from repro.graphs.traversal import (
    bfs_order,
    breadth_depth_search,
    breadth_depth_search_reference,
    dfs_order,
    is_reachable,
    reachable_from,
    visit_position,
)

__all__ = [
    "AlternatingDigraph",
    "AlternatingReachabilityIndex",
    "alternating_reachable",
    "random_alternating_digraph",
    "Digraph",
    "Graph",
    "permute_vertices",
    "random_permutation",
    "gnm_digraph",
    "gnm_graph",
    "layered_dag",
    "random_connected_graph",
    "random_dag",
    "random_tree",
    "random_vertex_pairs",
    "social_digraph",
    "condensation",
    "is_dag",
    "strongly_connected_components",
    "topological_order",
    "bfs_order",
    "breadth_depth_search",
    "breadth_depth_search_reference",
    "dfs_order",
    "is_reachable",
    "reachable_from",
    "visit_position",
]
