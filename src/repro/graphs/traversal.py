"""Graph traversals, centrally the paper's Breadth-Depth Search (Example 2).

Breadth-depth search (BDS, after Horowitz & Sahni via [21]) hybridizes BFS
and DFS: the search *visits* every unvisited neighbor of the current node at
once (breadth), pushes them on a stack in reverse numbering order, then
continues from the top of the stack -- the smallest-numbered fresh neighbor
(depth).  The decision problem asks whether ``u`` is visited before ``v``
under the numbering-induced search; it is P-complete [21] and the paper's
ΠTP-complete problem (Theorem 5).

Two independent implementations are provided -- :func:`breadth_depth_search`
(stack-based, used everywhere) and :func:`breadth_depth_search_reference`
(event-queue based) -- so property tests can cross-check them.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Set

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import GraphError
from repro.graphs.graph import _BaseGraph

__all__ = [
    "bfs_order",
    "dfs_order",
    "breadth_depth_search",
    "breadth_depth_search_reference",
    "reachable_from",
    "is_reachable",
]


def breadth_depth_search(
    graph: _BaseGraph,
    start: Optional[int] = None,
    tracker: Optional[CostTracker] = None,
) -> List[int]:
    """Visit order of the breadth-depth search induced by the numbering.

    A node is *visited* when it is first reached (the moment Example 5's
    list M records).  The search starts at ``start`` (default: vertex 0) and,
    when the stack runs dry with unvisited vertices remaining, restarts at
    the smallest-numbered unvisited vertex, so the order is total.

    One cost unit is charged per scanned adjacency entry and per stack
    operation: a full run is Theta(n + m), the PTIME bound the preprocessing
    step of Example 5 pays once.
    """
    tracker = ensure_tracker(tracker)
    n = graph.n
    if start is not None and not 0 <= start < n:
        raise GraphError(f"start vertex {start} out of range")
    visited = [False] * n
    order: List[int] = []
    stack: List[int] = []

    def expand(node: int) -> None:
        """Visit all fresh neighbors of ``node``; push them in reverse order."""
        fresh: List[int] = []
        for neighbor in graph.neighbors(node):  # sorted = numbering order
            tracker.tick(1)
            if not visited[neighbor]:
                visited[neighbor] = True
                order.append(neighbor)
                fresh.append(neighbor)
        for neighbor in reversed(fresh):
            tracker.tick(1)
            stack.append(neighbor)

    roots = [start] if start is not None else []
    roots.extend(v for v in range(n) if start is None or v != start)
    for root in roots:
        tracker.tick(1)
        if visited[root]:
            continue
        visited[root] = True
        order.append(root)
        expand(root)
        while stack:
            tracker.tick(1)
            current = stack.pop()
            expand(current)
        if start is not None:
            # Caller asked for the component of `start` only when the graph
            # is connected from it; continue the numbering order regardless
            # to keep the order total, matching the default behaviour.
            continue
    return order


def breadth_depth_search_reference(graph: _BaseGraph) -> List[int]:
    """Independent BDS implementation for cross-checking (tests only).

    Uses an explicit agenda of "expansion events" rather than interleaving
    visit/expand in one loop; intentionally structured differently from
    :func:`breadth_depth_search`.
    """
    n = graph.n
    visited: Set[int] = set()
    order: List[int] = []
    for root in range(n):
        if root in visited:
            continue
        visited.add(root)
        order.append(root)
        agenda = deque([root])  # nodes awaiting expansion, LIFO at the left
        while agenda:
            node = agenda.popleft()
            fresh = [w for w in graph.neighbors(node) if w not in visited]
            for w in fresh:
                visited.add(w)
                order.append(w)
            # Continue from the smallest fresh neighbor first: push the fresh
            # nodes to the front, keeping their ascending order.
            for w in reversed(fresh):
                agenda.appendleft(w)
    return order


def bfs_order(
    graph: _BaseGraph,
    start: int = 0,
    tracker: Optional[CostTracker] = None,
) -> List[int]:
    """Plain BFS visit order from ``start`` (neighbors in numbering order)."""
    tracker = ensure_tracker(tracker)
    graph.neighbors(start)  # vertex check
    visited = [False] * graph.n
    visited[start] = True
    order = [start]
    queue = deque([start])
    while queue:
        node = queue.popleft()
        tracker.tick(1)
        for neighbor in graph.neighbors(node):
            tracker.tick(1)
            if not visited[neighbor]:
                visited[neighbor] = True
                order.append(neighbor)
                queue.append(neighbor)
    return order


def dfs_order(
    graph: _BaseGraph,
    start: int = 0,
    tracker: Optional[CostTracker] = None,
) -> List[int]:
    """Iterative lexicographic DFS preorder from ``start``."""
    tracker = ensure_tracker(tracker)
    graph.neighbors(start)  # vertex check
    visited = [False] * graph.n
    order: List[int] = []
    stack: List[int] = [start]
    while stack:
        node = stack.pop()
        tracker.tick(1)
        if visited[node]:
            continue
        visited[node] = True
        order.append(node)
        for neighbor in reversed(graph.neighbors(node)):
            tracker.tick(1)
            if not visited[neighbor]:
                stack.append(neighbor)
    return order


def reachable_from(
    graph: _BaseGraph,
    source: int,
    tracker: Optional[CostTracker] = None,
) -> Set[int]:
    """The set of vertices reachable from ``source`` (BFS, Theta(n + m))."""
    return set(bfs_order(graph, source, tracker))


def is_reachable(
    graph: _BaseGraph,
    source: int,
    target: int,
    tracker: Optional[CostTracker] = None,
) -> bool:
    """Per-query BFS reachability -- the no-preprocessing GAP baseline
    (paper, Example 3)."""
    tracker = ensure_tracker(tracker)
    graph.neighbors(target)  # vertex check
    if source == target:
        tracker.tick(1)
        return True
    visited = [False] * graph.n
    visited[source] = True
    queue = deque([source])
    while queue:
        node = queue.popleft()
        tracker.tick(1)
        for neighbor in graph.neighbors(node):
            tracker.tick(1)
            if neighbor == target:
                return True
            if not visited[neighbor]:
                visited[neighbor] = True
                queue.append(neighbor)
    return False


def visit_position(order: Sequence[int]) -> List[int]:
    """Inverse of a visit order: ``position[v]`` = index of v in the order.

    This is exactly the preprocessed structure of Example 5 (the list M,
    inverted for O(1)/O(log) position lookups).
    """
    position = [-1] * len(order)
    for index, vertex in enumerate(order):
        position[vertex] = index
    return position
