"""Deterministic random graph generators for workloads and property tests.

All generators take an explicit ``random.Random`` so workloads are
reproducible from a seed, per the certification harness's contract.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.graphs.graph import Digraph, Graph

__all__ = [
    "gnm_graph",
    "gnm_digraph",
    "random_connected_graph",
    "random_tree",
    "random_dag",
    "layered_dag",
    "social_digraph",
]


def gnm_graph(n: int, m: int, rng: random.Random) -> Graph:
    """Undirected G(n, m): m distinct edges sampled uniformly."""
    graph = Graph(n)
    seen = set()
    max_edges = n * (n - 1) // 2
    m = min(m, max_edges)
    while len(seen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge not in seen:
            seen.add(edge)
            graph.add_edge(*edge)
    return graph


def gnm_digraph(n: int, m: int, rng: random.Random, *, allow_cycles: bool = True) -> Digraph:
    """Directed G(n, m); with ``allow_cycles=False`` only forward edges
    (u < v) are drawn, so the result is a DAG under the identity numbering."""
    graph = Digraph(n)
    seen = set()
    max_edges = n * (n - 1) if allow_cycles else n * (n - 1) // 2
    m = min(m, max_edges)
    while len(seen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if not allow_cycles and u > v:
            u, v = v, u
        if (u, v) not in seen:
            seen.add((u, v))
            graph.add_edge(u, v)
    return graph


def random_tree(n: int, rng: random.Random) -> Graph:
    """Uniform random labelled tree-ish: each vertex v > 0 attaches to a
    uniformly random earlier vertex (a random recursive tree)."""
    tree = Graph(n)
    for v in range(1, n):
        parent = rng.randrange(v)
        tree.add_edge(parent, v)
    return tree


def random_connected_graph(n: int, extra_edges: int, rng: random.Random) -> Graph:
    """A random recursive tree plus ``extra_edges`` random chords."""
    graph = random_tree(n, rng)
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 20 * (extra_edges + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def random_dag(n: int, m: int, rng: random.Random) -> Digraph:
    """A DAG with edges oriented low-to-high vertex number."""
    return gnm_digraph(n, m, rng, allow_cycles=False)


def layered_dag(
    layers: int,
    width: int,
    rng: random.Random,
    *,
    fanin: int = 2,
) -> Digraph:
    """A layered DAG: every non-source vertex draws ``fanin`` predecessors
    from the previous layer.  Mirrors layered Boolean circuits."""
    n = layers * width
    graph = Digraph(n)
    for layer in range(1, layers):
        for slot in range(width):
            vertex = layer * width + slot
            for _ in range(fanin):
                predecessor = (layer - 1) * width + rng.randrange(width)
                if not graph.has_edge(predecessor, vertex):
                    graph.add_edge(predecessor, vertex)
    return graph


def social_digraph(
    n: int,
    rng: random.Random,
    *,
    out_degree: int = 4,
) -> Digraph:
    """A preferential-attachment-flavoured digraph standing in for the social
    networks of the query-preserving-compression case study (Section 4(5)).

    Vertex v follows ``out_degree`` targets biased toward high-degree early
    vertices; a fraction of back-edges creates non-trivial SCCs so that
    condensation has something to contract.
    """
    graph = Digraph(n)
    # Popularity grows as vertices acquire in-edges; start everyone at 1.
    popularity: List[int] = [1] * n
    total = n
    for v in range(1, n):
        targets = set()
        for _ in range(min(out_degree, v)):
            # Roulette-wheel over current popularity of earlier vertices.
            pick = rng.randrange(total)
            accumulated = 0
            chosen = 0
            for u in range(v):
                accumulated += popularity[u]
                if pick < accumulated:
                    chosen = u
                    break
            targets.add(chosen)
        for u in targets:
            graph.add_edge(v, u)
            popularity[u] += 1
            total += 1
        # Occasionally reciprocate to create cycles (SCCs to compress).
        if v >= 2 and rng.random() < 0.3:
            u = rng.randrange(v)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
    return graph


def random_vertex_pairs(
    n: int,
    count: int,
    rng: random.Random,
    *,
    distinct: bool = True,
) -> List[Tuple[int, int]]:
    """Query workload helper: ``count`` (u, v) pairs over ``range(n)``."""
    pairs = []
    for _ in range(count):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if distinct and n > 1:
            while v == u:
                v = rng.randrange(n)
        pairs.append((u, v))
    return pairs
