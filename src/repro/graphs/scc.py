"""Strongly connected components and condensation (iterative Tarjan).

Used by the query-preserving compression of Section 4(5): contracting each
SCC to one vertex preserves all reachability answers, and the resulting
condensation is a DAG on which further reachability-equivalence merging is
performed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.graphs.graph import Digraph

__all__ = ["strongly_connected_components", "condensation", "topological_order", "is_dag"]


def strongly_connected_components(
    graph: Digraph,
    tracker: CostTracker | None = None,
) -> List[List[int]]:
    """Tarjan's algorithm, iterative (safe for deep graphs).

    Returns components in reverse topological order of the condensation
    (a Tarjan invariant the condensation builder relies on).
    """
    tracker = ensure_tracker(tracker)
    n = graph.n
    index_counter = 0
    indices = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[List[int]] = []

    for root in range(n):
        if indices[root] != -1:
            continue
        # Each frame: (vertex, iterator position into its adjacency).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            vertex, position = work.pop()
            if position == 0:
                indices[vertex] = lowlink[vertex] = index_counter
                index_counter += 1
                stack.append(vertex)
                on_stack[vertex] = True
            neighbors = graph.neighbors(vertex)
            recursed = False
            while position < len(neighbors):
                successor = neighbors[position]
                tracker.tick(1)
                position += 1
                if indices[successor] == -1:
                    work.append((vertex, position))
                    work.append((successor, 0))
                    recursed = True
                    break
                if on_stack[successor]:
                    lowlink[vertex] = min(lowlink[vertex], indices[successor])
            if recursed:
                continue
            if lowlink[vertex] == indices[vertex]:
                component: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == vertex:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
    return components


def condensation(
    graph: Digraph,
    tracker: CostTracker | None = None,
) -> Tuple[Digraph, List[int]]:
    """Contract SCCs: returns (condensed DAG, vertex -> component id map).

    Component ids are assigned in *topological* order of the condensation
    (sources first), so downstream DAG algorithms may use ``range(n)`` as a
    topological numbering.
    """
    tracker = ensure_tracker(tracker)
    components = strongly_connected_components(graph, tracker)
    # Tarjan emits components in reverse topological order; flip them.
    components.reverse()
    component_of = [-1] * graph.n
    for component_id, members in enumerate(components):
        for vertex in members:
            component_of[vertex] = component_id
    condensed = Digraph(len(components))
    seen: set = set()
    for u, v in graph.edges():
        tracker.tick(1)
        cu, cv = component_of[u], component_of[v]
        if cu != cv and (cu, cv) not in seen:
            seen.add((cu, cv))
            condensed.add_edge(cu, cv)
    return condensed, component_of


def topological_order(graph: Digraph, tracker: CostTracker | None = None) -> List[int]:
    """Kahn's algorithm; raises GraphError if the digraph has a cycle."""
    from repro.core.errors import GraphError

    tracker = ensure_tracker(tracker)
    indegree = [0] * graph.n
    for _, v in graph.edges():
        tracker.tick(1)
        indegree[v] += 1
    # A heap keeps the order deterministic (smallest-vertex-first).
    import heapq

    frontier = [v for v in range(graph.n) if indegree[v] == 0]
    heapq.heapify(frontier)
    order: List[int] = []
    while frontier:
        vertex = heapq.heappop(frontier)
        tracker.tick(1)
        order.append(vertex)
        for successor in graph.neighbors(vertex):
            tracker.tick(1)
            indegree[successor] -= 1
            if indegree[successor] == 0:
                heapq.heappush(frontier, successor)
    if len(order) != graph.n:
        raise GraphError("digraph has a cycle; no topological order exists")
    return order


def is_dag(graph: Digraph) -> bool:
    from repro.core.errors import GraphError

    try:
        topological_order(graph)
    except GraphError:
        return False
    return True
