"""Alternating graph accessibility (AGAP): a second P-complete case study.

AGAP is the classical P-complete cousin of GAP ([21]; the paper's Example 3
territory): vertices are *existential* (OR) or *universal* (AND), and ``s``
alternating-reaches ``t`` iff

* ``s == t``, or
* ``s`` is existential and **some** successor alternating-reaches ``t``, or
* ``s`` is universal, has at least one successor, and **all** successors
  alternating-reach ``t``.

Like BDS and CVP, AGAP is P-complete yet *can be made Pi-tractable* by the
graph-as-data factorization: a PTIME backward fixpoint per target vertex
precomputes every answer, after which queries are O(1) bit probes.  This
module supplies the substrate: the labelled digraph, the per-query fixpoint
(the naive baseline) and the all-targets preprocessing.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional, Sequence

from repro.core.cost import CostTracker, ensure_tracker
from repro.core.errors import GraphError
from repro.graphs.graph import Digraph

__all__ = [
    "AlternatingDigraph",
    "alternating_reachable",
    "AlternatingReachabilityIndex",
    "random_alternating_digraph",
]


class AlternatingDigraph:
    """A digraph whose vertices are existential (False) or universal (True)."""

    def __init__(self, graph: Digraph, universal: Sequence[bool]):
        if len(universal) != graph.n:
            raise GraphError("universal-label vector must cover every vertex")
        self.graph = graph
        self.universal = list(universal)

    @property
    def n(self) -> int:
        return self.graph.n

    def successors(self, vertex: int) -> Sequence[int]:
        return self.graph.neighbors(vertex)

    def is_universal(self, vertex: int) -> bool:
        return self.universal[vertex]

    def encode(self) -> str:
        from repro.core import alphabet

        return alphabet.encode(
            (
                self.graph.n,
                tuple(sorted(self.graph.edges())),
                tuple(self.universal),
            )
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AlternatingDigraph):
            return NotImplemented
        return self.graph == other.graph and self.universal == other.universal

    def __repr__(self) -> str:
        return (
            f"AlternatingDigraph(n={self.n}, m={self.graph.edge_count}, "
            f"universal={sum(self.universal)})"
        )


def _winning_set(agraph: AlternatingDigraph, target: int, tracker: CostTracker) -> List[bool]:
    """All vertices that alternating-reach ``target``: backward induction.

    Queue-based fixpoint with per-vertex pending-successor counters -- the
    standard O(n + m) attractor computation from game theory.
    """
    n = agraph.n
    reverse: List[List[int]] = [[] for _ in range(n)]
    out_degree = [0] * n
    for u, v in agraph.graph.edges():
        tracker.tick(1)
        reverse[v].append(u)
        out_degree[u] += 1

    accessible = [False] * n
    # For universal vertices: number of successors not yet known accessible.
    pending = list(out_degree)
    accessible[target] = True
    queue = deque([target])
    while queue:
        vertex = queue.popleft()
        tracker.tick(1)
        for predecessor in reverse[vertex]:
            tracker.tick(1)
            if accessible[predecessor]:
                continue
            if agraph.is_universal(predecessor):
                pending[predecessor] -= 1
                if pending[predecessor] == 0 and out_degree[predecessor] > 0:
                    accessible[predecessor] = True
                    queue.append(predecessor)
            else:
                accessible[predecessor] = True
                queue.append(predecessor)
    return accessible


def alternating_reachable(
    agraph: AlternatingDigraph,
    source: int,
    target: int,
    tracker: Optional[CostTracker] = None,
) -> bool:
    """Per-query fixpoint: the Theta(n + m) no-preprocessing baseline."""
    tracker = ensure_tracker(tracker)
    if not (0 <= source < agraph.n and 0 <= target < agraph.n):
        raise GraphError(f"vertex out of range: {source}, {target}")
    return _winning_set(agraph, target, tracker)[source]


class AlternatingReachabilityIndex:
    """All-pairs alternating reachability: PTIME build, O(1) queries.

    One backward fixpoint per target -- O(n(n + m)) preprocessing, within
    the PTIME budget of Definition 1 -- stored as per-target bitsets.
    """

    def __init__(self, agraph: AlternatingDigraph, tracker: Optional[CostTracker] = None):
        tracker = ensure_tracker(tracker)
        self.n = agraph.n
        self._winning: List[int] = []
        for target in range(agraph.n):
            bits = 0
            for vertex, ok in enumerate(_winning_set(agraph, target, tracker)):
                if ok:
                    bits |= 1 << vertex
            self._winning.append(bits)

    def reachable(self, source: int, target: int, tracker: Optional[CostTracker] = None) -> bool:
        ensure_tracker(tracker).tick(1)
        if not (0 <= source < self.n and 0 <= target < self.n):
            raise GraphError(f"vertex out of range: {source}, {target}")
        return bool(self._winning[target] >> source & 1)


def random_alternating_digraph(
    n: int,
    m: int,
    rng: random.Random,
    *,
    universal_fraction: float = 0.4,
) -> AlternatingDigraph:
    """A random labelled digraph with a mixed accessible/inaccessible profile."""
    from repro.graphs.generators import gnm_digraph

    graph = gnm_digraph(n, m, rng)
    universal = [rng.random() < universal_fraction for _ in range(n)]
    return AlternatingDigraph(graph, universal)
