"""Worker processes of the serving front: one ``QueryEngine`` each.

A worker is a child process running :func:`worker_main`: it builds a
full-catalog engine against the *shared* on-disk
:class:`~repro.service.artifacts.ArtifactStore` directory, then drains its
inbox queue -- decode a request body, serve it through the dataset-first
engine surface, encode the response, put it on the shared outbox.  Because
artifacts are content-addressed, workers are cache-coherent for free: the
first worker to attach a dataset builds and persists the Pi-structures,
every later worker (and every restarted worker) loads the same bytes by
key.  Nothing is shared in memory; the store directory *is* the
coherence protocol.

The request-handling logic lives in :func:`handle_request` /
:func:`handle_frame`, plain functions over an engine -- the process loop
around them is deliberately thin, so the protocol semantics are unit
tested in-process without spawning anything.

Queue message shapes (all picklable):

* inbox:  ``("req", rid, header, body_bytes, codec)`` or ``None`` to stop
* outbox: ``("ready", worker_id, generation)`` on startup, then
  ``("res", worker_id, generation, rid, header, body_bytes, codec)``
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

from repro.core.errors import (
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    ServiceError,
)
from repro.service import faults
from repro.service.faults import DegradedAnswer, FaultPlan
from repro.service.frontend import protocol

__all__ = ["handle_request", "handle_frame", "worker_main"]


def check_deadline(header: Dict[str, Any]) -> None:
    """Refuse work whose budget expired while the frame sat in the inbox.

    The supervisor stamps ``deadline_mono`` (an absolute
    ``time.monotonic()`` instant -- CLOCK_MONOTONIC is system-wide, so
    parent and child processes share it) next to the client's original
    ``deadline_ms`` budget.  A worker that starts an already-expired serve
    would burn CPU on an answer nobody is waiting for; shedding it here is
    the cheapest point in the pipeline.
    """
    deadline_mono = header.get("deadline_mono")
    if deadline_mono is None:
        return
    now = time.monotonic()
    if now < deadline_mono:
        return
    budget_ms = header.get("deadline_ms")
    overshoot_ms = (now - deadline_mono) * 1000.0
    elapsed_ms = (
        budget_ms + overshoot_ms if isinstance(budget_ms, (int, float)) else None
    )
    raise DeadlineExceededError(
        f"request {header.get('op')!r} expired before serving started "
        f"(budget {budget_ms} ms, {overshoot_ms:.1f} ms past deadline)",
        op=header.get("op"),
        dataset=header.get("dataset"),
        elapsed_ms=elapsed_ms,
        budget_ms=budget_ms if isinstance(budget_ms, (int, float)) else None,
    )


def _coerce_answer(answer: Any) -> Any:
    """Kernel answers can be numpy truthiness; the wire speaks bool.

    :class:`~repro.service.faults.DegradedAnswer` passes through unchanged
    -- its ``partial``/``reason`` payload is exactly what must survive the
    wire.
    """
    if isinstance(answer, DegradedAnswer):
        return answer
    if isinstance(answer, (list, tuple)):
        return [_coerce_answer(item) for item in answer]
    if isinstance(answer, bool) or answer is None:
        return answer
    if isinstance(answer, (int, float, str)):
        return answer
    try:
        return bool(answer)
    except Exception as exc:  # pragma: no cover - defensive
        raise ProtocolError(f"unencodable answer {type(answer).__name__}") from exc


def handle_request(engine: Any, header: Dict[str, Any], params: Any) -> Any:
    """Serve one decoded request against ``engine``; raises on error.

    ``header`` carries routing identity (``op``, ``dataset``); ``params``
    is the decoded body.  This is the entire op surface of the protocol.
    """
    op = header.get("op")
    name = header.get("dataset")
    if op == "ping":
        return "pong"
    if op == "attach":
        ds = engine.attach(
            params["name"],
            params["data"],
            kinds=params.get("kinds"),
            shards=params.get("shards", 1),
            mutable=params.get("mutable", False),
        )
        return {
            "name": ds.name,
            "kinds": list(ds.kinds),
            "mutable": ds.mutable,
            "version": ds.version,
        }
    if name is None:
        raise ProtocolError(f"op {op!r} requires a dataset in the frame header")
    ds = engine.dataset(name)
    if op == "query":
        kind = params["kind"]
        if faults._PLAN is not None:
            faults.on_worker_serve(kind)
        return _coerce_answer(ds.query(kind, params["query"]))
    if op == "query_batch":
        pairs = [(kind, query) for kind, query in params["pairs"]]
        if faults._PLAN is not None:
            faults.on_worker_serve(pairs[0][0] if pairs else None)
        # concurrent=False: parallelism comes from sibling worker
        # *processes*; a thread fan-out inside one GIL buys nothing here.
        return _coerce_answer(ds.query_batch(pairs, concurrent=False))
    if op == "apply_changes":
        log = ds.apply_changes(params["changes"])
        return {
            "version": ds.version,
            "changed": log.changed,
            "input_changes": log.input_changes,
            "output_changes": log.output_changes,
        }
    if op == "stats":
        return ds.stats()
    if op == "snapshot":
        return {"data": ds.dataset(), "version": ds.version}
    if op == "detach":
        ds.detach()
        return True
    raise ProtocolError(f"unknown op {op!r}; one of {sorted(protocol.REQUEST_OPS)}")


def handle_frame(
    engine: Any, header: Dict[str, Any], body: bytes, codec: int
) -> Tuple[Dict[str, Any], bytes]:
    """Decode, serve, encode: one request frame -> one response frame.

    Library errors (and worker bugs) become structured error frames -- the
    loop around this never dies on a bad request, only on a injected
    ``worker.serve`` crash, which is the point of that scenario.
    """
    rid = header.get("rid")
    try:
        check_deadline(header)
        params = protocol.decode_body(body, codec) if body else None
        value = handle_request(engine, header, params)
        response_header = {"rid": rid, "ok": True, "op": header.get("op")}
        return response_header, protocol.encode_body(value, codec)
    except ReproError as exc:
        payload = protocol.error_payload(exc)
    except Exception as exc:
        # A worker bug must surface as a structured error, not a hung
        # request; raise_remote maps unknown names to ServiceError.
        payload = protocol.error_payload(exc)
    # ``etype`` lets the supervisor classify failures (deadline expiries
    # feed circuit breakers and counters) without decoding the body.
    response_header = {"rid": rid, "ok": False, "op": header.get("op"),
                       "etype": payload["type"]}
    return response_header, protocol.encode_body(payload, codec)


def _build_engine(settings: Dict[str, Any]) -> Any:
    from repro.catalog import build_query_engine
    from repro.service.artifacts import ArtifactStore

    opts = dict(settings.get("engine_opts") or {})
    store_root = settings.get("store_root")
    if store_root is not None:
        opts["store"] = ArtifactStore(store_root)
    return build_query_engine(**opts)


def _install_plan(plan_spec: Optional[Tuple[Any, ...]]) -> None:
    if plan_spec is None:
        return
    specs, seed, policy, name = plan_spec
    faults.install_fault_plan(
        FaultPlan(specs, seed=seed, policy=policy, name=name)
    )


def worker_main(
    worker_id: int,
    generation: int,
    inbox: Any,
    outbox: Any,
    settings: Dict[str, Any],
) -> None:  # pragma: no cover - runs in a child process
    """Process entry point: build the engine, announce readiness, drain.

    ``settings`` is a picklable dict: ``store_root``, ``engine_opts``, and
    optionally ``fault_plan`` as a ``(specs, seed, policy, name)`` tuple --
    :class:`~repro.service.faults.FaultPlan` itself holds a lock and does
    not pickle, so it is rebuilt here, giving the worker its own seeded
    clock.
    """
    _install_plan(settings.get("fault_plan"))
    engine = _build_engine(settings)
    outbox.put(("ready", worker_id, generation))
    try:
        while True:
            message = inbox.get()
            if message is None:
                break
            _tag, rid, header, body, codec = message
            response_header, response_body = handle_frame(engine, header, body, codec)
            outbox.put(
                ("res", worker_id, generation, rid, response_header, response_body, codec)
            )
    finally:
        try:
            engine.close()
        except ServiceError:
            pass
