"""The asyncio TCP gateway and the one-call serving-front harness.

The :class:`Gateway` is deliberately thin: it reads length-prefixed
frames, admits or sheds them, and relays the *opaque* body bytes to the
backend (a :class:`~repro.service.frontend.supervisor.Supervisor`) -- it
never decodes a request body, so frame decode cost lands on the worker
processes, in parallel.

Admission control and backpressure, per dataset:

* ``max_inflight_per_dataset`` requests may be dispatched concurrently
  (an :class:`asyncio.Semaphore` per dataset name);
* up to ``queue_watermark`` more may *wait* for a permit;
* anything past the watermark is rejected immediately with a structured
  :class:`~repro.core.errors.OverloadedError` frame.  The gateway never
  buffers unboundedly -- a slow pool surfaces as explicit ``Overloaded``
  responses, not as silent queue growth and timeout collapse.

Deadline propagation: a frame may carry a relative ``deadline_ms``
budget (protocol v2).  The gateway stamps the arrival instant, rejects
already-expired work *before* admission with a typed
:class:`~repro.core.errors.DeadlineExceededError` (counter
``deadline_expired``), re-checks after the permit wait (time spent
queueing is part of the budget), and forwards only the *remaining*
budget downstream -- so the supervisor and workers each see an honest
number.

:class:`ServingFront` assembles the whole front -- supervisor + worker
pool + gateway thread -- behind a context manager::

    with ServingFront(workers=2) as front:
        client = RemoteClient(*front.address)
        ...
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.errors import (
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    ReproError,
    ServiceError,
)
from repro.service.frontend import protocol
from repro.service.frontend.supervisor import Supervisor

__all__ = ["GatewayConfig", "Gateway", "ServingFront"]


@dataclass(frozen=True)
class GatewayConfig:
    """Admission and framing knobs (see docs/architecture.md,
    "The serving front")."""

    #: Concurrent dispatches allowed per dataset.
    max_inflight_per_dataset: int = 64
    #: Requests allowed to *wait* for a permit, per dataset, before the
    #: gateway starts shedding with ``Overloaded``.
    queue_watermark: int = 128
    #: Hard frame-size ceiling, checked before the body is read.
    max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES


class _Admission:
    """Per-dataset permit state: ``pending`` counts dispatched + waiting."""

    __slots__ = ("semaphore", "pending")

    def __init__(self, permits: int):
        self.semaphore = asyncio.Semaphore(permits)
        self.pending = 0


class Gateway:
    """Frame relay with admission control over a supervisor backend.

    The backend contract is three methods -- ``submit(header, body, codec,
    on_done)`` (``on_done`` may fire from any thread), ``health()`` and
    ``close()`` -- which is exactly the :class:`Supervisor` surface, and
    small enough that backpressure tests plug in a stub that never answers.
    """

    def __init__(self, backend: Any, config: Optional[GatewayConfig] = None):
        self._backend = backend
        self.config = config or GatewayConfig()
        self._server: Optional[asyncio.AbstractServer] = None
        self._admission: Dict[Optional[str], _Admission] = {}
        self.port: Optional[int] = None
        self.counters: Dict[str, int] = {
            "connections": 0,
            "frames": 0,
            "overloaded_rejections": 0,
            "protocol_errors": 0,
            "deadline_expired": 0,
        }

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.counters["connections"] += 1
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    frame = await protocol.read_frame_async(
                        reader, max_frame_bytes=self.config.max_frame_bytes
                    )
                except ProtocolError as exc:
                    # A malformed or oversized frame poisons the stream
                    # position: answer structurally, then hang up.
                    self.counters["protocol_errors"] += 1
                    await self._write_error(writer, write_lock, None, None, exc)
                    break
                if frame is None:
                    break
                header, body, codec = frame
                arrival = time.monotonic()
                self.counters["frames"] += 1
                op = header.get("op")
                rid = header.get("rid")
                if op not in protocol.REQUEST_OPS:
                    self.counters["protocol_errors"] += 1
                    await self._write_error(
                        writer, write_lock, rid, codec,
                        ProtocolError(f"unknown op {op!r}"),
                    )
                    continue
                deadline_ms = header.get("deadline_ms")
                if deadline_ms is not None and not isinstance(
                    deadline_ms, (int, float)
                ):
                    self.counters["protocol_errors"] += 1
                    await self._write_error(
                        writer, write_lock, rid, codec,
                        ProtocolError(
                            f"deadline_ms must be a number, "
                            f"got {type(deadline_ms).__name__}"
                        ),
                    )
                    continue
                if deadline_ms is not None and deadline_ms <= 0:
                    # Already expired on arrival: shed before admission,
                    # the cheapest point to refuse doomed work.
                    self.counters["deadline_expired"] += 1
                    await self._write_error(
                        writer, write_lock, rid, codec,
                        DeadlineExceededError(
                            f"request {op!r} arrived with an exhausted "
                            f"budget ({deadline_ms} ms remaining)",
                            op=op, dataset=header.get("dataset"),
                            elapsed_ms=0.0, budget_ms=float(deadline_ms),
                        ),
                    )
                    continue
                state = self._admission_for(header.get("dataset"))
                limit = (self.config.max_inflight_per_dataset
                         + self.config.queue_watermark)
                if state.pending >= limit:
                    self.counters["overloaded_rejections"] += 1
                    await self._write_error(
                        writer, write_lock, rid, codec,
                        OverloadedError(
                            f"dataset {header.get('dataset')!r} at admission "
                            f"limit ({limit} pending); back off and retry"
                        ),
                    )
                    continue
                state.pending += 1
                asyncio.ensure_future(
                    self._process(state, header, body, codec, writer,
                                  write_lock, arrival)
                )
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            # Shutdown path: _drain() cancels connection tasks.  Finish
            # normally so the streams machinery's done-callback does not
            # log the cancellation as an unhandled exception.
            pass
        finally:
            writer.close()

    def _admission_for(self, dataset: Optional[str]) -> _Admission:
        state = self._admission.get(dataset)
        if state is None:
            state = _Admission(self.config.max_inflight_per_dataset)
            self._admission[dataset] = state
        return state

    async def _process(self, state: _Admission, header: Dict[str, Any],
                       body: bytes, codec: int, writer: asyncio.StreamWriter,
                       write_lock: asyncio.Lock,
                       arrival: Optional[float] = None) -> None:
        deadline_ms = header.get("deadline_ms")

        async def shed_expired(waited_ms: float) -> None:
            self.counters["deadline_expired"] += 1
            await self._write_error(
                writer, write_lock, header.get("rid"), codec,
                DeadlineExceededError(
                    f"request {header.get('op')!r} expired waiting for "
                    f"an admission permit",
                    op=header.get("op"),
                    dataset=header.get("dataset"),
                    elapsed_ms=waited_ms,
                    budget_ms=float(deadline_ms),
                ),
            )

        try:
            if deadline_ms is not None:
                # The permit wait itself is bounded by the budget: a
                # request queued behind a saturated dataset is shed at
                # its deadline, never parked indefinitely.
                try:
                    await asyncio.wait_for(
                        state.semaphore.acquire(), timeout=deadline_ms / 1000.0
                    )
                except asyncio.TimeoutError:
                    await shed_expired((time.monotonic() - arrival) * 1000.0
                                       if arrival is not None else deadline_ms)
                    return
            else:
                await state.semaphore.acquire()
            try:
                if deadline_ms is not None and arrival is not None:
                    # The permit wait spent part of the budget; forward
                    # only what remains, or shed if nothing does.
                    waited_ms = (time.monotonic() - arrival) * 1000.0
                    remaining = deadline_ms - waited_ms
                    if remaining <= 0:
                        await shed_expired(waited_ms)
                        return
                    header["deadline_ms"] = remaining
                try:
                    rheader, rbody, rcodec = await self._dispatch(header, body, codec)
                except ReproError as exc:
                    await self._write_error(
                        writer, write_lock, header.get("rid"), codec, exc
                    )
                    return
            finally:
                state.semaphore.release()
            async with write_lock:
                try:
                    writer.write(protocol.pack_frame(
                        rheader, body_bytes=rbody, codec=rcodec,
                        max_frame_bytes=self.config.max_frame_bytes,
                    ))
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                    pass
        finally:
            state.pending -= 1

    async def _dispatch(self, header: Dict[str, Any], body: bytes,
                        codec: int) -> Tuple[Dict[str, Any], bytes, int]:
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Tuple[Dict[str, Any], bytes, int]]" = loop.create_future()

        def on_done(rheader: Dict[str, Any], rbody: bytes, rcodec: int) -> None:
            loop.call_soon_threadsafe(_resolve, (rheader, rbody, rcodec))

        def _resolve(result: Tuple[Dict[str, Any], bytes, int]) -> None:
            if not future.done():
                future.set_result(result)

        self._backend.submit(header, body, codec, on_done)
        return await future

    async def _write_error(self, writer: asyncio.StreamWriter,
                           write_lock: asyncio.Lock, rid: Any,
                           codec: Optional[int], exc: BaseException) -> None:
        codec = protocol.CODEC_JSON if codec is None else codec
        header = {"rid": rid, "ok": False, "op": None}
        body = protocol.encode_body(protocol.error_payload(exc), codec)
        async with write_lock:
            try:
                writer.write(protocol.pack_frame(header, body_bytes=body, codec=codec))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def close(self) -> None:
        if self._server is not None:
            self._server.close()


class ServingFront:
    """Gateway + supervisor + N worker processes, one context manager.

    All constructor arguments forward to :class:`Supervisor` (pool shape,
    shared ``store_root``, fault plan) and :class:`GatewayConfig`
    (admission knobs).  ``address`` is the ``(host, port)`` the gateway
    actually bound -- port 0 picks a free one.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        store_root: Optional[str] = None,
        engine_opts: Optional[Dict[str, Any]] = None,
        config: Optional[GatewayConfig] = None,
        policy: Optional[Any] = None,
        fault_plan: Optional[Any] = None,
        fault_workers: Optional[Any] = None,
        start_method: str = "spawn",
        max_queue_per_worker: int = 2048,
        hedge_delay_ms: Optional[float] = 50.0,
        journal_checkpoint_batches: Optional[int] = 64,
    ):
        self._host = host
        self._port = port
        self.supervisor = Supervisor(
            workers,
            store_root=store_root,
            engine_opts=engine_opts,
            policy=policy,
            fault_plan=fault_plan,
            fault_workers=fault_workers,
            start_method=start_method,
            max_queue_per_worker=max_queue_per_worker,
            hedge_delay_ms=hedge_delay_ms,
            journal_checkpoint_batches=journal_checkpoint_batches,
        )
        self.gateway = Gateway(self.supervisor, config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._running = False

    @property
    def address(self) -> Tuple[str, int]:
        if self.gateway.port is None:
            raise ServiceError("serving front is not started")
        return (self._host, self.gateway.port)

    def start(self) -> "ServingFront":
        if self._running:
            raise ServiceError("serving front already started")
        self.supervisor.start()
        self._thread = threading.Thread(
            target=self._run_loop, name="frontend-gateway", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._start_error is not None:
            self.supervisor.close()
            raise ServiceError(
                f"gateway failed to start: {self._start_error}"
            ) from self._start_error
        if self.gateway.port is None:
            self.supervisor.close()
            raise ServiceError("gateway did not come up within 30s")
        self._running = True
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self.gateway.start(self._host, self._port))
        except BaseException as exc:  # pragma: no cover - bind failures
            self._start_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()

    async def _drain(self) -> None:
        # Stop accepting, then cancel what is mid-flight so every handler's
        # finally runs while the loop is still alive (no destroyed-task noise).
        self.gateway.close()
        tasks = [task for task in asyncio.all_tasks()
                 if task is not asyncio.current_task()]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def close(self) -> None:
        if self._running and self._loop is not None:
            loop = self._loop
            try:
                asyncio.run_coroutine_threadsafe(self._drain(), loop).result(
                    timeout=10
                )
            except Exception:  # pragma: no cover - best-effort drain
                pass
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10)
            self._running = False
        self.supervisor.close()

    def __enter__(self) -> "ServingFront":
        if not self._running:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
