"""Supervision of the worker pool: routing, crash detection, restarts.

The :class:`Supervisor` owns N worker processes (see
:mod:`repro.service.frontend.workers`) and is the single place requests
are routed:

*Per-dataset routing.*  Immutable datasets are attached on **every**
worker (the content-addressed store makes the 2nd..Nth attach a cheap
load, not a rebuild) and reads round-robin across healthy workers.
Mutable datasets are **homed** on exactly one worker -- versions advance
only there, so no stale replica can ever serve a read -- and the
supervisor keeps a journal of every *acknowledged* change batch.

*Crash detection and recovery.*  A monitor thread polls worker liveness.
When a worker dies: its in-flight reads are retried **once** on a healthy
worker; in-flight writes surface
:class:`~repro.core.errors.WorkerFailedError` (they may or may not have
applied -- retrying could double-apply, and answers must never be
silently wrong); mutable datasets homed there are re-homed by replaying
the attach frame plus the acknowledged journal onto a healthy worker
(inbox FIFO ordering guarantees replay lands before any rerouted
traffic); and the worker slot is restarted with exponential backoff
bounded by :class:`~repro.service.faults.RecoveryPolicy`
(``worker_restart_attempts`` / ``worker_restart_backoff_seconds`` -- the
PR 7 recovery vocabulary).  Restarted workers re-attach every immutable
dataset from the attach table and adopt any orphaned mutable homes.
Restarts never re-arm a fault plan: the ``dead-worker`` scenario models
one crash event, not a crashing binary.

Health counters (``health()``): ``worker_restarts``, ``crashes_detected``,
``retried_requests``, ``failed_requests``, ``rehomed_datasets``,
``workers_lost``, ``replay_errors``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_mod
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import (
    OverloadedError,
    ServiceError,
    WorkerFailedError,
)
from repro.service.faults import DEFAULT_POLICY, FaultPlan, RecoveryPolicy
from repro.service.frontend import protocol
from repro.service.frontend.workers import worker_main

__all__ = ["Supervisor"]

#: Ops safe to retry on another worker after a crash: pure reads.
_READ_OPS = frozenset({"query", "query_batch", "ping"})

#: Non-counter stats keys: identity, not additive.
_FIRST_KEYS = frozenset({"dataset", "mutable", "scheme", "shards", "hit_rate"})
_MAX_KEYS = frozenset({"version"})

_OnDone = Callable[[Dict[str, Any], bytes, int], None]


def _merge_stats(base: Dict[str, Any], other: Dict[str, Any]) -> None:
    """Fold one worker's stats snapshot into an aggregate, in place."""
    for key, value in other.items():
        if key not in base:
            base[key] = value
        elif isinstance(value, dict) and isinstance(base[key], dict):
            _merge_stats(base[key], value)
        elif isinstance(value, bool):
            pass
        elif isinstance(value, (int, float)) and isinstance(base[key], (int, float)):
            if key in _MAX_KEYS:
                base[key] = max(base[key], value)
            elif key not in _FIRST_KEYS:
                base[key] = base[key] + value


class _Pending:
    """One request in flight on one worker."""

    __slots__ = ("header", "body", "codec", "on_done", "worker_id", "op",
                 "dataset", "retried", "no_retry", "internal")

    def __init__(self, header, body, codec, on_done, worker_id, *,
                 no_retry=False, internal=False):
        self.header = header
        self.body = body
        self.codec = codec
        self.on_done = on_done
        self.worker_id = worker_id
        self.op = header.get("op")
        self.dataset = header.get("dataset")
        self.retried = False
        self.no_retry = no_retry
        self.internal = internal


class _Broadcast:
    """Aggregates N sub-responses into one; first error wins."""

    def __init__(self, expected: int, on_done: _OnDone,
                 combine: Optional[Callable[[List[Tuple[Dict[str, Any], bytes, int]]], Tuple[Dict[str, Any], bytes, int]]] = None):
        self._expected = expected
        self._on_done = on_done
        self._combine = combine
        self._lock = threading.Lock()
        self._responses: List[Tuple[Dict[str, Any], bytes, int]] = []
        self._error: Optional[Tuple[Dict[str, Any], bytes, int]] = None

    def collect(self, header: Dict[str, Any], body: bytes, codec: int) -> None:
        final = None
        with self._lock:
            if header.get("ok"):
                self._responses.append((header, body, codec))
            elif self._error is None:
                self._error = (header, body, codec)
            self._expected -= 1
            if self._expected == 0:
                if self._error is not None:
                    final = self._error
                elif self._combine is not None:
                    final = self._combine(self._responses)
                else:
                    final = self._responses[0]
        if final is not None:
            self._on_done(*final)


class _AttachEntry:
    """One attached dataset as the supervisor knows it."""

    __slots__ = ("header", "body", "codec", "mutable", "home", "journal")

    def __init__(self, header, body, codec, mutable, home):
        self.header = header
        self.body = body
        self.codec = codec
        self.mutable = mutable
        #: worker id homing a mutable dataset; None for immutable (served
        #: everywhere) or an orphaned mutable awaiting a healthy worker.
        self.home = home
        #: acknowledged apply_changes frames, replayed on re-home/restart.
        self.journal: List[Tuple[Dict[str, Any], bytes, int]] = []


class _WorkerHandle:
    __slots__ = ("worker_id", "generation", "process", "inbox", "healthy",
                 "lost", "restart_count", "next_restart_at")

    def __init__(self, worker_id, generation, process, inbox):
        self.worker_id = worker_id
        self.generation = generation
        self.process = process
        self.inbox = inbox
        self.healthy = True
        self.lost = False
        self.restart_count = 0
        self.next_restart_at = 0.0


class Supervisor:
    """The multi-process worker pool behind the gateway.

    ``fault_plan`` (a :class:`~repro.service.faults.FaultPlan` or the
    picklable ``(specs, seed, policy, name)`` tuple) ships to the workers
    named in ``fault_workers`` (default: all) and is rebuilt inside each,
    giving every armed worker its own seeded clock; the plan's
    :class:`~repro.service.faults.RecoveryPolicy` doubles as the restart
    policy unless ``policy`` overrides it.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        store_root: Optional[str] = None,
        engine_opts: Optional[Dict[str, Any]] = None,
        policy: Optional[RecoveryPolicy] = None,
        fault_plan: Optional[Any] = None,
        fault_workers: Optional[Sequence[int]] = None,
        start_method: str = "spawn",
        max_queue_per_worker: int = 2048,
        poll_seconds: float = 0.02,
        ready_timeout: float = 120.0,
    ):
        if workers < 1:
            raise ServiceError(f"need at least one worker, got {workers}")
        if isinstance(fault_plan, FaultPlan):
            if policy is None:
                policy = fault_plan.policy
            fault_plan = (fault_plan.specs, fault_plan.seed, fault_plan.policy,
                          fault_plan.name)
        self._workers = workers
        self._store_root = store_root
        self._engine_opts = dict(engine_opts or {})
        self._policy = policy or DEFAULT_POLICY
        self._fault_plan = fault_plan
        self._fault_workers: Optional[Set[int]] = (
            None if fault_workers is None else set(fault_workers)
        )
        self._start_method = start_method
        self._max_queue = max_queue_per_worker
        self._poll_seconds = poll_seconds
        self._ready_timeout = ready_timeout

        self._ctx = multiprocessing.get_context(start_method)
        self._outbox: Optional[Any] = None
        self._handles: List[_WorkerHandle] = []
        self._lock = threading.Lock()
        self._inflight: Dict[int, _Pending] = {}
        self._rids = itertools.count(1)
        self._rr = 0
        self._table: Dict[str, _AttachEntry] = {}
        self._ready: Set[Tuple[int, int]] = set()
        self._counters: Dict[str, int] = {
            "worker_restarts": 0,
            "crashes_detected": 0,
            "retried_requests": 0,
            "failed_requests": 0,
            "rehomed_datasets": 0,
            "workers_lost": 0,
            "replay_errors": 0,
        }
        self._closed = False
        self._started = False
        self._stop = threading.Event()
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "Supervisor":
        if self._started:
            raise ServiceError("supervisor already started")
        self._started = True
        self._outbox = self._ctx.Queue()
        for worker_id in range(self._workers):
            self._handles.append(self._spawn(worker_id, 0, with_plan=True))
        self._collector = threading.Thread(
            target=self._collect_loop, name="frontend-collector", daemon=True
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="frontend-monitor", daemon=True
        )
        self._monitor.start()
        self._wait_ready()
        return self

    def _spawn(self, worker_id: int, generation: int, *, with_plan: bool) -> _WorkerHandle:
        armed = (
            with_plan
            and self._fault_plan is not None
            and (self._fault_workers is None or worker_id in self._fault_workers)
        )
        settings = {
            "store_root": self._store_root,
            "engine_opts": self._engine_opts,
            "fault_plan": self._fault_plan if armed else None,
        }
        inbox = self._ctx.Queue(self._max_queue)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, generation, inbox, self._outbox, settings),
            name=f"frontend-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        return _WorkerHandle(worker_id, generation, process, inbox)

    def _wait_ready(self) -> None:
        deadline = time.monotonic() + self._ready_timeout
        expected = {(h.worker_id, h.generation) for h in self._handles}
        while time.monotonic() < deadline:
            with self._lock:
                if expected <= self._ready:
                    return
            time.sleep(0.01)
        self.close()
        raise ServiceError(
            f"worker pool not ready within {self._ready_timeout}s"
        )

    def close(self) -> None:
        """Stop threads, drain workers, fail whatever is still in flight."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
            pending = list(self._inflight.values())
            self._inflight.clear()
        self._stop.set()
        for handle in handles:
            try:
                handle.inbox.put_nowait(None)
            except Exception:
                pass
        if self._outbox is not None:
            self._outbox.put(("stop",))
        for handle in handles:
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)
        for thread in (self._collector, self._monitor):
            if thread is not None and thread is not threading.current_thread():
                thread.join(timeout=5)
        closed = ServiceError("serving front is closed")
        for p in pending:
            self._deliver_error(p, closed)

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------

    @property
    def workers(self) -> int:
        """Target pool size."""
        return self._workers

    @property
    def healthy_workers(self) -> int:
        with self._lock:
            return sum(1 for h in self._handles if h.healthy)

    def health(self) -> Dict[str, int]:
        with self._lock:
            snapshot = dict(self._counters)
            snapshot["workers"] = self._workers
            snapshot["healthy_workers"] = sum(1 for h in self._handles if h.healthy)
        return snapshot

    # -- request submission ----------------------------------------------------

    def submit(
        self,
        header: Dict[str, Any],
        body: bytes,
        codec: int,
        on_done: _OnDone,
    ) -> None:
        """Route one request; ``on_done(header, body, codec)`` fires exactly
        once, from a supervisor thread.

        Raises synchronously on conditions the caller must answer itself:
        :class:`~repro.core.errors.OverloadedError` when the target
        worker's queue is full, :class:`~repro.core.errors.ServiceError`
        when closed, :class:`~repro.core.errors.WorkerFailedError` when no
        healthy worker can take the request.
        """
        op = header.get("op")
        name = header.get("dataset")
        if op == "stats":
            on_done = self._inject_health(on_done)
        with self._lock:
            if self._closed:
                raise ServiceError("serving front is closed")
            if op == "attach":
                self._submit_attach_locked(header, body, codec, on_done)
                return
            entry = self._table.get(name) if name is not None else None
            if op == "detach" and entry is not None and not entry.mutable:
                del self._table[name]
                self._submit_broadcast_locked(
                    header, body, codec, self._healthy_locked(), on_done
                )
                return
            if op == "stats" and (entry is None or not entry.mutable):
                targets = self._healthy_locked()
                if len(targets) > 1:
                    self._submit_broadcast_locked(
                        header, body, codec, targets, on_done,
                        combine=self._combine_stats,
                    )
                    return
            if entry is not None and entry.mutable:
                handle = self._handle_for_locked(entry.home)
                if handle is None:
                    raise WorkerFailedError(
                        f"dataset {name!r} lost its home worker and is not "
                        "yet re-homed; retry shortly"
                    )
                if op == "detach":
                    del self._table[name]
            else:
                handle = self._next_healthy_locked()
            no_retry = op not in _READ_OPS
            self._enqueue_locked(
                handle, _Pending(header, body, codec, on_done, handle.worker_id,
                                 no_retry=no_retry)
            )

    def call(
        self,
        op: str,
        *,
        dataset: Optional[str] = None,
        value: Any = None,
        codec: int = protocol.CODEC_JSON,
        timeout: float = 60.0,
    ) -> Any:
        """Blocking convenience wrapper over :meth:`submit`: encode, wait,
        decode, raising remote errors as their library classes."""
        body = protocol.encode_body(value, codec) if value is not None else b""
        header = {"op": op, "rid": 0, "dataset": dataset}
        done = threading.Event()
        box: Dict[str, Any] = {}

        def on_done(rheader: Dict[str, Any], rbody: bytes, rcodec: int) -> None:
            box["response"] = (rheader, rbody, rcodec)
            done.set()

        self.submit(header, body, codec, on_done)
        if not done.wait(timeout):
            raise ServiceError(f"no response to {op!r} within {timeout}s")
        rheader, rbody, rcodec = box["response"]
        payload = protocol.decode_body(rbody, rcodec) if rbody else None
        if rheader.get("ok"):
            return payload
        protocol.raise_remote(payload)

    # -- locked routing helpers ------------------------------------------------

    def _healthy_locked(self) -> List[_WorkerHandle]:
        return [h for h in self._handles if h.healthy]

    def _handle_for_locked(self, worker_id: Optional[int]) -> Optional[_WorkerHandle]:
        if worker_id is None:
            return None
        for handle in self._handles:
            if handle.worker_id == worker_id and handle.healthy:
                return handle
        return None

    def _next_healthy_locked(self) -> _WorkerHandle:
        healthy = self._healthy_locked()
        if not healthy:
            raise WorkerFailedError("no healthy workers in the pool")
        self._rr += 1
        return healthy[self._rr % len(healthy)]

    def _home_counts_locked(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for entry in self._table.values():
            if entry.mutable and entry.home is not None:
                counts[entry.home] = counts.get(entry.home, 0) + 1
        return counts

    def _least_loaded_locked(self) -> _WorkerHandle:
        healthy = self._healthy_locked()
        if not healthy:
            raise WorkerFailedError("no healthy workers in the pool")
        counts = self._home_counts_locked()
        return min(healthy, key=lambda h: (counts.get(h.worker_id, 0), h.worker_id))

    def _enqueue_locked(self, handle: _WorkerHandle, pending: _Pending) -> None:
        rid = next(self._rids)
        self._inflight[rid] = pending
        try:
            handle.inbox.put_nowait(("req", rid, pending.header, pending.body,
                                     pending.codec))
        except queue_mod.Full:
            del self._inflight[rid]
            raise OverloadedError(
                f"worker {handle.worker_id} queue is full "
                f"({self._max_queue} requests deep)"
            ) from None

    def _submit_attach_locked(self, header, body, codec, on_done) -> None:
        params = protocol.decode_body(body, codec)
        name = params["name"]
        mutable = bool(params.get("mutable", False))
        if mutable:
            targets = [self._least_loaded_locked()]
        else:
            targets = self._healthy_locked()
            if not targets:
                raise WorkerFailedError("no healthy workers in the pool")
        entry = _AttachEntry(header, body, codec, mutable,
                             targets[0].worker_id if mutable else None)

        def record_then_done(rheader: Dict[str, Any], rbody: bytes, rcodec: int) -> None:
            if rheader.get("ok"):
                with self._lock:
                    self._table[name] = entry
            on_done(rheader, rbody, rcodec)

        self._submit_broadcast_locked(header, body, codec, targets, record_then_done)

    def _submit_broadcast_locked(self, header, body, codec, targets, on_done,
                                 combine=None) -> None:
        if not targets:
            raise WorkerFailedError("no healthy workers in the pool")
        broadcast = _Broadcast(len(targets), on_done, combine)
        for handle in targets:
            self._enqueue_locked(
                handle,
                _Pending(header, body, codec, broadcast.collect, handle.worker_id,
                         no_retry=True),
            )

    def _inject_health(self, on_done: _OnDone) -> _OnDone:
        """Fold the pool's health counters into a stats response, so one
        remote ``stats()`` shows engine counters *and* the supervision story
        (``worker_restarts``, retries, re-homes)."""

        def wrapped(rheader: Dict[str, Any], rbody: bytes, rcodec: int) -> None:
            if rheader.get("ok"):
                try:
                    payload = protocol.decode_body(rbody, rcodec)
                    if isinstance(payload, dict):
                        payload["frontend"] = self.health()
                        rbody = protocol.encode_body(payload, rcodec)
                except Exception:  # pragma: no cover - stats stay best-effort
                    pass
            on_done(rheader, rbody, rcodec)

        return wrapped

    @staticmethod
    def _combine_stats(
        responses: List[Tuple[Dict[str, Any], bytes, int]]
    ) -> Tuple[Dict[str, Any], bytes, int]:
        header, body, codec = responses[0]
        merged = protocol.decode_body(body, codec)
        for _, other_body, other_codec in responses[1:]:
            _merge_stats(merged, protocol.decode_body(other_body, other_codec))
        return header, protocol.encode_body(merged, codec), codec

    # -- response collection ---------------------------------------------------

    def _collect_loop(self) -> None:
        while True:
            message = self._outbox.get()
            tag = message[0]
            if tag == "stop":
                return
            if tag == "ready":
                _, worker_id, generation = message
                with self._lock:
                    self._ready.add((worker_id, generation))
                continue
            _, worker_id, generation, rid, rheader, rbody, rcodec = message
            with self._lock:
                pending = self._inflight.pop(rid, None)
                if (
                    pending is not None
                    and rheader.get("ok")
                    and pending.op == "apply_changes"
                    and not pending.internal
                ):
                    entry = self._table.get(pending.dataset)
                    if entry is not None and entry.mutable:
                        entry.journal.append(
                            (pending.header, pending.body, pending.codec)
                        )
            if pending is not None:
                pending.on_done(rheader, rbody, rcodec)

    # -- crash detection and restart -------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self._poll_seconds):
            deliveries: List[Tuple[_Pending, BaseException]] = []
            to_restart: List[_WorkerHandle] = []
            now = time.monotonic()
            with self._lock:
                if self._closed:
                    return
                for handle in self._handles:
                    if handle.healthy and not handle.process.is_alive():
                        deliveries.extend(self._on_crash_locked(handle, now))
                for handle in self._handles:
                    if (
                        not handle.healthy
                        and not handle.lost
                        and now >= handle.next_restart_at
                    ):
                        to_restart.append(handle)
            for pending, error in deliveries:
                self._deliver_error(pending, error)
            for handle in to_restart:
                self._restart(handle)

    def _on_crash_locked(
        self, handle: _WorkerHandle, now: float
    ) -> List[Tuple[_Pending, BaseException]]:
        handle.healthy = False
        self._counters["crashes_detected"] += 1
        exitcode = handle.process.exitcode
        dead_id = handle.worker_id
        failures: List[Tuple[_Pending, BaseException]] = []

        # Re-home mutable datasets whose home just died: replay the attach
        # frame plus the acknowledged journal onto the least-loaded healthy
        # worker.  FIFO inboxes order the replay before any rerouted reads.
        for name, entry in self._table.items():
            if not entry.mutable or entry.home != dead_id:
                continue
            healthy = self._healthy_locked()
            if not healthy:
                entry.home = None  # orphaned until a worker comes back
                continue
            self._rehome_locked(name, entry)

        # In-flight on the dead worker: reads retry once, everything else
        # fails loudly (a write may or may not have applied).
        dead_rids = [rid for rid, p in self._inflight.items()
                     if p.worker_id == dead_id]
        for rid in dead_rids:
            pending = self._inflight.pop(rid)
            retry_handle: Optional[_WorkerHandle] = None
            if not pending.no_retry and not pending.retried:
                entry = self._table.get(pending.dataset)
                if entry is not None and entry.mutable:
                    retry_handle = self._handle_for_locked(entry.home)
                else:
                    healthy = self._healthy_locked()
                    if healthy:
                        self._rr += 1
                        retry_handle = healthy[self._rr % len(healthy)]
            if retry_handle is None:
                failures.append((pending, WorkerFailedError(
                    f"worker {dead_id} died (exit {exitcode}) holding "
                    f"{pending.op!r} for dataset {pending.dataset!r}"
                )))
                continue
            pending.retried = True
            pending.worker_id = retry_handle.worker_id
            try:
                self._enqueue_locked(retry_handle, pending)
                self._counters["retried_requests"] += 1
            except OverloadedError as exc:
                failures.append((pending, exc))

        backoff = self._policy.worker_restart_backoff_seconds * (
            2 ** handle.restart_count
        )
        handle.next_restart_at = now + backoff
        if handle.restart_count >= self._policy.worker_restart_attempts:
            handle.lost = True
            self._counters["workers_lost"] += 1
        return failures

    def _rehome_locked(self, name: str, entry: _AttachEntry) -> None:
        new_home = self._least_loaded_locked()
        entry.home = new_home.worker_id
        self._counters["rehomed_datasets"] += 1
        frames = [(entry.header, entry.body, entry.codec)] + list(entry.journal)
        for fheader, fbody, fcodec in frames:
            try:
                self._enqueue_locked(
                    new_home,
                    _Pending(fheader, fbody, fcodec, self._replay_done,
                             new_home.worker_id, no_retry=True, internal=True),
                )
            except OverloadedError:
                self._counters["replay_errors"] += 1

    def _replay_done(self, rheader: Dict[str, Any], rbody: bytes, rcodec: int) -> None:
        if not rheader.get("ok"):
            with self._lock:
                self._counters["replay_errors"] += 1

    def _restart(self, handle: _WorkerHandle) -> None:
        # Spawn outside the lock (it forks an interpreter); adopt under it.
        try:
            replacement = self._spawn(
                handle.worker_id, handle.generation + 1, with_plan=False
            )
        except Exception:
            with self._lock:
                handle.restart_count += 1
                if handle.restart_count > self._policy.worker_restart_attempts:
                    if not handle.lost:
                        handle.lost = True
                        self._counters["workers_lost"] += 1
                    return
                backoff = self._policy.worker_restart_backoff_seconds * (
                    2 ** handle.restart_count
                )
                handle.next_restart_at = time.monotonic() + backoff
            return
        with self._lock:
            if self._closed:
                replacement.process.terminate()
                return
            handle.process = replacement.process
            handle.inbox = replacement.inbox
            handle.generation = replacement.generation
            handle.restart_count += 1
            # Replay the attach table: every immutable dataset, plus any
            # orphaned mutable home this worker can adopt.
            for name, entry in self._table.items():
                if entry.mutable:
                    if entry.home is None:
                        entry.home = handle.worker_id
                        self._counters["rehomed_datasets"] += 1
                        frames = [(entry.header, entry.body, entry.codec)]
                        frames += list(entry.journal)
                    else:
                        continue
                else:
                    frames = [(entry.header, entry.body, entry.codec)]
                for fheader, fbody, fcodec in frames:
                    try:
                        self._enqueue_locked(
                            handle,
                            _Pending(fheader, fbody, fcodec, self._replay_done,
                                     handle.worker_id, no_retry=True,
                                     internal=True),
                        )
                    except OverloadedError:
                        self._counters["replay_errors"] += 1
            handle.healthy = True
            self._counters["worker_restarts"] += 1

    # -- error delivery --------------------------------------------------------

    def _deliver_error(self, pending: _Pending, error: BaseException) -> None:
        with self._lock:
            self._counters["failed_requests"] += 1
        header = {"rid": pending.header.get("rid"), "ok": False,
                  "op": pending.op}
        body = protocol.encode_body(protocol.error_payload(error), pending.codec)
        pending.on_done(header, body, pending.codec)
