"""Supervision of the worker pool: routing, deadlines, hedging, breakers.

The :class:`Supervisor` owns N worker processes (see
:mod:`repro.service.frontend.workers`) and is the single place requests
are routed:

*Per-dataset routing.*  Immutable datasets are attached on **every**
worker (the content-addressed store makes the 2nd..Nth attach a cheap
load, not a rebuild) and reads round-robin across healthy workers.
Mutable datasets are **homed** on exactly one worker -- versions advance
only there, so no stale replica can ever serve a read -- and the
supervisor keeps a journal of every *acknowledged* change batch.  The
journal is bounded: after ``journal_checkpoint_batches`` acknowledged
batches the supervisor snapshots the home worker's current content
(``snapshot`` op), persists it to the shared
:class:`~repro.service.artifacts.ArtifactStore` under the
``frontend-journal-checkpoint`` scheme, swaps it in as the new attach
baseline, and truncates the replayed entries.  FIFO inbox/outbox
ordering makes the truncation exact: every batch acknowledged before the
snapshot response is *in* the snapshot, every later batch is appended to
the journal after the truncation.

*Deadlines.*  Clients attach a relative ``deadline_ms`` budget to a
frame; the gateway forwards the remaining budget and :meth:`submit`
stamps the absolute ``deadline_mono`` instant (``time.monotonic()`` --
CLOCK_MONOTONIC is system-wide on Linux, so worker processes share it).
Already-expired work is refused synchronously; in-flight work that
outlives its budget is swept by the monitor thread and answered with a
typed :class:`~repro.core.errors.DeadlineExceededError` -- never a
silent stall.  Workers shed frames that aged out in their inbox
(``deadline_expired_worker``); the supervisor counts its own expiries
under ``deadline_expired_supervisor``.

*Hedged reads.*  Reads on immutable datasets are served identically by
every worker (the paper's determinism guarantee: answers depend only on
the dataset and the Pi-structures, which are content-addressed), so a
read still unanswered after ``hedge_delay_ms`` is *hedged*: a duplicate
is enqueued on a second worker and the first answer wins.  The loser's
response is dropped, its worker neither credited nor blamed.  Counters:
``hedged_requests``, ``hedge_wins``.

*Circuit breakers.*  Each worker slot carries a breaker: consecutive
infrastructure failures (crashes while holding work, deadline expiries)
open it and the slot stops receiving routed traffic; after
``breaker_reset_seconds`` a single half-open probe is admitted, and its
outcome closes or re-opens the breaker.  Breakers deliberately survive
restarts -- a flapping worker stays isolated between crashes instead of
re-entering rotation at full weight.  Application errors (a bad query)
count as *successes*: the worker answered.

*Budgeted retries.*  Reads orphaned by a crash are retried up to
``read_retry_budget`` times with jittered exponential backoff
(``retry_backoff_seconds`` base), deferred through the monitor thread so
a crashed pool is not hammered in lockstep.  Writes still fail loudly:
they may or may not have applied, and answers are never silently wrong.

*Graceful drain.*  :meth:`drain` marks a worker unroutable, waits for
its in-flight work up to a deadline, then re-homes its mutable datasets
through the same attach+journal replay path used after a crash (skipping
-- and reporting -- any dataset that still has an unacknowledged write
on the old home).  :meth:`undrain` returns the slot to rotation.

*Crash detection and recovery.*  A monitor thread polls worker liveness.
When a worker dies: its in-flight reads enter the retry path above;
in-flight writes surface :class:`~repro.core.errors.WorkerFailedError`;
mutable datasets homed there are re-homed by replaying the attach frame
plus the acknowledged journal onto a healthy worker (inbox FIFO ordering
guarantees replay lands before any rerouted traffic); and the worker
slot is restarted with exponential backoff bounded by
:class:`~repro.service.faults.RecoveryPolicy`.  Restarts never re-arm a
fault plan: the ``dead-worker`` scenario models one crash event, not a
crashing binary.

Health counters (``health()``): ``worker_restarts``, ``crashes_detected``,
``retried_requests``, ``failed_requests``, ``rehomed_datasets``,
``workers_lost``, ``replay_errors``, ``deadline_expired_supervisor``,
``deadline_expired_worker``, ``hedged_requests``, ``hedge_wins``,
``breaker_opened``, ``breaker_closed``, ``breaker_probes``,
``journal_checkpoints``, ``journal_checkpoint_failures``, ``drains``,
plus a ``breakers`` map of per-worker breaker states.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import queue as queue_mod
import random
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import (
    DeadlineExceededError,
    OverloadedError,
    ServiceError,
    WorkerFailedError,
)
from repro.service.artifacts import ArtifactKey, ArtifactStore
from repro.service.faults import DEFAULT_POLICY, FaultPlan, RecoveryPolicy
from repro.service.frontend import protocol
from repro.service.frontend.workers import worker_main

__all__ = ["Supervisor"]

#: Ops safe to retry on another worker after a crash: pure reads.
_READ_OPS = frozenset({"query", "query_batch", "ping"})

#: Reads whose answers are position-independent on immutable datasets --
#: the only ops eligible for hedging.
_HEDGE_OPS = frozenset({"query", "query_batch"})

#: Non-counter stats keys: identity, not additive.
_FIRST_KEYS = frozenset({"dataset", "mutable", "scheme", "shards", "hit_rate"})
_MAX_KEYS = frozenset({"version"})

#: ArtifactStore scheme name under which journal checkpoints persist.
_CHECKPOINT_SCHEME = "frontend-journal-checkpoint"

_OnDone = Callable[[Dict[str, Any], bytes, int], None]


def _merge_stats(base: Dict[str, Any], other: Dict[str, Any]) -> None:
    """Fold one worker's stats snapshot into an aggregate, in place."""
    for key, value in other.items():
        if key not in base:
            base[key] = value
        elif isinstance(value, dict) and isinstance(base[key], dict):
            _merge_stats(base[key], value)
        elif isinstance(value, bool):
            pass
        elif isinstance(value, (int, float)) and isinstance(base[key], (int, float)):
            if key in _MAX_KEYS:
                base[key] = max(base[key], value)
            elif key not in _FIRST_KEYS:
                base[key] = base[key] + value


def _strip_deadline(header: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``header`` without deadline fields, for durable frames.

    Attach records and journal entries are replayed arbitrarily later (on
    re-home, restart, or drain); a deadline frozen into them would make
    every replay arrive already expired.
    """
    if "deadline_ms" in header or "deadline_mono" in header:
        return {k: v for k, v in header.items()
                if k not in ("deadline_ms", "deadline_mono")}
    return header


class _CircuitBreaker:
    """Per-worker closed -> open -> half-open -> closed state machine.

    Pure bookkeeping: the supervisor drives it under its own lock and
    translates returned transition events into counters.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    __slots__ = ("threshold", "reset_seconds", "state", "failures",
                 "opened_at", "probing")

    def __init__(self, threshold: int, reset_seconds: float):
        self.threshold = threshold
        self.reset_seconds = reset_seconds
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False

    def allow_probe(self, now: float) -> bool:
        """True exactly once per reset window: admit a half-open probe."""
        if self.state == self.OPEN and now - self.opened_at >= self.reset_seconds:
            self.state = self.HALF_OPEN
            self.probing = True
            return True
        return False

    def record_success(self) -> Optional[str]:
        self.failures = 0
        if self.state != self.CLOSED:
            self.state = self.CLOSED
            self.probing = False
            return "closed"
        return None

    def record_failure(self, now: float) -> Optional[str]:
        self.failures += 1
        if self.state == self.HALF_OPEN:
            self.state = self.OPEN
            self.opened_at = now
            self.probing = False
            return "opened"
        if self.state == self.CLOSED and self.failures >= self.threshold:
            self.state = self.OPEN
            self.opened_at = now
            return "opened"
        return None


class _Hedge:
    """Links the two racing copies of one hedged read; first answer wins."""

    __slots__ = ("primary", "secondary", "done")

    def __init__(self, primary: "_Pending", secondary: "_Pending"):
        self.primary = primary
        self.secondary = secondary
        self.done = False

    def sibling(self, pending: "_Pending") -> "_Pending":
        return self.secondary if pending is self.primary else self.primary


class _Pending:
    """One request in flight on one worker."""

    __slots__ = ("header", "body", "codec", "on_done", "worker_id", "op",
                 "dataset", "retries", "no_retry", "internal", "rid",
                 "deadline_at", "enqueued_at", "hedge", "hedge_eligible",
                 "is_hedge")

    def __init__(self, header, body, codec, on_done, worker_id, *,
                 no_retry=False, internal=False, hedge_eligible=False,
                 is_hedge=False):
        self.header = header
        self.body = body
        self.codec = codec
        self.on_done = on_done
        self.worker_id = worker_id
        self.op = header.get("op")
        self.dataset = header.get("dataset")
        self.retries = 0
        self.no_retry = no_retry
        self.internal = internal
        self.rid = 0
        self.deadline_at = header.get("deadline_mono")
        self.enqueued_at = 0.0
        self.hedge: Optional[_Hedge] = None
        self.hedge_eligible = hedge_eligible
        self.is_hedge = is_hedge


class _Broadcast:
    """Aggregates N sub-responses into one; first error wins."""

    def __init__(self, expected: int, on_done: _OnDone,
                 combine: Optional[Callable[[List[Tuple[Dict[str, Any], bytes, int]]], Tuple[Dict[str, Any], bytes, int]]] = None):
        self._expected = expected
        self._on_done = on_done
        self._combine = combine
        self._lock = threading.Lock()
        self._responses: List[Tuple[Dict[str, Any], bytes, int]] = []
        self._error: Optional[Tuple[Dict[str, Any], bytes, int]] = None

    def collect(self, header: Dict[str, Any], body: bytes, codec: int) -> None:
        final = None
        with self._lock:
            if header.get("ok"):
                self._responses.append((header, body, codec))
            elif self._error is None:
                self._error = (header, body, codec)
            self._expected -= 1
            if self._expected == 0:
                if self._error is not None:
                    final = self._error
                elif self._combine is not None:
                    final = self._combine(self._responses)
                else:
                    final = self._responses[0]
        if final is not None:
            self._on_done(*final)


class _AttachEntry:
    """One attached dataset as the supervisor knows it."""

    __slots__ = ("header", "body", "codec", "mutable", "home", "journal",
                 "checkpointing")

    def __init__(self, header, body, codec, mutable, home):
        self.header = header
        self.body = body
        self.codec = codec
        self.mutable = mutable
        #: worker id homing a mutable dataset; None for immutable (served
        #: everywhere) or an orphaned mutable awaiting a healthy worker.
        self.home = home
        #: acknowledged apply_changes frames, replayed on re-home/restart;
        #: bounded by journal checkpointing.
        self.journal: List[Tuple[Dict[str, Any], bytes, int]] = []
        #: a snapshot request is outstanding; suppresses re-triggering.
        self.checkpointing = False


class _WorkerHandle:
    __slots__ = ("worker_id", "generation", "process", "inbox", "healthy",
                 "lost", "restart_count", "next_restart_at", "breaker",
                 "draining")

    def __init__(self, worker_id, generation, process, inbox, breaker):
        self.worker_id = worker_id
        self.generation = generation
        self.process = process
        self.inbox = inbox
        self.healthy = True
        self.lost = False
        self.restart_count = 0
        self.next_restart_at = 0.0
        #: survives restarts on purpose: a flapping worker stays isolated.
        self.breaker = breaker
        self.draining = False


class Supervisor:
    """The multi-process worker pool behind the gateway.

    ``fault_plan`` (a :class:`~repro.service.faults.FaultPlan` or the
    picklable ``(specs, seed, policy, name)`` tuple) ships to the workers
    named in ``fault_workers`` (default: all) and is rebuilt inside each,
    giving every armed worker its own seeded clock; the plan's
    :class:`~repro.service.faults.RecoveryPolicy` doubles as the restart
    policy unless ``policy`` overrides it.

    ``hedge_delay_ms`` (None disables) is how long an immutable read may
    sit unanswered before a duplicate races on a second worker;
    ``journal_checkpoint_batches`` (None disables) bounds the mutable
    journal between checkpoints.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        store_root: Optional[str] = None,
        engine_opts: Optional[Dict[str, Any]] = None,
        policy: Optional[RecoveryPolicy] = None,
        fault_plan: Optional[Any] = None,
        fault_workers: Optional[Sequence[int]] = None,
        start_method: str = "spawn",
        max_queue_per_worker: int = 2048,
        poll_seconds: float = 0.02,
        ready_timeout: float = 120.0,
        hedge_delay_ms: Optional[float] = 50.0,
        journal_checkpoint_batches: Optional[int] = 64,
    ):
        if workers < 1:
            raise ServiceError(f"need at least one worker, got {workers}")
        if isinstance(fault_plan, FaultPlan):
            if policy is None:
                policy = fault_plan.policy
            fault_plan = (fault_plan.specs, fault_plan.seed, fault_plan.policy,
                          fault_plan.name)
        if hedge_delay_ms is not None and hedge_delay_ms < 0:
            raise ServiceError(f"hedge_delay_ms must be >= 0, got {hedge_delay_ms}")
        if journal_checkpoint_batches is not None and journal_checkpoint_batches < 1:
            raise ServiceError(
                f"journal_checkpoint_batches must be >= 1, "
                f"got {journal_checkpoint_batches}"
            )
        self._workers = workers
        self._store_root = store_root
        self._engine_opts = dict(engine_opts or {})
        self._policy = policy or DEFAULT_POLICY
        self._fault_plan = fault_plan
        self._fault_workers: Optional[Set[int]] = (
            None if fault_workers is None else set(fault_workers)
        )
        self._start_method = start_method
        self._max_queue = max_queue_per_worker
        self._poll_seconds = poll_seconds
        self._ready_timeout = ready_timeout
        self._hedge_delay = (
            None if hedge_delay_ms is None else hedge_delay_ms / 1000.0
        )
        self._checkpoint_batches = journal_checkpoint_batches
        self._store = ArtifactStore(store_root) if store_root is not None else None
        # Retry jitter only perturbs *timing*, never answers; a fixed seed
        # keeps chaos runs reproducible.
        self._jitter = random.Random(0x5EED)

        self._ctx = multiprocessing.get_context(start_method)
        self._outbox: Optional[Any] = None
        self._handles: List[_WorkerHandle] = []
        self._lock = threading.Lock()
        self._inflight: Dict[int, _Pending] = {}
        self._deferred: List[Tuple[float, _Pending]] = []
        self._rids = itertools.count(1)
        self._rr = 0
        self._table: Dict[str, _AttachEntry] = {}
        self._ready: Set[Tuple[int, int]] = set()
        self._counters: Dict[str, int] = {
            "worker_restarts": 0,
            "crashes_detected": 0,
            "retried_requests": 0,
            "failed_requests": 0,
            "rehomed_datasets": 0,
            "workers_lost": 0,
            "replay_errors": 0,
            "deadline_expired_supervisor": 0,
            "deadline_expired_worker": 0,
            "hedged_requests": 0,
            "hedge_wins": 0,
            "breaker_opened": 0,
            "breaker_closed": 0,
            "breaker_probes": 0,
            "journal_checkpoints": 0,
            "journal_checkpoint_failures": 0,
            "drains": 0,
        }
        self._closed = False
        self._started = False
        self._stop = threading.Event()
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "Supervisor":
        if self._started:
            raise ServiceError("supervisor already started")
        self._started = True
        self._outbox = self._ctx.Queue()
        for worker_id in range(self._workers):
            self._handles.append(self._spawn(worker_id, 0, with_plan=True))
        self._collector = threading.Thread(
            target=self._collect_loop, name="frontend-collector", daemon=True
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="frontend-monitor", daemon=True
        )
        self._monitor.start()
        self._wait_ready()
        return self

    def _spawn(self, worker_id: int, generation: int, *, with_plan: bool) -> _WorkerHandle:
        armed = (
            with_plan
            and self._fault_plan is not None
            and (self._fault_workers is None or worker_id in self._fault_workers)
        )
        settings = {
            "store_root": self._store_root,
            "engine_opts": self._engine_opts,
            "fault_plan": self._fault_plan if armed else None,
        }
        inbox = self._ctx.Queue(self._max_queue)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, generation, inbox, self._outbox, settings),
            name=f"frontend-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        breaker = _CircuitBreaker(
            self._policy.breaker_failure_threshold,
            self._policy.breaker_reset_seconds,
        )
        return _WorkerHandle(worker_id, generation, process, inbox, breaker)

    def _wait_ready(self) -> None:
        deadline = time.monotonic() + self._ready_timeout
        expected = {(h.worker_id, h.generation) for h in self._handles}
        while time.monotonic() < deadline:
            with self._lock:
                if expected <= self._ready:
                    return
            time.sleep(0.01)
        self.close()
        raise ServiceError(
            f"worker pool not ready within {self._ready_timeout}s"
        )

    def close(self) -> None:
        """Stop threads, drain workers, fail whatever is still in flight."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
            pending = list(self._inflight.values())
            pending.extend(p for _, p in self._deferred)
            self._inflight.clear()
            self._deferred = []
        self._stop.set()
        for handle in handles:
            try:
                handle.inbox.put_nowait(None)
            except Exception:
                pass
        if self._outbox is not None:
            self._outbox.put(("stop",))
        for handle in handles:
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)
        for thread in (self._collector, self._monitor):
            if thread is not None and thread is not threading.current_thread():
                thread.join(timeout=5)
        closed = ServiceError("serving front is closed")
        for p in pending:
            if p.hedge is not None:
                if p.hedge.done:
                    continue
                p.hedge.done = True
            self._deliver_error(p, closed)

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------

    @property
    def workers(self) -> int:
        """Target pool size."""
        return self._workers

    @property
    def healthy_workers(self) -> int:
        with self._lock:
            return sum(1 for h in self._handles if h.healthy)

    def health(self) -> Dict[str, Any]:
        with self._lock:
            snapshot: Dict[str, Any] = dict(self._counters)
            snapshot["workers"] = self._workers
            snapshot["healthy_workers"] = sum(1 for h in self._handles if h.healthy)
            snapshot["breakers"] = {
                str(h.worker_id): h.breaker.state for h in self._handles
            }
        return snapshot

    # -- request submission ----------------------------------------------------

    def submit(
        self,
        header: Dict[str, Any],
        body: bytes,
        codec: int,
        on_done: _OnDone,
    ) -> None:
        """Route one request; ``on_done(header, body, codec)`` fires exactly
        once, from a supervisor thread.

        A relative ``deadline_ms`` budget in the header is converted here
        to an absolute ``deadline_mono`` instant shared with the workers;
        already-expired work raises
        :class:`~repro.core.errors.DeadlineExceededError` synchronously.

        Raises synchronously on conditions the caller must answer itself:
        :class:`~repro.core.errors.OverloadedError` when the target
        worker's queue is full, :class:`~repro.core.errors.ServiceError`
        when closed, :class:`~repro.core.errors.WorkerFailedError` when no
        healthy worker can take the request.
        """
        op = header.get("op")
        name = header.get("dataset")
        deadline_ms = header.get("deadline_ms")
        if isinstance(deadline_ms, (int, float)):
            if deadline_ms <= 0:
                with self._lock:
                    self._counters["deadline_expired_supervisor"] += 1
                raise DeadlineExceededError(
                    f"request {op!r} arrived with an exhausted budget "
                    f"({deadline_ms} ms remaining)",
                    op=op, dataset=name,
                    elapsed_ms=0.0, budget_ms=float(deadline_ms),
                )
            header["deadline_mono"] = time.monotonic() + deadline_ms / 1000.0
        if op == "stats":
            on_done = self._inject_health(on_done)
        with self._lock:
            if self._closed:
                raise ServiceError("serving front is closed")
            if op == "attach":
                self._submit_attach_locked(header, body, codec, on_done)
                return
            entry = self._table.get(name) if name is not None else None
            if op == "detach" and entry is not None and not entry.mutable:
                del self._table[name]
                self._submit_broadcast_locked(
                    header, body, codec, self._healthy_locked(), on_done
                )
                return
            if op == "stats" and (entry is None or not entry.mutable):
                targets = self._healthy_locked()
                if len(targets) > 1:
                    self._submit_broadcast_locked(
                        header, body, codec, targets, on_done,
                        combine=self._combine_stats,
                    )
                    return
            if entry is not None and entry.mutable:
                handle = self._handle_for_locked(entry.home)
                if handle is None:
                    raise WorkerFailedError(
                        f"dataset {name!r} lost its home worker and is not "
                        "yet re-homed; retry shortly"
                    )
                if op == "detach":
                    del self._table[name]
            else:
                handle = self._next_dispatch_locked()
            no_retry = op not in _READ_OPS
            hedge_eligible = (
                self._hedge_delay is not None
                and op in _HEDGE_OPS
                and (entry is None or not entry.mutable)
            )
            self._enqueue_locked(
                handle, _Pending(header, body, codec, on_done, handle.worker_id,
                                 no_retry=no_retry, hedge_eligible=hedge_eligible)
            )

    def call(
        self,
        op: str,
        *,
        dataset: Optional[str] = None,
        value: Any = None,
        codec: int = protocol.CODEC_JSON,
        timeout: float = 60.0,
        deadline_ms: Optional[float] = None,
    ) -> Any:
        """Blocking convenience wrapper over :meth:`submit`: encode, wait,
        decode, raising remote errors as their library classes.

        ``deadline_ms`` rides the frame header end to end; the local wait
        is clamped to slightly past the budget so an expiry surfaces as
        the supervisor's typed error, not a silent stall here.
        """
        body = protocol.encode_body(value, codec) if value is not None else b""
        header: Dict[str, Any] = {"op": op, "rid": 0, "dataset": dataset}
        wait = timeout
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
            wait = min(timeout, deadline_ms / 1000.0 + 5.0)
        done = threading.Event()
        box: Dict[str, Any] = {}

        def on_done(rheader: Dict[str, Any], rbody: bytes, rcodec: int) -> None:
            box["response"] = (rheader, rbody, rcodec)
            done.set()

        self.submit(header, body, codec, on_done)
        if not done.wait(wait):
            raise DeadlineExceededError(
                f"no response to {op!r} within {wait}s",
                op=op, dataset=dataset,
                elapsed_ms=wait * 1000.0,
                budget_ms=deadline_ms if deadline_ms is not None
                else timeout * 1000.0,
            )
        rheader, rbody, rcodec = box["response"]
        payload = protocol.decode_body(rbody, rcodec) if rbody else None
        if rheader.get("ok"):
            return payload
        protocol.raise_remote(payload)

    # -- drain -----------------------------------------------------------------

    def drain(self, worker_id: int, *, timeout: float = 5.0) -> Dict[str, Any]:
        """Gracefully take ``worker_id`` out of rotation.

        Stops new dispatch immediately, waits up to ``timeout`` seconds
        for its in-flight work, then re-homes mutable datasets homed
        there via the attach+journal replay path.  Datasets with an
        unacknowledged write still on the old home are *not* re-homed
        (replaying around an unacknowledged write could diverge from what
        the client was told); they are reported under ``"skipped"`` and
        stay routable on the draining worker until :meth:`undrain` or a
        later :meth:`drain`.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("serving front is closed")
            handle = self._handle_by_id_locked(worker_id)
            if handle is None:
                raise ServiceError(f"no worker {worker_id} in the pool")
            handle.draining = True
            self._counters["drains"] += 1
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                busy = sum(1 for p in self._inflight.values()
                           if p.worker_id == worker_id)
            if busy == 0:
                break
            time.sleep(min(self._poll_seconds, 0.01))
        rehomed: List[str] = []
        skipped: List[str] = []
        with self._lock:
            remaining = sum(1 for p in self._inflight.values()
                            if p.worker_id == worker_id)
            busy_writes = {
                p.dataset for p in self._inflight.values()
                if p.worker_id == worker_id and not p.internal
                and p.op not in _READ_OPS
            }
            for name, entry in list(self._table.items()):
                if not entry.mutable or entry.home != worker_id:
                    continue
                if name in busy_writes:
                    skipped.append(name)
                    continue
                try:
                    self._rehome_locked(name, entry)
                except WorkerFailedError:
                    skipped.append(name)
                    continue
                rehomed.append(name)
                # Free the now-stale copy on the drained worker; routing
                # already points at the new home, so this is pure cleanup.
                detach_header = {"op": "detach", "rid": 0, "dataset": name}
                try:
                    self._enqueue_locked(
                        handle,
                        _Pending(detach_header, b"", entry.codec,
                                 self._replay_done, worker_id,
                                 no_retry=True, internal=True),
                    )
                except OverloadedError:
                    pass
        return {
            "worker_id": worker_id,
            "drained": remaining == 0,
            "inflight": remaining,
            "rehomed": rehomed,
            "skipped": skipped,
        }

    def undrain(self, worker_id: int) -> None:
        """Return a drained worker to the dispatch rotation."""
        with self._lock:
            handle = self._handle_by_id_locked(worker_id)
            if handle is None:
                raise ServiceError(f"no worker {worker_id} in the pool")
            handle.draining = False

    # -- locked routing helpers ------------------------------------------------

    def _healthy_locked(self) -> List[_WorkerHandle]:
        return [h for h in self._handles if h.healthy]

    def _dispatchable_locked(self) -> List[_WorkerHandle]:
        return [h for h in self._handles if h.healthy and not h.draining]

    def _handle_by_id_locked(self, worker_id: int) -> Optional[_WorkerHandle]:
        for handle in self._handles:
            if handle.worker_id == worker_id:
                return handle
        return None

    def _handle_for_locked(self, worker_id: Optional[int]) -> Optional[_WorkerHandle]:
        if worker_id is None:
            return None
        for handle in self._handles:
            if handle.worker_id == worker_id and handle.healthy:
                return handle
        return None

    def _next_dispatch_locked(self) -> _WorkerHandle:
        """Pick a worker for routed traffic: probes first, then round-robin
        over closed breakers; if every breaker is open, fall back to all
        dispatchable workers rather than failing the request."""
        candidates = self._dispatchable_locked()
        if not candidates:
            raise WorkerFailedError("no healthy workers in the pool")
        now = time.monotonic()
        for handle in candidates:
            if handle.breaker.allow_probe(now):
                self._counters["breaker_probes"] += 1
                return handle
        closed = [h for h in candidates
                  if h.breaker.state == _CircuitBreaker.CLOSED]
        pool = closed or candidates
        self._rr += 1
        return pool[self._rr % len(pool)]

    def _home_counts_locked(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for entry in self._table.values():
            if entry.mutable and entry.home is not None:
                counts[entry.home] = counts.get(entry.home, 0) + 1
        return counts

    def _least_loaded_locked(self) -> _WorkerHandle:
        candidates = self._dispatchable_locked()
        if not candidates:
            raise WorkerFailedError("no healthy workers in the pool")
        counts = self._home_counts_locked()
        return min(candidates,
                   key=lambda h: (counts.get(h.worker_id, 0), h.worker_id))

    def _enqueue_locked(self, handle: _WorkerHandle, pending: _Pending) -> None:
        rid = next(self._rids)
        pending.rid = rid
        pending.enqueued_at = time.monotonic()
        self._inflight[rid] = pending
        try:
            handle.inbox.put_nowait(("req", rid, pending.header, pending.body,
                                     pending.codec))
        except queue_mod.Full:
            del self._inflight[rid]
            raise OverloadedError(
                f"worker {handle.worker_id} queue is full "
                f"({self._max_queue} requests deep)"
            ) from None

    def _submit_attach_locked(self, header, body, codec, on_done) -> None:
        params = protocol.decode_body(body, codec)
        name = params["name"]
        mutable = bool(params.get("mutable", False))
        if mutable:
            targets = [self._least_loaded_locked()]
        else:
            targets = self._healthy_locked()
            if not targets:
                raise WorkerFailedError("no healthy workers in the pool")
        entry = _AttachEntry(_strip_deadline(header), body, codec, mutable,
                             targets[0].worker_id if mutable else None)

        def record_then_done(rheader: Dict[str, Any], rbody: bytes, rcodec: int) -> None:
            if rheader.get("ok"):
                with self._lock:
                    self._table[name] = entry
            on_done(rheader, rbody, rcodec)

        self._submit_broadcast_locked(header, body, codec, targets, record_then_done)

    def _submit_broadcast_locked(self, header, body, codec, targets, on_done,
                                 combine=None) -> None:
        if not targets:
            raise WorkerFailedError("no healthy workers in the pool")
        broadcast = _Broadcast(len(targets), on_done, combine)
        for handle in targets:
            self._enqueue_locked(
                handle,
                _Pending(header, body, codec, broadcast.collect, handle.worker_id,
                         no_retry=True),
            )

    def _inject_health(self, on_done: _OnDone) -> _OnDone:
        """Fold the pool's health counters into a stats response, so one
        remote ``stats()`` shows engine counters *and* the supervision story
        (``worker_restarts``, retries, re-homes, breakers)."""

        def wrapped(rheader: Dict[str, Any], rbody: bytes, rcodec: int) -> None:
            if rheader.get("ok"):
                try:
                    payload = protocol.decode_body(rbody, rcodec)
                    if isinstance(payload, dict):
                        payload["frontend"] = self.health()
                        rbody = protocol.encode_body(payload, rcodec)
                except Exception:  # pragma: no cover - stats stay best-effort
                    pass
            on_done(rheader, rbody, rcodec)

        return wrapped

    @staticmethod
    def _combine_stats(
        responses: List[Tuple[Dict[str, Any], bytes, int]]
    ) -> Tuple[Dict[str, Any], bytes, int]:
        header, body, codec = responses[0]
        merged = protocol.decode_body(body, codec)
        for _, other_body, other_codec in responses[1:]:
            _merge_stats(merged, protocol.decode_body(other_body, other_codec))
        return header, protocol.encode_body(merged, codec), codec

    # -- circuit breaker accounting (lock held) --------------------------------

    def _breaker_success_locked(self, handle: _WorkerHandle) -> None:
        if handle.breaker.record_success() == "closed":
            self._counters["breaker_closed"] += 1

    def _breaker_failure_locked(self, handle: _WorkerHandle, now: float) -> None:
        if handle.breaker.record_failure(now) == "opened":
            self._counters["breaker_opened"] += 1

    # -- response collection ---------------------------------------------------

    def _collect_loop(self) -> None:
        while True:
            message = self._outbox.get()
            tag = message[0]
            if tag == "stop":
                return
            if tag == "ready":
                _, worker_id, generation = message
                with self._lock:
                    self._ready.add((worker_id, generation))
                continue
            _, worker_id, generation, rid, rheader, rbody, rcodec = message
            deliver = False
            with self._lock:
                pending = self._inflight.pop(rid, None)
                if pending is not None:
                    deliver = True
                    handle = self._handle_by_id_locked(worker_id)
                    current = (
                        handle is not None and handle.generation == generation
                    )
                    if (
                        not rheader.get("ok")
                        and rheader.get("etype") == "DeadlineExceededError"
                    ):
                        # The frame aged out in the worker's inbox: a
                        # slowness signal, and an expiry the client sees.
                        self._counters["deadline_expired_worker"] += 1
                        if current:
                            self._breaker_failure_locked(
                                handle, time.monotonic()
                            )
                    elif current:
                        # Any answer -- including an application error --
                        # means the worker is alive and serving.
                        self._breaker_success_locked(handle)
                    if pending.hedge is not None:
                        hedge = pending.hedge
                        if hedge.done:  # pragma: no cover - defensive
                            deliver = False
                        else:
                            hedge.done = True
                            sibling = hedge.sibling(pending)
                            self._inflight.pop(sibling.rid, None)
                            if pending.is_hedge and rheader.get("ok"):
                                self._counters["hedge_wins"] += 1
                    if (
                        deliver
                        and rheader.get("ok")
                        and pending.op == "apply_changes"
                        and not pending.internal
                    ):
                        entry = self._table.get(pending.dataset)
                        if entry is not None and entry.mutable:
                            entry.journal.append(
                                (_strip_deadline(pending.header), pending.body,
                                 pending.codec)
                            )
                            self._maybe_checkpoint_locked(pending.dataset, entry)
            if pending is not None and deliver:
                pending.on_done(rheader, rbody, rcodec)

    # -- journal checkpointing -------------------------------------------------

    def _maybe_checkpoint_locked(self, name: str, entry: _AttachEntry) -> None:
        if (
            self._checkpoint_batches is None
            or len(entry.journal) < self._checkpoint_batches
            or entry.checkpointing
        ):
            return
        home = self._handle_for_locked(entry.home)
        if home is None:
            return
        entry.checkpointing = True
        snapshot_header = {"op": "snapshot", "rid": 0, "dataset": name}
        try:
            self._enqueue_locked(
                home,
                _Pending(snapshot_header, b"", entry.codec,
                         self._checkpoint_done(name), home.worker_id,
                         no_retry=True, internal=True),
            )
        except OverloadedError:
            entry.checkpointing = False
            self._counters["journal_checkpoint_failures"] += 1

    def _checkpoint_done(self, name: str) -> _OnDone:
        """Completion of a snapshot request: swap the attach baseline,
        truncate the journal, persist the checkpoint.

        Runs on the collector thread, which is also the only thread that
        appends to the journal -- so between the snapshot response and
        this truncation no batch can sneak in, and FIFO ordering
        guarantees the journal holds exactly the batches the snapshot
        already contains.
        """

        def finish(rheader: Dict[str, Any], rbody: bytes, rcodec: int) -> None:
            store = self._store
            new_body: Optional[bytes] = None
            version = 0
            with self._lock:
                entry = self._table.get(name)
                if entry is None or not entry.mutable:
                    return
                entry.checkpointing = False
                if not rheader.get("ok"):
                    self._counters["journal_checkpoint_failures"] += 1
                    return
                try:
                    snapshot = protocol.decode_body(rbody, rcodec)
                    params = protocol.decode_body(entry.body, entry.codec)
                    params["data"] = snapshot["data"]
                    version = snapshot.get("version", 0)
                    new_body = protocol.encode_body(params, entry.codec)
                except Exception:
                    self._counters["journal_checkpoint_failures"] += 1
                    return
                entry.body = new_body
                entry.journal.clear()
                self._counters["journal_checkpoints"] += 1
            if store is not None and new_body is not None:
                key = ArtifactKey(
                    fingerprint=hashlib.sha256(name.encode("utf-8")).hexdigest(),
                    scheme=_CHECKPOINT_SCHEME,
                    params=f"{name}@v{version}",
                )
                try:
                    store.put(key, new_body)
                except Exception:
                    with self._lock:
                        self._counters["journal_checkpoint_failures"] += 1

        return finish

    # -- crash detection, deadlines, hedging, retries --------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self._poll_seconds):
            deliveries: List[Tuple[_Pending, BaseException, Optional[str]]] = []
            to_restart: List[_WorkerHandle] = []
            now = time.monotonic()
            with self._lock:
                if self._closed:
                    return
                for handle in self._handles:
                    if handle.healthy and not handle.process.is_alive():
                        deliveries.extend(self._on_crash_locked(handle, now))
                self._sweep_deadlines_locked(now, deliveries)
                self._fire_hedges_locked(now)
                self._process_deferred_locked(now, deliveries)
                for handle in self._handles:
                    if (
                        not handle.healthy
                        and not handle.lost
                        and now >= handle.next_restart_at
                    ):
                        to_restart.append(handle)
            for pending, error, counter in deliveries:
                self._deliver_error(pending, error, counter=counter)
            for handle in to_restart:
                self._restart(handle)

    def _deadline_error(self, pending: _Pending, now: float) -> DeadlineExceededError:
        budget_ms = pending.header.get("deadline_ms")
        elapsed_ms = (now - pending.enqueued_at) * 1000.0 if pending.enqueued_at else None
        return DeadlineExceededError(
            f"no response to {pending.op!r} for dataset {pending.dataset!r} "
            f"within its {budget_ms} ms budget",
            op=pending.op, dataset=pending.dataset,
            elapsed_ms=elapsed_ms,
            budget_ms=budget_ms if isinstance(budget_ms, (int, float)) else None,
        )

    def _sweep_deadlines_locked(
        self, now: float,
        deliveries: List[Tuple[_Pending, BaseException, Optional[str]]],
    ) -> None:
        """Answer every in-flight request whose budget just ran out; the
        worker holding it is penalised on its breaker (it was too slow)."""
        expired = [rid for rid, p in self._inflight.items()
                   if p.deadline_at is not None and now >= p.deadline_at]
        for rid in expired:
            pending = self._inflight.pop(rid, None)
            if pending is None:
                continue
            handle = self._handle_by_id_locked(pending.worker_id)
            if handle is not None:
                self._breaker_failure_locked(handle, now)
            if pending.hedge is not None:
                hedge = pending.hedge
                if hedge.done:
                    continue
                hedge.done = True
                sibling = hedge.sibling(pending)
                if self._inflight.pop(sibling.rid, None) is not None:
                    sibling_handle = self._handle_by_id_locked(sibling.worker_id)
                    if sibling_handle is not None:
                        self._breaker_failure_locked(sibling_handle, now)
            self._counters["deadline_expired_supervisor"] += 1
            deliveries.append((pending, self._deadline_error(pending, now), None))

    def _fire_hedges_locked(self, now: float) -> None:
        """Race a duplicate of any immutable read that has waited past the
        hedge delay on a second worker; first answer wins."""
        if self._hedge_delay is None:
            return
        for pending in list(self._inflight.values()):
            if (
                pending.hedge is not None
                or not pending.hedge_eligible
                or pending.is_hedge
                or now - pending.enqueued_at < self._hedge_delay
            ):
                continue
            candidates = [
                h for h in self._handles
                if h.healthy and not h.draining
                and h.worker_id != pending.worker_id
                and h.breaker.state == _CircuitBreaker.CLOSED
            ]
            if not candidates:
                pending.hedge_eligible = False
                continue
            self._rr += 1
            target = candidates[self._rr % len(candidates)]
            copy = _Pending(pending.header, pending.body, pending.codec,
                            pending.on_done, target.worker_id,
                            no_retry=True, is_hedge=True)
            try:
                self._enqueue_locked(target, copy)
            except OverloadedError:
                pending.hedge_eligible = False
                continue
            hedge = _Hedge(pending, copy)
            pending.hedge = hedge
            copy.hedge = hedge
            self._counters["hedged_requests"] += 1

    def _process_deferred_locked(
        self, now: float,
        deliveries: List[Tuple[_Pending, BaseException, Optional[str]]],
    ) -> None:
        """Re-dispatch crash-orphaned reads whose backoff elapsed."""
        still: List[Tuple[float, _Pending]] = []
        for due_at, pending in self._deferred:
            if pending.deadline_at is not None and now >= pending.deadline_at:
                self._counters["deadline_expired_supervisor"] += 1
                deliveries.append(
                    (pending, self._deadline_error(pending, now), None)
                )
                continue
            if now < due_at:
                still.append((due_at, pending))
                continue
            entry = self._table.get(pending.dataset)
            try:
                if entry is not None and entry.mutable:
                    target = self._handle_for_locked(entry.home)
                    if target is None:
                        raise WorkerFailedError(
                            f"dataset {pending.dataset!r} has no home worker"
                        )
                else:
                    target = self._next_dispatch_locked()
                pending.worker_id = target.worker_id
                self._enqueue_locked(target, pending)
                self._counters["retried_requests"] += 1
            except (WorkerFailedError, OverloadedError) as exc:
                deliveries.append((pending, exc, "failed_requests"))
        self._deferred = still

    def _on_crash_locked(
        self, handle: _WorkerHandle, now: float
    ) -> List[Tuple[_Pending, BaseException, Optional[str]]]:
        handle.healthy = False
        self._counters["crashes_detected"] += 1
        self._breaker_failure_locked(handle, now)
        exitcode = handle.process.exitcode
        dead_id = handle.worker_id
        failures: List[Tuple[_Pending, BaseException, Optional[str]]] = []

        # Re-home mutable datasets whose home just died: replay the attach
        # frame plus the acknowledged journal onto the least-loaded healthy
        # worker.  FIFO inboxes order the replay before any rerouted reads.
        for name, entry in self._table.items():
            if not entry.mutable or entry.home != dead_id:
                continue
            entry.checkpointing = False  # any outstanding snapshot died too
            try:
                self._rehome_locked(name, entry)
            except WorkerFailedError:
                entry.home = None  # orphaned until a worker comes back

        # In-flight on the dead worker: reads enter the budgeted-backoff
        # retry path, everything else fails loudly (a write may or may not
        # have applied).  A hedged read whose sibling still races elsewhere
        # is simply dropped -- the sibling covers it.
        dead_rids = [rid for rid, p in self._inflight.items()
                     if p.worker_id == dead_id]
        for rid in dead_rids:
            pending = self._inflight.pop(rid)
            if pending.hedge is not None:
                hedge = pending.hedge
                if hedge.done:
                    continue
                sibling = hedge.sibling(pending)
                if sibling.rid in self._inflight:
                    sibling.hedge = None
                    continue
                pending.hedge = None
            if (
                not pending.no_retry
                and pending.retries < self._policy.read_retry_budget
            ):
                pending.retries += 1
                backoff = self._policy.retry_backoff_seconds * (
                    2 ** (pending.retries - 1)
                )
                backoff *= 0.5 + self._jitter.random()
                self._deferred.append((now + backoff, pending))
                continue
            failures.append((pending, WorkerFailedError(
                f"worker {dead_id} died (exit {exitcode}) holding "
                f"{pending.op!r} for dataset {pending.dataset!r}"
            ), "failed_requests"))

        backoff = self._policy.worker_restart_backoff_seconds * (
            2 ** handle.restart_count
        )
        handle.next_restart_at = now + backoff
        if handle.restart_count >= self._policy.worker_restart_attempts:
            handle.lost = True
            self._counters["workers_lost"] += 1
        return failures

    def _rehome_locked(self, name: str, entry: _AttachEntry) -> None:
        new_home = self._least_loaded_locked()
        entry.home = new_home.worker_id
        self._counters["rehomed_datasets"] += 1
        frames = [(entry.header, entry.body, entry.codec)] + list(entry.journal)
        for fheader, fbody, fcodec in frames:
            try:
                self._enqueue_locked(
                    new_home,
                    _Pending(fheader, fbody, fcodec, self._replay_done,
                             new_home.worker_id, no_retry=True, internal=True),
                )
            except OverloadedError:
                self._counters["replay_errors"] += 1

    def _replay_done(self, rheader: Dict[str, Any], rbody: bytes, rcodec: int) -> None:
        if not rheader.get("ok"):
            with self._lock:
                self._counters["replay_errors"] += 1

    def _restart(self, handle: _WorkerHandle) -> None:
        # Spawn outside the lock (it forks an interpreter); adopt under it.
        try:
            replacement = self._spawn(
                handle.worker_id, handle.generation + 1, with_plan=False
            )
        except Exception:
            with self._lock:
                handle.restart_count += 1
                if handle.restart_count > self._policy.worker_restart_attempts:
                    if not handle.lost:
                        handle.lost = True
                        self._counters["workers_lost"] += 1
                    return
                backoff = self._policy.worker_restart_backoff_seconds * (
                    2 ** handle.restart_count
                )
                handle.next_restart_at = time.monotonic() + backoff
            return
        with self._lock:
            if self._closed:
                replacement.process.terminate()
                return
            handle.process = replacement.process
            handle.inbox = replacement.inbox
            handle.generation = replacement.generation
            handle.restart_count += 1
            # The slot's breaker survives the restart on purpose; the new
            # process must prove itself through the half-open probe.
            # Replay the attach table: every immutable dataset, plus any
            # orphaned mutable home this worker can adopt (unless it is
            # draining -- an operator is taking it out of rotation).
            for name, entry in self._table.items():
                if entry.mutable:
                    if entry.home is None and not handle.draining:
                        entry.home = handle.worker_id
                        self._counters["rehomed_datasets"] += 1
                        frames = [(entry.header, entry.body, entry.codec)]
                        frames += list(entry.journal)
                    else:
                        continue
                else:
                    frames = [(entry.header, entry.body, entry.codec)]
                for fheader, fbody, fcodec in frames:
                    try:
                        self._enqueue_locked(
                            handle,
                            _Pending(fheader, fbody, fcodec, self._replay_done,
                                     handle.worker_id, no_retry=True,
                                     internal=True),
                        )
                    except OverloadedError:
                        self._counters["replay_errors"] += 1
            handle.healthy = True
            self._counters["worker_restarts"] += 1

    # -- error delivery --------------------------------------------------------

    def _deliver_error(
        self,
        pending: _Pending,
        error: BaseException,
        counter: Optional[str] = "failed_requests",
    ) -> None:
        if counter is not None:
            with self._lock:
                self._counters[counter] += 1
        header = {"rid": pending.header.get("rid"), "ok": False,
                  "op": pending.op}
        body = protocol.encode_body(protocol.error_payload(error), pending.codec)
        pending.on_done(header, body, pending.codec)
