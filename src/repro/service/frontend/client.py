"""Sync client for the serving front.

:class:`RemoteClient` speaks the frame protocol over TCP with one
connection *per calling thread* (thread-local sockets: the workload
drivers run N closed-loop threads, and each gets its own pipelined-free,
request-response stream).  :meth:`RemoteClient.attach` returns a
:class:`RemoteDataset` that duck-types the local
:class:`~repro.service.dataset.Dataset` session surface the workload
harness binds against -- ``kinds`` / ``name`` / ``mutable`` /
``dataset()`` / ``query`` / ``query_batch`` / ``apply_changes`` /
``stats`` / ``detach`` -- so ``run_closed_loop`` / ``run_open_loop``
drive the front end with unchanged specs and distributions::

    client = RemoteClient(*front.address)
    ds = client.attach("events", data, kinds=["list-membership"], mutable=True)
    report = run_closed_loop(ds, spec, threads=4, operations=10_000)

Structured error frames re-raise as their library exception classes
(:func:`~repro.service.frontend.protocol.raise_remote`); transport
failures raise :class:`~repro.core.errors.ProtocolError` and are counted
in ``client.protocol_errors``, which CI's frontend smoke asserts stays 0.

Resilience (idempotent reads only -- ``ping`` / ``query`` /
``query_batch`` / ``stats``):

* a ``deadline_ms`` budget (client-wide default, per-dataset via
  :meth:`RemoteDataset.set_deadline`, or per-request) rides the frame
  header end to end and bounds the local socket wait;
* ``Overloaded`` / ``WorkerFailed`` responses are retried with jittered
  exponential backoff up to ``retry_budget`` attempts (counted in
  ``client.retries``), never past the deadline;
* a broken socket (``ConnectionResetError`` / ``BrokenPipeError`` / a
  clean EOF) is transparently reconnected **once** per request (counted
  in ``client.reconnects``).

Writes (``attach`` / ``apply_changes`` / ``detach``) never retry and
never resend after a reconnect: a lost connection mid-write may or may
not have applied, and answers must never be silently wrong -- the
failure surfaces as :class:`~repro.core.errors.ProtocolError`.

:func:`drive_batches` is the module-level load generator used by the
scaling benchmark and CI: importable by name, so ``multiprocessing`` can
spawn one generator per process and the client side of the measurement
scales past one GIL just like the worker side does.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import (
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    WorkerFailedError,
)
from repro.service.frontend import protocol

__all__ = ["RemoteClient", "RemoteDataset", "drive_batches"]

#: Ops safe to resend: reads with no server-side effects.
_IDEMPOTENT_OPS = frozenset({"ping", "query", "query_batch", "stats"})


class RemoteClient:
    """One serving-front endpoint, shared safely across threads."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        codec: Optional[int] = None,
        timeout: float = 60.0,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        deadline_ms: Optional[float] = None,
        retry_budget: int = 2,
        retry_backoff_seconds: float = 0.01,
    ):
        self._host = host
        self._port = port
        self._codec = protocol.default_codec() if codec is None else codec
        self._timeout = timeout
        self._max_frame_bytes = max_frame_bytes
        #: Default end-to-end budget attached to every request; None means
        #: no deadline unless the call site provides one.
        self._deadline_ms = deadline_ms
        self._retry_budget = retry_budget
        self._retry_backoff = retry_backoff_seconds
        # Jitter perturbs retry *timing* only; fixed seed keeps runs
        # reproducible.
        self._rng = random.Random(0xC11E)
        self._local = threading.local()
        self._conns_lock = threading.Lock()
        self._conns: List[socket.socket] = []
        self._errors_lock = threading.Lock()
        #: Transport/protocol failures observed by this client.  Zero on a
        #: healthy front: structured service errors do not count, and
        #: neither does a transparent reconnect that succeeds.
        self.protocol_errors = 0
        #: Idempotent reads resent after backoff (Overloaded/WorkerFailed).
        self.retries = 0
        #: Broken sockets transparently re-dialed for idempotent reads.
        self.reconnects = 0

    def set_deadline(self, deadline_ms: Optional[float]) -> None:
        """Set (or clear, with None) the client-wide default budget."""
        self._deadline_ms = deadline_ms

    # -- transport -------------------------------------------------------------

    def _connection(self) -> Tuple[socket.socket, Any, int]:
        state = getattr(self._local, "state", None)
        if state is None:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            stream = sock.makefile("rwb")
            state = [sock, stream, 0]
            self._local.state = state
            with self._conns_lock:
                self._conns.append(sock)
        return state

    def _drop_connection(self) -> None:
        state = getattr(self._local, "state", None)
        if state is not None:
            self._local.state = None
            try:
                state[1].close()
                state[0].close()
            except OSError:
                pass
            with self._conns_lock:
                if state[0] in self._conns:
                    self._conns.remove(state[0])

    def _count_protocol_error(self) -> None:
        with self._errors_lock:
            self.protocol_errors += 1

    def request(self, op: str, *, dataset: Optional[str] = None,
                value: Any = None, deadline_ms: Optional[float] = None) -> Any:
        """One request-response exchange on this thread's connection.

        Idempotent reads get the resilience envelope (budgeted backoff
        retries, one transparent reconnect, deadline accounting); writes
        take exactly one shot and fail loudly.
        """
        if deadline_ms is None:
            deadline_ms = self._deadline_ms
        idempotent = op in _IDEMPOTENT_OPS
        start = time.monotonic()
        attempt = 0
        reconnected = False
        while True:
            remaining = None
            if deadline_ms is not None:
                remaining = deadline_ms - (time.monotonic() - start) * 1000.0
                if remaining <= 0:
                    raise DeadlineExceededError(
                        f"request {op!r} ran out of budget on the client "
                        f"({deadline_ms} ms, including local retries)",
                        op=op, dataset=dataset,
                        elapsed_ms=(time.monotonic() - start) * 1000.0,
                        budget_ms=float(deadline_ms),
                    )
            try:
                return self._roundtrip(op, dataset, value, remaining)
            except (ConnectionResetError, BrokenPipeError) as exc:
                # The socket died under us.  A read can safely re-dial and
                # resend once; a write may already have applied, so it
                # must fail loudly instead.
                if idempotent and not reconnected:
                    reconnected = True
                    with self._errors_lock:
                        self.reconnects += 1
                    continue
                self._count_protocol_error()
                raise ProtocolError(
                    f"connection to serving front lost: {exc}"
                ) from exc
            except (OverloadedError, WorkerFailedError):
                if not idempotent or attempt >= self._retry_budget:
                    raise
                attempt += 1
                backoff = self._retry_backoff * (2 ** (attempt - 1))
                backoff *= 0.5 + self._rng.random()
                if remaining is not None:
                    backoff = min(backoff, max(0.0, remaining / 1000.0))
                with self._errors_lock:
                    self.retries += 1
                time.sleep(backoff)

    def _roundtrip(self, op: str, dataset: Optional[str], value: Any,
                   deadline_ms: Optional[float]) -> Any:
        """One frame out, one frame back.  Raises ``ConnectionResetError``
        / ``BrokenPipeError`` raw (the caller decides whether a resend is
        safe); everything else surfaces as library errors."""
        state = self._connection()
        state[2] += 1
        rid = state[2]
        header: Dict[str, Any] = {"op": op, "rid": rid, "dataset": dataset}
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        try:
            frame = protocol.pack_frame(
                header, value, codec=self._codec,
                max_frame_bytes=self._max_frame_bytes,
            )
        except ProtocolError:
            self._count_protocol_error()
            raise
        sock, stream = state[0], state[1]
        # Bound the socket wait by the budget (plus slack for the typed
        # error frame to come back) so an expiry is never a 60s stall.
        if deadline_ms is not None:
            sock.settimeout(min(self._timeout, deadline_ms / 1000.0 + 5.0))
        else:
            sock.settimeout(self._timeout)
        try:
            stream.write(frame)
            stream.flush()
            response = protocol.read_frame(
                stream, max_frame_bytes=self._max_frame_bytes
            )
        except ProtocolError:
            self._count_protocol_error()
            self._drop_connection()
            raise
        except (ConnectionResetError, BrokenPipeError):
            self._drop_connection()
            raise
        except OSError as exc:
            self._count_protocol_error()
            self._drop_connection()
            raise ProtocolError(f"connection to serving front lost: {exc}") from exc
        if response is None:
            # Clean EOF: the peer hung up between requests -- same
            # recovery story as a reset socket.
            self._drop_connection()
            raise ConnectionResetError("serving front closed the connection")
        rheader, rbody, rcodec = response
        if rheader.get("rid") not in (rid, None):
            self._count_protocol_error()
            self._drop_connection()
            raise ProtocolError(
                f"response rid {rheader.get('rid')} does not match request {rid}"
            )
        payload = protocol.decode_body(rbody, rcodec) if rbody else None
        if rheader.get("ok"):
            return payload
        protocol.raise_remote(payload)

    # -- the op surface --------------------------------------------------------

    def ping(self) -> bool:
        return self.request("ping", dataset="") == "pong"

    def query_batch_for(self, dataset: str,
                        pairs: Iterable[Tuple[str, Any]]) -> List[Any]:
        """``query_batch`` without holding a :class:`RemoteDataset`."""
        return self.request(
            "query_batch", dataset=dataset,
            value={"pairs": [tuple(pair) for pair in pairs]},
        )

    def attach(
        self,
        name: str,
        data: Any,
        *,
        kinds: Optional[Sequence[str]] = None,
        shards: int = 1,
        mutable: bool = False,
    ) -> "RemoteDataset":
        """Attach ``data`` on the front (every worker for immutable data,
        one home worker for mutable) and return the session facade."""
        ack = self.request(
            "attach",
            dataset=name,
            value={
                "name": name,
                "data": data,
                "kinds": list(kinds) if kinds is not None else None,
                "shards": shards,
                "mutable": mutable,
            },
        )
        return RemoteDataset(self, ack["name"], list(ack["kinds"]),
                             bool(ack["mutable"]), data)

    def close(self) -> None:
        with self._conns_lock:
            conns = list(self._conns)
            self._conns.clear()
        for sock in conns:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class RemoteDataset:
    """The remote twin of a :class:`~repro.service.dataset.Dataset` session.

    ``dataset()`` returns the locally held attach payload -- the same
    bind-time snapshot semantics the local harness has (templates bind
    against content as of binding; later remote writes do not re-shape
    already-bound templates).
    """

    def __init__(self, client: RemoteClient, name: str, kinds: List[str],
                 mutable: bool, data: Any):
        self._client = client
        self._name = name
        self._kinds = list(kinds)
        self._mutable = mutable
        self._data = data
        self._detached = False
        self._deadline_ms: Optional[float] = None

    def set_deadline(self, deadline_ms: Optional[float]) -> None:
        """Attach a ``deadline_ms`` budget to every request of this
        session (None clears it; the client-wide default still applies)."""
        self._deadline_ms = deadline_ms

    @property
    def name(self) -> str:
        return self._name

    @property
    def kinds(self) -> List[str]:
        return list(self._kinds)

    @property
    def mutable(self) -> bool:
        return self._mutable

    def dataset(self) -> Any:
        return self._data

    def query(self, kind: str, query: Any) -> Any:
        return self._client.request(
            "query", dataset=self._name, value={"kind": kind, "query": query},
            deadline_ms=self._deadline_ms,
        )

    def query_batch(self, pairs: Iterable[Tuple[str, Any]]) -> List[Any]:
        return self._client.request(
            "query_batch", dataset=self._name,
            value={"pairs": [tuple(pair) for pair in pairs]},
            deadline_ms=self._deadline_ms,
        )

    def apply_changes(self, changes: Iterable[Any]) -> Dict[str, Any]:
        return self._client.request(
            "apply_changes", dataset=self._name,
            value={"changes": list(changes)},
            deadline_ms=self._deadline_ms,
        )

    def stats(self) -> Dict[str, Any]:
        return self._client.request("stats", dataset=self._name,
                                    deadline_ms=self._deadline_ms)

    def detach(self) -> None:
        if self._detached:
            return
        self._detached = True
        self._client.request("detach", dataset=self._name)

    def __enter__(self) -> "RemoteDataset":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()


def drive_batches(
    host: str,
    port: int,
    batches: Sequence[Sequence[Tuple[str, Any]]],
    *,
    dataset: str,
    threads: int = 1,
    codec: Optional[int] = None,
) -> Dict[str, Any]:
    """Pump pre-generated query batches through the front, full tilt.

    Splits ``batches`` round-robin across ``threads`` connections and
    sends each as one ``query_batch`` frame.  Returns aggregate counts --
    ``queries``, ``batches``, ``errors``, ``degraded``, ``wrong`` is left
    to the caller since only it knows expected answers.  Runs inside load
    generator *processes* for the scaling benchmark (module-level, so
    ``multiprocessing`` spawn can import it by name).
    """
    client = RemoteClient(host, port, codec=codec)
    counts = {"queries": 0, "batches": 0, "errors": 0, "degraded": 0}
    counts_lock = threading.Lock()
    answers: Dict[int, List[Any]] = {}

    def run(thread_index: int) -> None:
        local = {"queries": 0, "batches": 0, "errors": 0, "degraded": 0}
        got: List[Any] = []
        for index in range(thread_index, len(batches), threads):
            batch = batches[index]
            try:
                result = client.query_batch_for(dataset, batch)
            except Exception:
                local["errors"] += 1
                got.append(None)
                continue
            local["batches"] += 1
            local["queries"] += len(batch)
            local["degraded"] += sum(
                1 for answer in result if getattr(answer, "partial", False)
            )
            got.append(result)
        with counts_lock:
            for key, delta in local.items():
                counts[key] += delta
            answers[thread_index] = got

    workers = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    client.close()
    counts["answers"] = [answers[i] for i in range(threads)]
    return counts
