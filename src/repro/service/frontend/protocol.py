"""Versioned, length-prefixed wire format for the serving front.

One frame on the wire::

    magic    2 bytes   b"PF"
    version  u8        PROTOCOL_VERSION (any of SUPPORTED_VERSIONS accepted)
    codec    u8        0 = JSON, 1 = msgpack (msgpack only if installed)
    hlen     u16 BE    header byte length
    blen     u32 BE    body byte length
    header   hlen bytes   codec-encoded *plain* dict (op, rid, dataset, ok)
    body     blen bytes   codec-encoded *tagged* value (params / answer / error)

The header carries only what the gateway needs to route and admit a
request -- the op name, the client's request id and the dataset name -- so
the gateway never decodes the body: it relays the opaque body bytes to a
worker process, which pays the decode cost in parallel with every other
worker.  Protocol v2 adds one *optional* header field: ``deadline_ms``,
the request's remaining end-to-end budget in milliseconds at send time.
The header is a plain dict, so v1 frames (no field) decode unchanged --
a frame without a deadline simply has none, and v1 peers keep working
against a v2 front.  Frames whose total size exceeds ``max_frame_bytes`` are rejected
with :class:`~repro.core.errors.ProtocolError` *before* the body is read:
the gateway refuses to buffer what it will not serve.

Bodies are encoded through a small tagged codec (:func:`encode_value` /
:func:`decode_value`) that round-trips everything the serving surface
speaks -- tuples vs lists, sets, bytes, the change dataclasses of
:mod:`repro.incremental.changes` and
:class:`~repro.service.faults.DegradedAnswer` -- under both JSON and
msgpack.  msgpack is optional: when the package is absent the codec byte
simply never says 1, and a peer sending msgpack gets a structured
:class:`~repro.core.errors.ProtocolError` back.

Errors travel as structured frames: ``{"type": <exception class name>,
"message": ...}`` with ``ok=False`` in the header.  :func:`raise_remote`
maps the name back onto the :class:`~repro.core.errors.ReproError`
hierarchy, so a remote :class:`~repro.core.errors.UnknownDatasetError` is
raised as exactly that class client-side; unknown names degrade to
:class:`~repro.core.errors.ServiceError` (never a silent success).

    >>> from repro.service.frontend import protocol
    >>> raw = protocol.pack_frame({"op": "query", "rid": 1, "dataset": "d"},
    ...                           {"kind": "list-membership", "query": 7})
    >>> header, body, codec = protocol.unpack_frame(raw)
    >>> header["op"], protocol.decode_body(body, codec)["query"]
    ('query', 7)
"""

from __future__ import annotations

import base64
import io
import json
import struct
from typing import Any, BinaryIO, Callable, Dict, Optional, Tuple

from repro.core import errors as _errors
from repro.core.errors import ProtocolError
from repro.incremental.changes import (
    ChangeKind,
    EdgeChange,
    PointWrite,
    TupleChange,
)
from repro.service.faults import DegradedAnswer

try:  # pragma: no cover - exercised only where msgpack is installed
    import msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - the baked image has no msgpack
    msgpack = None

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "MAGIC",
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "DEFAULT_MAX_FRAME_BYTES",
    "REQUEST_OPS",
    "default_codec",
    "encode_value",
    "decode_value",
    "encode_body",
    "decode_body",
    "pack_frame",
    "unpack_frame",
    "read_frame",
    "read_frame_async",
    "error_payload",
    "raise_remote",
]

MAGIC = b"PF"
#: The version this side *emits*: 2 (optional ``deadline_ms`` header field).
PROTOCOL_VERSION = 2
#: Every version this side *accepts*.  v1 frames are identical on the wire
#: except that their headers never carry ``deadline_ms``.
SUPPORTED_VERSIONS = (1, 2)
CODEC_JSON = 0
CODEC_MSGPACK = 1
#: 8 MiB: comfortably holds a 2^16-element attach payload or a
#: multi-thousand-query batch, small enough that one bad peer cannot make
#: the gateway buffer unboundedly.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

_PREFIX = struct.Struct(">2sBBHI")

#: Every request op a frontend peer may send.  ``snapshot`` returns a
#: dataset's current content + version; the supervisor uses it to
#: checkpoint mutable-dataset journals (bounded re-home replay).
REQUEST_OPS = frozenset(
    {"attach", "query", "query_batch", "apply_changes", "stats", "detach",
     "ping", "snapshot"}
)

_CHANGE_TYPES: Dict[str, type] = {
    "TupleChange": TupleChange,
    "EdgeChange": EdgeChange,
    "PointWrite": PointWrite,
}


def default_codec() -> int:
    """msgpack when available, JSON otherwise."""
    return CODEC_MSGPACK if msgpack is not None else CODEC_JSON


# -- tagged value codec --------------------------------------------------------
#
# Scalars pass through; containers and domain types become {"$": tag, ...}
# dicts, which both JSON and msgpack carry natively.  Decode rejects
# unknown tags instead of guessing.


def encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        if isinstance(value, DegradedAnswer):
            return {
                "$": "deg",
                "v": bool(value),
                "reason": value.reason,
                "shards": list(value.failed_shards),
            }
        return value
    if isinstance(value, tuple):
        return {"$": "t", "v": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"$": "l", "v": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        return {
            "$": "d",
            "v": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    if isinstance(value, frozenset):
        return {"$": "fs", "v": sorted((encode_value(item) for item in value), key=repr)}
    if isinstance(value, set):
        return {"$": "s", "v": sorted((encode_value(item) for item in value), key=repr)}
    if isinstance(value, (bytes, bytearray)):
        return {"$": "b", "v": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, ChangeKind):
        return {"$": "ck", "v": value.value}
    if isinstance(value, TupleChange):
        return {
            "$": "c",
            "c": "TupleChange",
            "v": {"kind": value.kind.value, "row": encode_value(value.row)},
        }
    if isinstance(value, EdgeChange):
        return {
            "$": "c",
            "c": "EdgeChange",
            "v": {
                "kind": value.kind.value,
                "source": value.source,
                "target": value.target,
            },
        }
    if isinstance(value, PointWrite):
        return {
            "$": "c",
            "c": "PointWrite",
            "v": {"position": value.position, "value": encode_value(value.value)},
        }
    raise ProtocolError(
        f"cannot encode {type(value).__name__} for the wire; supported: "
        "scalars, tuple/list/dict/set/bytes, change objects, DegradedAnswer"
    )


def decode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        # msgpack may deliver arrays where JSON delivered them too; bare
        # arrays only occur inside tags, so reject them at top level.
        raise ProtocolError("bare array outside a tagged container")
    if not isinstance(value, dict):
        raise ProtocolError(f"undecodable wire value of type {type(value).__name__}")
    tag = value.get("$")
    if tag == "t":
        return tuple(decode_value(item) for item in value["v"])
    if tag == "l":
        return [decode_value(item) for item in value["v"]]
    if tag == "d":
        return {decode_value(k): decode_value(v) for k, v in value["v"]}
    if tag == "s":
        return {decode_value(item) for item in value["v"]}
    if tag == "fs":
        return frozenset(decode_value(item) for item in value["v"])
    if tag == "b":
        return base64.b64decode(value["v"])
    if tag == "ck":
        return ChangeKind(value["v"])
    if tag == "deg":
        return DegradedAnswer(
            bool(value["v"]),
            reason=value.get("reason", "shard failure"),
            failed_shards=tuple(value.get("shards", ())),
        )
    if tag == "c":
        cls = _CHANGE_TYPES.get(value.get("c"))
        fields = value.get("v", {})
        if cls is TupleChange:
            return TupleChange(ChangeKind(fields["kind"]), decode_value(fields["row"]))
        if cls is EdgeChange:
            return EdgeChange(
                ChangeKind(fields["kind"]), fields["source"], fields["target"]
            )
        if cls is PointWrite:
            return PointWrite(fields["position"], decode_value(fields["value"]))
        raise ProtocolError(f"unknown change type {value.get('c')!r}")
    raise ProtocolError(f"unknown wire tag {tag!r}")


def _dumps(obj: Any, codec: int) -> bytes:
    if codec == CODEC_JSON:
        return json.dumps(obj, separators=(",", ":"), allow_nan=False).encode("utf-8")
    if codec == CODEC_MSGPACK:
        if msgpack is None:
            raise ProtocolError("msgpack codec requested but msgpack is not installed")
        return msgpack.packb(obj, use_bin_type=True)  # pragma: no cover
    raise ProtocolError(f"unknown codec {codec}")


def _loads(raw: bytes, codec: int) -> Any:
    try:
        if codec == CODEC_JSON:
            return json.loads(raw.decode("utf-8"))
        if codec == CODEC_MSGPACK:
            if msgpack is None:
                raise ProtocolError(
                    "peer sent msgpack but msgpack is not installed here"
                )
            return msgpack.unpackb(raw, raw=False)  # pragma: no cover
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    raise ProtocolError(f"unknown codec {codec}")


def encode_body(value: Any, codec: int = CODEC_JSON) -> bytes:
    return _dumps(encode_value(value), codec)


def decode_body(body: bytes, codec: int = CODEC_JSON) -> Any:
    return decode_value(_loads(body, codec))


# -- frame packing -------------------------------------------------------------


def pack_frame(
    header: Dict[str, Any],
    body_value: Any = None,
    *,
    body_bytes: Optional[bytes] = None,
    codec: int = CODEC_JSON,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """One wire frame: prefix + header + body.

    ``body_bytes`` relays pre-encoded bytes untouched (the gateway path);
    otherwise ``body_value`` is run through the tagged codec.  The header
    must stay a flat dict of scalars -- it is the routing surface, not the
    payload.
    """
    hbytes = _dumps(header, codec)
    if body_bytes is None:
        body_bytes = _dumps(encode_value(body_value), codec)
    if len(hbytes) > 0xFFFF:
        raise ProtocolError(f"frame header of {len(hbytes)} bytes exceeds u16")
    total = _PREFIX.size + len(hbytes) + len(body_bytes)
    if total > max_frame_bytes:
        raise ProtocolError(
            f"frame of {total} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return (
        _PREFIX.pack(MAGIC, PROTOCOL_VERSION, codec, len(hbytes), len(body_bytes))
        + hbytes
        + body_bytes
    )


def _parse_prefix(
    prefix: bytes, max_frame_bytes: int
) -> Tuple[int, int, int]:
    magic, version, codec, hlen, blen = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version}; this side speaks "
            f"{sorted(SUPPORTED_VERSIONS)}"
        )
    if codec not in (CODEC_JSON, CODEC_MSGPACK):
        raise ProtocolError(f"unknown codec byte {codec}")
    if _PREFIX.size + hlen + blen > max_frame_bytes:
        raise ProtocolError(
            f"frame of {_PREFIX.size + hlen + blen} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    return codec, hlen, blen


def unpack_frame(
    raw: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Tuple[Dict[str, Any], bytes, int]:
    """Parse one complete frame held in memory -> (header, body bytes, codec)."""
    header, body, codec = _read_frame(io.BytesIO(raw).read, max_frame_bytes)
    return header, body, codec


def _read_exact(read: Callable[[int], bytes], n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = read(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return None  # clean EOF on a frame boundary
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame(
    read: Callable[[int], bytes], max_frame_bytes: int
) -> Tuple[Dict[str, Any], bytes, int]:
    prefix = _read_exact(read, _PREFIX.size)
    if prefix is None:
        raise EOFError
    codec, hlen, blen = _parse_prefix(prefix, max_frame_bytes)
    hbytes = _read_exact(read, hlen) if hlen else b""
    body = _read_exact(read, blen) if blen else b""
    if (hlen and hbytes is None) or (blen and body is None):
        raise ProtocolError("connection closed mid-frame")
    header = _loads(hbytes, codec)
    if not isinstance(header, dict):
        raise ProtocolError("frame header is not a mapping")
    return header, body, codec


def read_frame(
    stream: BinaryIO, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[Tuple[Dict[str, Any], bytes, int]]:
    """Read one frame from a blocking binary stream.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`~repro.core.errors.ProtocolError` on truncation, bad magic,
    version mismatch or an oversized frame (the length prefix is checked
    *before* the body is read).
    """
    try:
        return _read_frame(stream.read, max_frame_bytes)
    except EOFError:
        return None


async def read_frame_async(
    reader: Any, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[Tuple[Dict[str, Any], bytes, int]]:
    """Async twin of :func:`read_frame` for an :class:`asyncio.StreamReader`."""
    import asyncio

    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    codec, hlen, blen = _parse_prefix(prefix, max_frame_bytes)
    try:
        hbytes = await reader.readexactly(hlen) if hlen else b""
        body = await reader.readexactly(blen) if blen else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    header = _loads(hbytes, codec)
    if not isinstance(header, dict):
        raise ProtocolError("frame header is not a mapping")
    return header, body, codec


# -- structured error mapping --------------------------------------------------

#: Exception class name -> class, for every public repro error.  Built once
#: from the error module itself so new error types map without edits here.
ERROR_TYPES: Dict[str, type] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, _errors.ReproError)
}


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """The structured body of an error frame.

    Errors exposing a ``wire_details()`` method (e.g.
    :class:`~repro.core.errors.DeadlineExceededError` with its op/dataset/
    elapsed/budget fields) ship those fields alongside type and message, so
    the client-side re-raise carries the same structure the server saw.
    """
    payload: Dict[str, Any] = {"type": type(exc).__name__, "message": str(exc)}
    details = getattr(exc, "wire_details", None)
    if callable(details):
        fields = details()
        if fields:
            payload["details"] = fields
    return payload


def raise_remote(payload: Dict[str, Any]) -> None:
    """Re-raise a structured error frame as its library exception class.

    Names outside the :class:`~repro.core.errors.ReproError` hierarchy
    (a worker bug, say) surface as :class:`~repro.core.errors.ServiceError`
    carrying the original type name -- loud and catchable, never silent.
    ``details`` fields (when the frame carries them and the class accepts
    them as keyword arguments) are restored onto the raised exception.
    """
    name = payload.get("type", "ServiceError")
    message = payload.get("message", "remote error")
    cls = ERROR_TYPES.get(name)
    if cls is None:
        raise _errors.ServiceError(f"remote {name}: {message}")
    details = payload.get("details")
    if isinstance(details, dict) and details:
        try:
            raise cls(message, **details)
        except TypeError:
            pass  # class does not take these kwargs; fall through
    raise cls(message)
