"""The serving front: escape the single process.

One Python process serves at most one GIL's worth of queries; the front
splits the stack into an asyncio gateway and N worker processes that
share nothing in memory but everything on disk:

* :mod:`~repro.service.frontend.protocol` -- versioned, length-prefixed
  frames whose routing header the gateway reads and whose body only the
  workers decode; structured errors map back onto the
  :class:`~repro.core.errors.ServiceError` hierarchy.
* :mod:`~repro.service.frontend.server` -- :class:`Gateway` (admission
  permits per dataset, watermark backpressure, explicit ``Overloaded``
  shedding) and :class:`ServingFront`, the one-call harness.
* :mod:`~repro.service.frontend.supervisor` -- :class:`Supervisor`:
  per-dataset routing, crash detection, retry-once for in-flight reads,
  journal-replay re-homing of mutable datasets, restart with backoff.
* :mod:`~repro.service.frontend.workers` -- the worker process: one
  full-catalog :class:`~repro.service.engine.QueryEngine` per process
  over the *shared* :class:`~repro.service.artifacts.ArtifactStore`
  directory.  Content addressing is the coherence protocol: the first
  worker to attach a dataset builds and persists its Pi-structures, the
  rest load the same bytes by key.
* :mod:`~repro.service.frontend.client` -- :class:`RemoteClient` /
  :class:`RemoteDataset`, the sync client whose sessions duck-type
  :class:`~repro.service.dataset.Dataset` so the workload drivers run
  against the front unchanged.
"""

from repro.service.frontend.client import RemoteClient, RemoteDataset, drive_batches
from repro.service.frontend.server import Gateway, GatewayConfig, ServingFront
from repro.service.frontend.supervisor import Supervisor

__all__ = [
    "Gateway",
    "GatewayConfig",
    "RemoteClient",
    "RemoteDataset",
    "ServingFront",
    "Supervisor",
    "drive_batches",
]
