"""Mutable datasets: delta-maintained Pi-structures behind versioned handles.

The paper's amortization argument (preprocess once in PTIME, serve many
polylog queries) meets production traffic here: datasets *mutate*.  Section
4(7) analyses incremental evaluation against |CHANGED| = |dD| + |dO| -- the
payoff of preprocessing survives updates only if maintaining Pi(D) costs a
function of the change, not of |D|.  This module provides the shared write
machinery:

* :class:`MutableContent` -- the private working copy of a dataset plus the
  bag bookkeeping (validation, no-op screening, change application) shared
  by every mutable serving surface: the single-kind :class:`DatasetHandle`
  below and the multi-kind :class:`~repro.service.dataset.Dataset` sessions
  created by ``QueryEngine.attach(..., mutable=True)``;
* :class:`SnapshotLatch` -- the writer-preferring reader--writer latch that
  turns "apply a batch" into an atomic version step for every reader;
* :func:`advance_lineage` -- the O(|CHANGED|) versioned-fingerprint chain
  that gives every applied batch a distinct artifact identity without an
  O(|D|) re-hash.

``QueryEngine.open_dataset(kind, data)`` returns a :class:`DatasetHandle`
serving **one** kind; ``handle.apply_changes(batch)`` routes a batch of
:mod:`repro.incremental.changes` records to the scheme's
``PiScheme.apply_delta`` hook, mutating the structure in place in
O(|CHANGED| * polylog).  Schemes without a hook -- and sharded registrations
-- fall back automatically to a rebuild through the engine, where
content-addressed shard artifacts turn the rebuild into a
touched-shards-only build.  Dirty structures are re-persisted
asynchronously (write-behind); ``flush()``/``close()`` force the write.

For datasets served under *several* kinds at once, prefer the dataset-first
surface: ``engine.attach(name, data, mutable=True)`` (see
:mod:`repro.service.dataset`), which folds each batch into every served
structure behind one latch.

    >>> from repro.queries import membership_class, sorted_run_scheme
    >>> from repro.service.engine import QueryEngine
    >>> from repro.incremental.changes import ChangeKind, TupleChange
    >>> engine = QueryEngine()
    >>> engine.register("membership", membership_class(), sorted_run_scheme())
    >>> handle = engine.open_dataset("membership", (3, 1, 4))
    >>> handle.query(9)
    False
    >>> _ = handle.apply_changes([TupleChange(ChangeKind.INSERT, (9,))])
    >>> handle.query(9), handle.version
    (True, 1)
    >>> engine.stats().per_kind["membership"].delta_batches
    1
    >>> handle.close(); engine.close()
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.cost import CostTracker
from repro.core.errors import (
    DeltaError,
    SchemaError,
    ServiceError,
    WriteBehindError,
)
from repro.service import faults
from repro.incremental.changes import (
    ChangeKind,
    ChangeLog,
    EdgeChange,
    PointWrite,
    TupleChange,
)
from repro.service.artifacts import ArtifactKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.engine import QueryEngine, _Registration

__all__ = ["SnapshotLatch", "MutableContent", "DatasetHandle", "advance_lineage"]


class SnapshotLatch:
    """A writer-preferring reader--writer latch for snapshot serving.

    Readers share the latch, so queries run concurrently; a writer excludes
    everyone, so a change batch is applied atomically with respect to every
    reader -- a query observes the version before the batch or the version
    after it, never the middle.  Writer preference (new readers queue behind
    a waiting writer) bounds writer latency under heavy read traffic.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        """Shared acquisition, plain-call form (the serving hot path).

        A ``@contextmanager`` generator costs a couple of microseconds per
        entry/exit -- real money next to a sub-microsecond untracked query
        kernel -- so the fast path pairs this with :meth:`release_read` in a
        ``try/finally`` instead of entering :meth:`read`.
        """
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Release one shared acquisition taken by :meth:`acquire_read`."""
        with self._condition:
            self._readers -= 1
            if not self._readers:
                self._condition.notify_all()

    @contextmanager
    def read(self):
        """Shared acquisition: any number of concurrent readers."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """Exclusive acquisition: waits out readers, blocks new ones."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._condition:
                self._writer_active = False
                self._condition.notify_all()


def advance_lineage(lineage: str, version: int, effective: Sequence[Any]) -> str:
    """Chain one applied batch into a versioned content identity.

    Version 0 is the plain dataset fingerprint; each applied batch chains
    the version counter *and the batch content* into the digest, in
    O(|CHANGED|) instead of an O(|D|) re-hash.  Two histories over equal
    base data share an identity exactly when their batches agree -- in which
    case their structures encode the same logical dataset -- while divergent
    histories can never clobber each other's persisted artifacts.
    """
    digest = hashlib.sha256()
    digest.update(lineage.encode("ascii"))
    digest.update(f"|delta-v{version}|".encode("ascii"))
    for change in effective:
        digest.update(repr(change).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def _is_graph(data: Any) -> bool:
    return hasattr(data, "add_edge") and hasattr(data, "edges") and hasattr(data, "n")


def _is_relation(data: Any) -> bool:
    return hasattr(data, "schema") and hasattr(data, "insert") and hasattr(data, "rows")


class MutableContent:
    """The working-copy half of a mutable dataset, independent of any kind.

    Owns a private mutable copy of the dataset (list / relation / graph) --
    the caller's object is never touched, and a fallback rebuild always has
    the post-batch content -- plus the bag bookkeeping that makes batch
    validation and no-op screening O(1) per change.  Both the single-kind
    :class:`DatasetHandle` and the multi-kind mutable
    :class:`~repro.service.dataset.Dataset` sessions delegate here, so the
    change semantics (atomic validation, phantom-delete screening, working
    application order) are defined exactly once.

    Not thread-safe on its own: callers serialize access through their
    :class:`SnapshotLatch`.
    """

    def __init__(self, data: Any, tracker: CostTracker, log: ChangeLog) -> None:
        self.tracker = tracker
        self.log = log
        self.working, self.row_shaped = self._copy_dataset(data)
        self.counts: Counter = self._initial_counts()
        self.row_ids = self._initial_row_ids()

    # -- working copies --------------------------------------------------------

    def _copy_dataset(self, data: Any) -> Tuple[Any, bool]:
        """A private mutable copy of ``data`` plus its element shape.

        ``row_shaped`` is True when elements are rows (tuples) rather than
        flat values -- it decides how ``TupleChange.row`` maps to elements.
        """
        if _is_relation(data):
            copy = type(data)(data.schema)
            for row in data.rows():
                copy.insert(row)
            return copy, True
        if _is_graph(data):
            return type(data)(data.n, data.edges()), False
        if isinstance(data, (tuple, list)):
            working = list(data)
            row_shaped = bool(working) and isinstance(working[0], (tuple, list))
            return working, row_shaped
        raise ServiceError(
            f"mutable serving supports sequence, relation and graph datasets; "
            f"got {type(data).__name__}"
        )

    def _initial_counts(self) -> Counter:
        if _is_relation(self.working):
            return Counter(self.working.rows())
        if _is_graph(self.working):
            return Counter()
        return Counter(self.working)

    def _initial_row_ids(self) -> Optional[dict]:
        """Live row -> row-id list for relations, so deletes are O(1) lookups
        instead of an O(|D|) scan under the write latch."""
        if not _is_relation(self.working):
            return None
        row_ids: dict = {}
        for row_id, row in self.working.scan(self.tracker):
            row_ids.setdefault(row, []).append(row_id)
        return row_ids

    def element(self, row: Sequence[Any]) -> Any:
        """The dataset element a ``TupleChange.row`` denotes."""
        if self.row_shaped:
            return tuple(row)
        if len(row) != 1:
            raise DeltaError(
                f"flat datasets take one-tuple rows, got arity {len(row)}"
            )
        return row[0]

    def canonical(self) -> Any:
        """A fresh snapshot of the working data, typed like the original.

        Always a new object, so the engine's identity-memoized fingerprints
        can never alias a mutated working copy.
        """
        if _is_relation(self.working):
            copy = type(self.working)(self.working.schema)
            for row in self.working.rows():
                copy.insert(row)
            return copy
        if _is_graph(self.working):
            return type(self.working)(self.working.n, self.working.edges())
        return tuple(self.working)

    # -- batch processing ------------------------------------------------------

    def validate(self, batch: Sequence[Any]) -> None:
        """Reject malformed batches before anything mutates (batch atomicity)."""
        for change in batch:
            if isinstance(change, TupleChange):
                element = self.element(change.row)
                if (
                    _is_relation(self.working)
                    and change.kind is ChangeKind.INSERT
                ):
                    try:
                        self.working.schema.validate_row(tuple(change.row))
                    except SchemaError as exc:
                        raise DeltaError(f"bad row {change.row!r}: {exc}") from exc
                elif self.row_shaped and self.counts:
                    arity = len(next(iter(self.counts)))
                    if len(tuple(element)) != arity:
                        raise DeltaError(
                            f"row arity {len(tuple(element))} != dataset arity {arity}"
                        )
            elif isinstance(change, EdgeChange):
                if not _is_graph(self.working):
                    raise DeltaError("EdgeChange targets a non-graph dataset")
                n = self.working.n
                if not (0 <= change.source < n and 0 <= change.target < n):
                    raise DeltaError(
                        f"edge ({change.source}, {change.target}) outside [0, {n})"
                    )
            elif isinstance(change, PointWrite):
                if _is_graph(self.working) or _is_relation(self.working):
                    raise DeltaError("PointWrite targets a non-positional dataset")
                if not 0 <= change.position < len(self.working):
                    raise DeltaError(
                        f"point write at {change.position} outside "
                        f"[0, {len(self.working)})"
                    )
                try:
                    hash(change.value)
                except TypeError as exc:
                    raise DeltaError(
                        f"point-write value {change.value!r} is not hashable"
                    ) from exc
            else:
                raise DeltaError(f"unknown change record {type(change).__name__}")

    def screen(self, batch: Sequence[Any]) -> List[Any]:
        """Drop no-op deletes (absent elements/edges) and track the bag counts.

        Phantom deletes must never reach a delta hook: the per-attribute
        selection indexes, for instance, would strip a payload a live row
        still accounts for.  The element counter makes the check O(1) per
        change.
        """
        effective: List[Any] = []
        overlay: dict = {}  # PointWrite positions already seen in this batch
        for change in batch:
            if isinstance(change, TupleChange):
                element = self.element(change.row)
                if change.kind is ChangeKind.DELETE:
                    if not self.counts[element]:
                        self.log.record(1, 0, f"no-op delete {element!r}")
                        continue
                    self.counts[element] -= 1
                else:
                    self.counts[element] += 1
            elif isinstance(change, EdgeChange) and change.kind is ChangeKind.DELETE:
                if not self.working.has_edge(change.source, change.target):
                    self.log.record(
                        1, 0, f"no-op delete edge ({change.source}, {change.target})"
                    )
                    continue
            elif isinstance(change, PointWrite):
                # An overwrite swaps one element of the bag for another; the
                # overlay keeps repeated writes to one slot in step before
                # the working copy itself is updated.
                old = overlay.get(change.position, self.working[change.position])
                self.counts[old] -= 1
                self.counts[change.value] += 1
                overlay[change.position] = change.value
            effective.append(change)
        return effective

    def apply(self, change: Any) -> None:
        """Fold one (validated, screened) change into the working dataset."""
        if isinstance(change, TupleChange):
            element = self.element(change.row)
            if _is_relation(self.working):
                if change.kind is ChangeKind.INSERT:
                    row_id = self.working.insert(element)
                    self.row_ids.setdefault(element, []).append(row_id)
                else:
                    # Screened: the element is live, so the id map has it.
                    self.working.delete(self.row_ids[element].pop())
            elif change.kind is ChangeKind.INSERT:
                self.working.append(element)
            else:
                self.working.remove(element)
        elif isinstance(change, EdgeChange):
            if change.kind is ChangeKind.INSERT:
                self.working.add_edge(change.source, change.target)
            else:
                self.working.remove_edge(change.source, change.target)
        else:  # PointWrite
            self.working[change.position] = change.value


class DatasetHandle:
    """One mutable dataset served under snapshot isolation, for one kind.

    Created by :meth:`repro.service.engine.QueryEngine.open_dataset`; not
    meant to be constructed directly.  The handle owns

    * a **working copy** of the dataset (a :class:`MutableContent`), so the
      caller's object is never mutated and a fallback rebuild always has the
      post-batch content;
    * a **private structure** -- for delta-capable monolithic schemes the
      resolved structure is re-privatized through the scheme codec, so
      in-place maintenance can never corrupt structures shared through the
      engine cache;
    * the **version counter** and the write-behind persistence state.

    Thread safety: any number of threads may call :meth:`query`
    concurrently with one writer calling :meth:`apply_changes`; the
    :class:`SnapshotLatch` serializes them.  Multiple concurrent writers are
    also safe (they serialize on the latch), though batches then apply in
    latch-acquisition order.

    The handle serves exactly the kind it was opened for.  To serve one
    mutable dataset under several kinds behind a single latch, use the
    dataset-first surface (``engine.attach(..., mutable=True)``; see
    :mod:`repro.service.dataset`).
    """

    def __init__(
        self,
        engine: "QueryEngine",
        kind: str,
        registration: "_Registration",
        data: Any,
    ) -> None:
        self._engine = engine
        self._kind = kind
        self._registration = registration
        self._latch = SnapshotLatch()
        self._persist_guard = threading.Lock()
        self._persist_future = None
        # Terminal write-behind store failure, surfaced by the next flush()
        # (a newer batch replacing the future must not drop it).
        self._persist_error: Optional[BaseException] = None
        self._persisted_version = 0
        self._version = 0
        self._closed = False
        self.tracker = CostTracker()
        self.log = ChangeLog()

        self._content = MutableContent(data, self.tracker, self.log)
        self._base_fingerprint = engine._fingerprint(data, kind=kind)
        self._lineage = self._base_fingerprint
        self._structure = self._private_structure(data)

    # -- structure ownership ---------------------------------------------------

    def _private_structure(self, data: Any) -> Any:
        """Resolve ``(kind, data)`` and privatize when maintenance mutates.

        Sharded registrations and schemes without ``apply_delta`` never
        mutate structures, so the engine-shared resolution is safe to hold.
        Delta-capable monolithic schemes get a private copy: a codec
        round-trip when serializable (keeps warm cache/store resolution),
        else a fresh private build.
        """
        scheme = self._registration.scheme
        if self._registration.shards > 1 or scheme.apply_delta is None:
            return self._engine.resolve(self._kind, data)
        if scheme.serializable:
            return scheme.load(scheme.dump(self._engine.resolve(self._kind, data)))
        started = time.perf_counter()
        structure = scheme.preprocess(data, self.tracker)
        self._engine._bump(
            self._kind, builds=1, build_seconds=time.perf_counter() - started
        )
        return structure

    # -- identity and versions -------------------------------------------------

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def version(self) -> int:
        """Monotonic count of applied (non-empty) change batches."""
        return self._version

    @property
    def dirty(self) -> bool:
        """True while a delta-maintained version awaits persistence."""
        return self._persisted_version < self._version

    def fingerprint(self) -> str:
        """The versioned content identity: a lineage hash of the history.

        Version 0 is the plain dataset fingerprint (the handle aliases the
        engine's ordinary artifact); later versions chain batches through
        :func:`advance_lineage`.
        """
        return self._lineage

    def artifact_key(self) -> ArtifactKey:
        """Identity of this version's artifact in cache/store terms."""
        return ArtifactKey(
            fingerprint=self.fingerprint(),
            scheme=self._registration.scheme.name,
            params=self._registration.params,
        )

    def dataset(self) -> Any:
        """A consistent snapshot of the current dataset content."""
        with self._latch.read():
            return self._content.canonical()

    # -- serving ---------------------------------------------------------------

    def _answer(self, query: Any) -> bool:
        """Evaluate one query over the current structure (latch held).

        The handle is the *analytic* mutable surface: evaluation charges the
        handle's own cost tracker (the |CHANGED|-vs-|D| accounting of the
        Section 4(7) experiments).  Untracked production serving goes
        through mutable :class:`~repro.service.dataset.Dataset` sessions.
        """
        registration = self._registration
        if self._structure is None:
            # A failed repair-rebuild dropped the structure (see
            # apply_changes); re-materialize from current content.  Benign
            # under the read latch: writers are excluded, so content is
            # stable and concurrent repairs build equivalent structures.
            self._structure = self._private_structure(self._content.canonical())
        started = time.perf_counter()
        if registration.shards > 1:
            answer = self._engine._planner.answer(
                self._kind, registration, self._structure, query, self.tracker
            )
        else:
            answer = registration.scheme.answer(self._structure, query, self.tracker)
        self._engine._count_serve(
            self._kind, queries=1, serve_seconds=time.perf_counter() - started
        )
        # Preserve an explicit DegradedAnswer marker; plain bool otherwise.
        return answer if isinstance(answer, faults.DegradedAnswer) else bool(answer)

    def query(self, query: Any) -> bool:
        """Answer one query against the current version (snapshot-consistent).

        Concurrent with other readers; serialized against writers by the
        latch, so the answer reflects a fully-applied version.
        """
        with self._latch.read():
            self._check_open()
            return self._answer(query)

    def query_batch(self, queries: Iterable[Any]) -> List[bool]:
        """Answer several queries against **one** version (batch-atomic).

        The read latch is held across the whole batch, so every answer
        reflects the same fully-applied version -- the multi-probe
        counterpart of :meth:`query`'s snapshot guarantee (and what the
        torn-snapshot stress test in ``tests/unit/test_mutable_engine.py``
        pins down).
        """
        with self._latch.read():
            self._check_open()
            return [self._answer(query) for query in queries]

    # -- mutation --------------------------------------------------------------

    def apply_changes(self, changes: Iterable[Any]) -> ChangeLog:
        """Apply one change batch atomically; returns the cumulative log.

        The batch is validated up front (malformed changes raise
        :class:`~repro.core.errors.DeltaError` with nothing applied), no-op
        deletes are screened out, and the remainder goes to the scheme's
        ``apply_delta`` hook -- O(|CHANGED| * polylog) in-place maintenance.
        When the scheme has no hook, the hook refuses the batch, or the kind
        is sharded, the handle falls back to resolving the post-batch
        content through the engine: sharded kinds rebuild only the touched
        shards (content-addressed artifacts), monolithic kinds rebuild in
        full.  Either way readers never observe an intermediate state.
        """
        batch = list(changes)
        with self._latch.write():
            self._check_open()
            self._content.validate(batch)
            effective = self._content.screen(batch)
            if not effective:
                # Every screened change was already logged by screen().
                self.log.record(0, 0, "batch screened to no-ops")
                return self.log
            registration = self._registration
            scheme = registration.scheme
            applied_by_delta = False
            torn = False
            started = time.perf_counter()
            if registration.shards == 1 and scheme.apply_delta is not None:
                try:
                    if faults._PLAN is not None:
                        faults.on_delta_apply(self._kind)
                    self._structure = scheme.apply_delta(
                        self._structure, effective, self.tracker
                    )
                    applied_by_delta = True
                except DeltaError:
                    # Contract: raised *before* mutating -- plain fallback.
                    applied_by_delta = False
                except Exception:
                    # Crashed mid-apply: the structure may be torn.  The
                    # batch still commits (content is the source of truth);
                    # the rebuild below repairs the structure, so no torn
                    # snapshot is ever published.
                    torn = True
            for change in effective:
                self._content.apply(change)
            self._version += 1
            self._lineage = advance_lineage(self._lineage, self._version, effective)
            elapsed = time.perf_counter() - started
            if applied_by_delta:
                self._engine._bump(
                    self._kind,
                    delta_batches=1,
                    delta_changes=len(effective),
                    delta_seconds=elapsed,
                )
                self._schedule_persist()
            else:
                try:
                    self._structure = self._private_structure(
                        self._content.canonical()
                    )
                except BaseException:
                    # Never leave a possibly-torn structure behind: drop it
                    # so the next query lazily re-materializes (see _answer)
                    # -- degraded-and-loud, never silently wrong.
                    self._structure = None
                    raise
                self._engine._bump(self._kind, fallback_rebuilds=1)
                if torn:
                    self._engine._bump(self._kind, write_rollbacks=1)
                if self._store_ready():
                    # Uniform durability: the rebuilt structure also lands
                    # under this version's key (the resolve above already
                    # persisted it content-addressed).
                    self._schedule_persist()
                else:
                    self._persisted_version = self._version
            self.log.record(
                len(effective),
                0,
                f"v{self._version}: {len(effective)} change(s) via "
                f"{'delta' if applied_by_delta else 'rebuild'}"
                + (f", {len(batch) - len(effective)} screened" if len(batch) != len(effective) else ""),
            )
            return self.log

    # -- write-behind persistence ----------------------------------------------

    def _store_ready(self) -> bool:
        return (
            self._engine._store is not None
            and self._registration.shards == 1
            and self._registration.scheme.dump is not None
        )

    def _schedule_persist(self) -> None:
        """Queue an asynchronous re-persist of the current dirty version."""
        if not self._store_ready():
            return
        target = self._version
        pool = self._engine._ensure_persist_pool()
        with self._persist_guard:
            self._persist_future = pool.submit(self._persist, target)

    def _persist(self, target: int) -> None:
        """Dump version ``target`` if still current and write it through.

        The dump runs under the read latch (a consistent snapshot; writers
        wait), the store write outside it.  A stale target -- a newer batch
        already applied -- is skipped; the newer batch queued its own task.

        Store failures (disk full, unwritable root) are retried with
        backoff per the recovery policy; a terminal failure is recorded and
        raised by the next :meth:`flush` -- even if a newer batch replaces
        this task's future, the error is never silently dropped.  The
        in-memory structure stays current either way; only durability lags.
        """
        with self._latch.read():
            if self._version != target or self._persisted_version >= target:
                return
            payload = self._registration.scheme.dump(self._structure)
            key = self.artifact_key()
        recovery = faults.policy()
        backoff = recovery.writebehind_backoff_seconds
        attempts = max(1, recovery.writebehind_attempts)
        for attempt in range(attempts):
            try:
                self._engine._store.put(key, payload)
                break
            except Exception as exc:
                if attempt + 1 < attempts:
                    self._engine._bump(self._kind, writebehind_retries=1)
                    time.sleep(backoff)
                    backoff *= 2
                    continue
                self._engine._bump(self._kind, writebehind_failures=1)
                with self._persist_guard:
                    self._persist_error = exc
                return
        with self._persist_guard:
            self._persisted_version = max(self._persisted_version, target)
            self._persist_error = None

    def flush(self) -> None:
        """Write-behind barrier: returns with the current version durable.

        Raises :class:`~repro.core.errors.WriteBehindError` (with the store
        failure as ``__cause__``) when write-behind exhausted its retries
        and a final synchronous attempt here still fails -- a stale on-disk
        artifact is surfaced, never silently dropped.
        """
        with self._persist_guard:
            future = self._persist_future
        if future is not None:
            future.result()
        if self._store_ready():
            with self._latch.read():
                target = self._version
            self._persist(target)
        with self._persist_guard:
            cause = self._persist_error
        if cause is not None:
            raise WriteBehindError(
                f"write-behind persistence failed for kind {self._kind!r} "
                f"at version {self._version}; the in-memory structure is "
                f"current but the on-disk artifact is stale"
            ) from cause

    # -- lifecycle ---------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError(f"dataset handle for kind {self._kind!r} is closed")
        if self._engine._closed:
            raise ServiceError("engine is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush dirty state, then detach; further queries/batches error.

        A failed final flush (:class:`~repro.core.errors.WriteBehindError`)
        still closes the handle -- the error propagates *after* the handle
        is detached, so shutdown cannot wedge on a dead store."""
        if self._closed:
            return
        try:
            self.flush()
        finally:
            with self._latch.write():
                self._closed = True
            self._engine._forget_handle(self)

    def __enter__(self) -> "DatasetHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
