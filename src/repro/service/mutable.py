"""Mutable datasets: delta-maintained Pi-structures behind versioned handles.

The paper's amortization argument (preprocess once in PTIME, serve many
polylog queries) meets production traffic here: datasets *mutate*.  Section
4(7) analyses incremental evaluation against |CHANGED| = |dD| + |dO| -- the
payoff of preprocessing survives updates only if maintaining Pi(D) costs a
function of the change, not of |D|.  This module provides the shared write
machinery:

* :class:`MutableContent` -- the private working copy of a dataset plus the
  bag bookkeeping (validation, no-op screening, change application) shared
  by every mutable serving surface: the single-kind :class:`DatasetHandle`
  below and the multi-kind :class:`~repro.service.dataset.Dataset` sessions
  created by ``QueryEngine.attach(..., mutable=True)``;
* :class:`VersionedStructures` -- left-right versioned snapshot publication:
  readers pin the current :class:`_Version` record with a single attribute
  load and serve **lock-free** (no latch, no Condition -- a writer can never
  block a reader), while writers serialize among themselves, fold each batch
  into an offline twin set, publish the new version pointer atomically, and
  re-apply the batch to the retired set -- delta cost is paid twice
  (O(|CHANGED|) each), never an O(|D|) clone;
* :class:`SnapshotLatch` -- the writer-preferring reader--writer latch the
  serve path used before versioned publication.  No longer on any hot path;
  kept exported for external callers that built on it (see the migration
  note in ``docs/architecture.md``);
* :func:`advance_lineage` -- the O(|CHANGED|) versioned-fingerprint chain
  that gives every applied batch a distinct artifact identity without an
  O(|D|) re-hash, over the canonical change encoding of
  :func:`canonical_change_bytes` (stable across processes, unlike ``repr``).

``QueryEngine.open_dataset(kind, data)`` returns a :class:`DatasetHandle`
serving **one** kind; ``handle.apply_changes(batch)`` routes a batch of
:mod:`repro.incremental.changes` records to the scheme's
``PiScheme.apply_delta`` hook, mutating the offline structure in place in
O(|CHANGED| * polylog).  Schemes without a hook -- and sharded registrations
-- fall back automatically to a rebuild through the engine, where
content-addressed shard artifacts turn the rebuild into a
touched-shards-only build.  Dirty structures are re-persisted
asynchronously (write-behind); ``flush()``/``close()`` force the write.

For datasets served under *several* kinds at once, prefer the dataset-first
surface: ``engine.attach(name, data, mutable=True)`` (see
:mod:`repro.service.dataset`), which folds each batch into every served
structure behind one writer mutex and one published version pointer.

    >>> from repro.queries import membership_class, sorted_run_scheme
    >>> from repro.service.engine import QueryEngine
    >>> from repro.incremental.changes import ChangeKind, TupleChange
    >>> engine = QueryEngine()
    >>> engine.register("membership", membership_class(), sorted_run_scheme())
    >>> handle = engine.open_dataset("membership", (3, 1, 4))
    >>> handle.query(9)
    False
    >>> _ = handle.apply_changes([TupleChange(ChangeKind.INSERT, (9,))])
    >>> handle.query(9), handle.version
    (True, 1)
    >>> engine.stats().per_kind["membership"].delta_batches
    1
    >>> handle.close(); engine.close()
"""

from __future__ import annotations

import hashlib
import threading
import time
import weakref
from collections import Counter
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.cost import CostTracker
from repro.core.errors import (
    DeltaError,
    SchemaError,
    ServiceError,
    WriteBehindError,
)
from repro.service import faults
from repro.incremental.changes import (
    ChangeKind,
    ChangeLog,
    EdgeChange,
    PointWrite,
    TupleChange,
)
from repro.service.artifacts import ArtifactKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.engine import QueryEngine, _Registration

__all__ = [
    "SnapshotLatch",
    "MutableContent",
    "DatasetHandle",
    "VersionedStructures",
    "advance_lineage",
    "canonical_change_bytes",
]


class SnapshotLatch:
    """A writer-preferring reader--writer latch for snapshot serving.

    Readers share the latch, so queries run concurrently; a writer excludes
    everyone, so a change batch is applied atomically with respect to every
    reader -- a query observes the version before the batch or the version
    after it, never the middle.  Writer preference (new readers queue behind
    a waiting writer) bounds writer latency under heavy read traffic.

    The mutable serving surfaces no longer read under this latch -- they
    publish immutable version records through :class:`VersionedStructures`,
    so readers never block on writers at all.  The latch stays exported for
    external callers that coordinate their own snapshot steps with it.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        """Shared acquisition, plain-call form.

        A ``@contextmanager`` generator costs a couple of microseconds per
        entry/exit, so latency-sensitive callers pair this with
        :meth:`release_read` in a ``try/finally`` instead of entering
        :meth:`read`.
        """
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Release one shared acquisition taken by :meth:`acquire_read`.

        An unmatched release raises instead of driving the reader count
        negative -- a silent underflow would admit a writer while another
        reader is still inside its critical section, turning a caller bug
        into a torn snapshot.
        """
        with self._condition:
            if self._readers <= 0:
                raise RuntimeError(
                    "SnapshotLatch.release_read() without a matching "
                    "acquire_read(): the latch is not read-held"
                )
            self._readers -= 1
            if not self._readers:
                self._condition.notify_all()

    @contextmanager
    def read(self):
        """Shared acquisition: any number of concurrent readers."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """Exclusive acquisition: waits out readers, blocks new ones."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._condition:
                self._writer_active = False
                self._condition.notify_all()


# -- versioned snapshot publication (the lock-free read protocol) --------------

#: Slot value of a thread that is not currently serving a pinned version.
_IDLE = -1


class _SlotAnchor:
    """Thread-local sentinel whose death retires the thread's read slot."""

    __slots__ = ("__weakref__",)


def _retire_read_slot(indicator_ref: "weakref.ref", slot_id: int) -> None:
    """Finalizer target for a thread's read slot.

    Module-level on purpose: a bound-method callback would root the whole
    indicator (and through it the dataset's structures) in weakref's global
    registry until the owning *thread* exits.
    """
    indicator = indicator_ref()
    if indicator is not None:
        indicator._retire(slot_id)


class _ReadIndicator:
    """Per-thread read-announcement slots: the left-right read indicator.

    Each reading thread owns one single-cell list per indicator; announcing
    a read is one list-item store (``slot[0] = version_number``) and going
    idle is another -- no lock, no Condition, nothing shared between
    readers.  Writers scan the registered slots to wait out readers still
    pinned to a retired version before mutating it.

    Correctness rests on CPython's GIL making single-bytecode list/attribute
    stores and loads sequentially consistent: the reader's
    announce-then-recheck (:meth:`VersionedStructures.pin`) and the writer's
    publish-then-scan (:meth:`wait_until_drained` after
    :meth:`VersionedStructures.publish`) form the classic Dekker store/load
    pairing, so a reader either re-observes the new version and retries, or
    its announcement is visible to the writer's scan.

    Slot lifecycle mirrors the engine's sharded query counters
    (:class:`repro.service.engine._QueryCounterShards`): each slot is
    anchored to a thread-local sentinel whose finalizer unregisters it when
    the thread dies, so a long-lived dataset serving thread-per-request
    traffic stays bounded by its *live* threads.
    """

    __slots__ = ("_local", "_slots", "_lock", "__weakref__")

    def __init__(self) -> None:
        self._local = threading.local()
        self._slots: Dict[int, List[int]] = {}
        self._lock = threading.Lock()

    def slot(self) -> List[int]:
        """This thread's announce cell, created and registered on first use."""
        try:
            return self._local.slot
        except AttributeError:
            pass
        slot = [_IDLE]
        anchor = _SlotAnchor()
        weakref.finalize(anchor, _retire_read_slot, weakref.ref(self), id(slot))
        with self._lock:
            self._slots[id(slot)] = slot
        self._local.anchor = anchor
        self._local.slot = slot
        return slot

    def _retire(self, slot_id: int) -> None:
        with self._lock:
            self._slots.pop(slot_id, None)

    def wait_until_drained(self, number: int) -> None:
        """Block until no reader is announced below version ``number``.

        Writer-side only.  Progress is guaranteed: a slot below ``number``
        belongs to a reader that passed its recheck *before* the newer
        version was published, so it is mid-serve and goes idle in bounded
        time; every reader arriving after the publish pins ``number`` (or
        newer) and is never waited on -- a continuous read stream cannot
        starve the writer.
        """
        spins = 0
        while True:
            with self._lock:
                draining = any(
                    cell[0] != _IDLE and cell[0] < number
                    for cell in self._slots.values()
                )
            if not draining:
                return
            spins += 1
            # Yield immediately at first (serves are microseconds), back
            # off to a short sleep if a reader is mid-kernel.
            time.sleep(0 if spins < 100 else 0.00005)


class _Version:
    """One published snapshot of a mutable dataset: structures + identity.

    Readers obtain the whole record with a single attribute load
    (:attr:`VersionedStructures.current`) and serve from ``structures``
    without further coordination.  After publication a record only ever
    gains newly materialized kinds (GIL-atomic dict stores under the writer
    mutex; both sides receive the same first-touch build, so readers on any
    version observe identical answers for the new kind).
    """

    __slots__ = ("structures", "number", "lineage")

    def __init__(self, structures: Dict[str, Any], number: int, lineage: str) -> None:
        self.structures = structures
        self.number = number
        self.lineage = lineage


class VersionedStructures:
    """Left-right versioned snapshot publication for mutable serving.

    The mutable read path used to take a shared :class:`SnapshotLatch` per
    query; under a 90/10 read/write mix the writer-preferring queueing
    inflated read p999 ~3x (see ``BENCH_workloads.json``).  This class
    removes readers from the lock protocol entirely:

    * **Readers** pin the current :class:`_Version` record lock-free: load
      :attr:`current`, announce its number in a per-thread slot, re-check
      that :attr:`current` did not move (retrying the rare publication
      race), serve, go idle.  No shared lock is ever acquired, so a writer
      can never block a reader.
    * **Writers** serialize among themselves on :attr:`writer_mutex`, fold
      the change batch into the private *offline* twin set (invisible to
      readers), :meth:`publish` the new version with one atomic attribute
      store, then :meth:`drain` the readers still pinned to the retired
      version and re-apply the same batch to the retired set, which becomes
      the next offline set.  Delta cost is paid twice -- O(|CHANGED|) each
      time -- never an O(|D|) snapshot clone.

    The two structure dicts alternate between the published and offline
    roles forever.  Delta-capable monolithic kinds hold *twin instances*
    (in-place maintenance on one side must never touch the other); kinds
    that rebuild instead of folding (sharded, no ``apply_delta``) share one
    instance across both sides because nothing mutates it in place.

    Deadlock rule: a thread must be idle (slot released) before taking
    :attr:`writer_mutex` -- writers drain inside the mutex, so an announced
    reader blocking on the mutex would deadlock the drain.
    """

    __slots__ = ("writer_mutex", "current", "offline", "_indicator")

    def __init__(self, lineage: str) -> None:
        self.writer_mutex = threading.RLock()
        self.current = _Version({}, 0, lineage)
        self.offline: Dict[str, Any] = {}
        self._indicator = _ReadIndicator()

    # -- reader protocol -------------------------------------------------------

    def slot(self) -> List[int]:
        """The calling thread's announce slot (pair with :meth:`pin`)."""
        return self._indicator.slot()

    def pin(self, slot: List[int]) -> _Version:
        """Announce-and-recheck: a version record safe to serve from.

        The recheck closes the race with a concurrent publish: if the
        pointer moved between the load and the announcement, the writer's
        drain scan may have run before the announcement became visible, so
        the loop goes idle and re-announces against the newer record.
        """
        while True:
            version = self.current
            slot[0] = version.number
            if self.current is version:
                return version
            slot[0] = _IDLE

    @staticmethod
    def release(slot: List[int]) -> None:
        """Go idle (idempotent; always reached via ``finally``)."""
        slot[0] = _IDLE

    @contextmanager
    def pinned(self) -> Iterator[_Version]:
        """Context-managed pin for cold paths (persist, resolve)."""
        slot = self._indicator.slot()
        version = self.pin(slot)
        try:
            yield version
        finally:
            slot[0] = _IDLE

    # -- writer protocol (writer_mutex held) -----------------------------------

    def install(self, kind: str, published: Any, offline: Any) -> None:
        """First-touch materialization: both sides gain ``kind`` in place.

        No version bump -- the content did not change, only a structure was
        built for it -- so readers pinned to any live version observe the
        kind appear with identical answers.
        """
        self.current.structures[kind] = published
        self.offline[kind] = offline

    def publish(self, number: int, lineage: str) -> Dict[str, Any]:
        """Atomically publish the offline set as version ``number``.

        One attribute store is the whole commit point: readers that load
        :attr:`current` after it serve the new version.  Returns the
        retired structure dict (also installed as the new :attr:`offline`);
        the caller must :meth:`drain` before mutating it.
        """
        retired = self.current.structures
        self.current = _Version(self.offline, number, lineage)
        self.offline = retired
        return retired

    def drain(self) -> None:
        """Wait until no reader is still pinned below the current version."""
        self._indicator.wait_until_drained(self.current.number)


# -- lineage (versioned content identity) --------------------------------------


def _canonical_value_bytes(value: Any) -> bytes:
    """A process-stable byte encoding of one change payload value.

    Only value types whose ``repr`` is defined by the value (never by
    identity or hash order) are accepted: numbers, strings, bytes, None,
    and sequences of those.  Anything else -- a custom object whose default
    repr embeds its memory address, a frozenset whose repr follows hash
    order -- would make equal histories digest differently per process,
    silently defeating the cross-worker artifact cache, so it is rejected
    loudly instead.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value).encode("utf-8")
    if isinstance(value, (tuple, list)):
        return b"(" + b",".join(_canonical_value_bytes(item) for item in value) + b")"
    raise DeltaError(
        f"change value {value!r} of type {type(value).__name__} has no "
        f"canonical encoding for the lineage digest; use numbers, strings, "
        f"bytes or tuples of those"
    )


def canonical_change_bytes(change: Any) -> bytes:
    """The canonical (process-stable) encoding of one change record.

    :func:`advance_lineage` digests these bytes instead of ``repr(change)``:
    a change type without a stable ``__repr__`` (the default object repr
    embeds the memory address) used to give equal histories different
    content identities per process.  Unknown record types raise
    :class:`~repro.core.errors.DeltaError` -- rejected at batch validation,
    before anything mutates.
    """
    if isinstance(change, TupleChange):
        return (
            b"tuple:"
            + change.kind.value.encode("ascii")
            + b":"
            + _canonical_value_bytes(tuple(change.row))
        )
    if isinstance(change, EdgeChange):
        return b"edge:%s:%d>%d" % (
            change.kind.value.encode("ascii"),
            change.source,
            change.target,
        )
    if isinstance(change, PointWrite):
        return b"point:%d=" % change.position + _canonical_value_bytes(change.value)
    raise DeltaError(
        f"unknown change record {type(change).__name__} has no canonical "
        f"encoding for the lineage digest"
    )


def advance_lineage(lineage: str, version: int, effective: Sequence[Any]) -> str:
    """Chain one applied batch into a versioned content identity.

    Version 0 is the plain dataset fingerprint; each applied batch chains
    the version counter *and the batch content* into the digest, in
    O(|CHANGED|) instead of an O(|D|) re-hash.  Two histories over equal
    base data share an identity exactly when their batches agree -- in which
    case their structures encode the same logical dataset -- while divergent
    histories can never clobber each other's persisted artifacts.

    Batches are digested through :func:`canonical_change_bytes`, so the
    identity is stable across processes and interpreter runs (``repr`` of a
    change type without a stable ``__repr__`` is not).
    """
    digest = hashlib.sha256()
    digest.update(lineage.encode("ascii"))
    digest.update(f"|delta-v{version}|".encode("ascii"))
    for change in effective:
        digest.update(canonical_change_bytes(change))
        digest.update(b"\x1f")
    return digest.hexdigest()


def _is_graph(data: Any) -> bool:
    return hasattr(data, "add_edge") and hasattr(data, "edges") and hasattr(data, "n")


def _is_relation(data: Any) -> bool:
    return hasattr(data, "schema") and hasattr(data, "insert") and hasattr(data, "rows")


class MutableContent:
    """The working-copy half of a mutable dataset, independent of any kind.

    Owns a private mutable copy of the dataset (list / relation / graph) --
    the caller's object is never touched, and a fallback rebuild always has
    the post-batch content -- plus the bag bookkeeping that makes batch
    validation and no-op screening O(1) per change.  Both the single-kind
    :class:`DatasetHandle` and the multi-kind mutable
    :class:`~repro.service.dataset.Dataset` sessions delegate here, so the
    change semantics (atomic validation, phantom-delete screening, working
    application order) are defined exactly once.

    Not thread-safe on its own: callers mutate it only under their
    :class:`VersionedStructures` writer mutex.  Readers never touch the
    content -- they serve from published structure snapshots.
    """

    def __init__(self, data: Any, tracker: CostTracker, log: ChangeLog) -> None:
        self.tracker = tracker
        self.log = log
        self.working, self.row_shaped = self._copy_dataset(data)
        self.counts: Counter = self._initial_counts()
        self.row_ids = self._initial_row_ids()

    # -- working copies --------------------------------------------------------

    def _copy_dataset(self, data: Any) -> Tuple[Any, bool]:
        """A private mutable copy of ``data`` plus its element shape.

        ``row_shaped`` is True when elements are rows (tuples) rather than
        flat values -- it decides how ``TupleChange.row`` maps to elements.
        """
        if _is_relation(data):
            copy = type(data)(data.schema)
            for row in data.rows():
                copy.insert(row)
            return copy, True
        if _is_graph(data):
            return type(data)(data.n, data.edges()), False
        if isinstance(data, (tuple, list)):
            working = list(data)
            row_shaped = bool(working) and isinstance(working[0], (tuple, list))
            return working, row_shaped
        raise ServiceError(
            f"mutable serving supports sequence, relation and graph datasets; "
            f"got {type(data).__name__}"
        )

    def _initial_counts(self) -> Counter:
        if _is_relation(self.working):
            return Counter(self.working.rows())
        if _is_graph(self.working):
            return Counter()
        return Counter(self.working)

    def _initial_row_ids(self) -> Optional[dict]:
        """Live row -> row-id list for relations, so deletes are O(1) lookups
        instead of an O(|D|) scan on the write path."""
        if not _is_relation(self.working):
            return None
        row_ids: dict = {}
        for row_id, row in self.working.scan(self.tracker):
            row_ids.setdefault(row, []).append(row_id)
        return row_ids

    def element(self, row: Sequence[Any]) -> Any:
        """The dataset element a ``TupleChange.row`` denotes."""
        if self.row_shaped:
            return tuple(row)
        if len(row) != 1:
            raise DeltaError(
                f"flat datasets take one-tuple rows, got arity {len(row)}"
            )
        return row[0]

    def canonical(self) -> Any:
        """A fresh snapshot of the working data, typed like the original.

        Always a new object, so the engine's identity-memoized fingerprints
        can never alias a mutated working copy.
        """
        if _is_relation(self.working):
            copy = type(self.working)(self.working.schema)
            for row in self.working.rows():
                copy.insert(row)
            return copy
        if _is_graph(self.working):
            return type(self.working)(self.working.n, self.working.edges())
        return tuple(self.working)

    # -- batch processing ------------------------------------------------------

    def validate(self, batch: Sequence[Any]) -> None:
        """Reject malformed batches before anything mutates (batch atomicity).

        Canonical-encodability is checked here too: a change whose payload
        cannot be digested stably (see :func:`canonical_change_bytes`) must
        be rejected *before* the working copy moves, not discovered when
        :func:`advance_lineage` runs mid-commit.
        """
        for change in batch:
            if isinstance(change, TupleChange):
                element = self.element(change.row)
                if (
                    _is_relation(self.working)
                    and change.kind is ChangeKind.INSERT
                ):
                    try:
                        self.working.schema.validate_row(tuple(change.row))
                    except SchemaError as exc:
                        raise DeltaError(f"bad row {change.row!r}: {exc}") from exc
                elif self.row_shaped and self.counts:
                    arity = len(next(iter(self.counts)))
                    if len(tuple(element)) != arity:
                        raise DeltaError(
                            f"row arity {len(tuple(element))} != dataset arity {arity}"
                        )
            elif isinstance(change, EdgeChange):
                if not _is_graph(self.working):
                    raise DeltaError("EdgeChange targets a non-graph dataset")
                n = self.working.n
                if not (0 <= change.source < n and 0 <= change.target < n):
                    raise DeltaError(
                        f"edge ({change.source}, {change.target}) outside [0, {n})"
                    )
            elif isinstance(change, PointWrite):
                if _is_graph(self.working) or _is_relation(self.working):
                    raise DeltaError("PointWrite targets a non-positional dataset")
                if not 0 <= change.position < len(self.working):
                    raise DeltaError(
                        f"point write at {change.position} outside "
                        f"[0, {len(self.working)})"
                    )
                try:
                    hash(change.value)
                except TypeError as exc:
                    raise DeltaError(
                        f"point-write value {change.value!r} is not hashable"
                    ) from exc
            else:
                raise DeltaError(f"unknown change record {type(change).__name__}")
            canonical_change_bytes(change)

    def screen(self, batch: Sequence[Any]) -> List[Any]:
        """Drop no-op deletes (absent elements/edges) and track the bag counts.

        Phantom deletes must never reach a delta hook: the per-attribute
        selection indexes, for instance, would strip a payload a live row
        still accounts for.  The element counter makes the check O(1) per
        change.
        """
        effective: List[Any] = []
        overlay: dict = {}  # PointWrite positions already seen in this batch
        for change in batch:
            if isinstance(change, TupleChange):
                element = self.element(change.row)
                if change.kind is ChangeKind.DELETE:
                    if not self.counts[element]:
                        self.log.record(1, 0, f"no-op delete {element!r}")
                        continue
                    self.counts[element] -= 1
                else:
                    self.counts[element] += 1
            elif isinstance(change, EdgeChange) and change.kind is ChangeKind.DELETE:
                if not self.working.has_edge(change.source, change.target):
                    self.log.record(
                        1, 0, f"no-op delete edge ({change.source}, {change.target})"
                    )
                    continue
            elif isinstance(change, PointWrite):
                # An overwrite swaps one element of the bag for another; the
                # overlay keeps repeated writes to one slot in step before
                # the working copy itself is updated.
                old = overlay.get(change.position, self.working[change.position])
                self.counts[old] -= 1
                self.counts[change.value] += 1
                overlay[change.position] = change.value
            effective.append(change)
        return effective

    def apply(self, change: Any) -> None:
        """Fold one (validated, screened) change into the working dataset."""
        if isinstance(change, TupleChange):
            element = self.element(change.row)
            if _is_relation(self.working):
                if change.kind is ChangeKind.INSERT:
                    row_id = self.working.insert(element)
                    self.row_ids.setdefault(element, []).append(row_id)
                else:
                    # Screened: the element is live, so the id map has it.
                    self.working.delete(self.row_ids[element].pop())
            elif change.kind is ChangeKind.INSERT:
                self.working.append(element)
            else:
                self.working.remove(element)
        elif isinstance(change, EdgeChange):
            if change.kind is ChangeKind.INSERT:
                self.working.add_edge(change.source, change.target)
            else:
                self.working.remove_edge(change.source, change.target)
        else:  # PointWrite
            self.working[change.position] = change.value


class DatasetHandle:
    """One mutable dataset served under snapshot isolation, for one kind.

    Created by :meth:`repro.service.engine.QueryEngine.open_dataset`; not
    meant to be constructed directly.  The handle owns

    * a **working copy** of the dataset (a :class:`MutableContent`), so the
      caller's object is never mutated and a fallback rebuild always has the
      post-batch content;
    * **twin private structures** behind a :class:`VersionedStructures` --
      for delta-capable monolithic schemes the resolved structure is
      re-privatized through the scheme codec (twice: one instance per
      left-right side), so in-place maintenance can never corrupt structures
      shared through the engine cache;
    * the **version records** and the write-behind persistence state.

    Thread safety: readers are lock-free.  Any number of threads may call
    :meth:`query`/:meth:`query_batch` concurrently with writers calling
    :meth:`apply_changes` and never block on them -- each read pins the
    current published version (one attribute load plus a per-thread
    announce slot) and always observes a fully-applied batch, never the
    middle of one.  Writers serialize among themselves on the writer mutex;
    concurrent batches apply in mutex-acquisition order.

    The handle serves exactly the kind it was opened for.  To serve one
    mutable dataset under several kinds behind a single version pointer,
    use the dataset-first surface (``engine.attach(..., mutable=True)``;
    see :mod:`repro.service.dataset`).
    """

    def __init__(
        self,
        engine: "QueryEngine",
        kind: str,
        registration: "_Registration",
        data: Any,
    ) -> None:
        self._engine = engine
        self._kind = kind
        self._registration = registration
        self._persist_guard = threading.Lock()
        self._persist_future = None
        # Terminal write-behind store failure, surfaced by the next flush()
        # (a newer batch replacing the future must not drop it).
        self._persist_error: Optional[BaseException] = None
        self._persisted_version = 0
        self._closed = False
        self.tracker = CostTracker()
        self.log = ChangeLog()

        self._content = MutableContent(data, self.tracker, self.log)
        self._base_fingerprint = engine._fingerprint(data, kind=kind)
        self._versions = VersionedStructures(self._base_fingerprint)
        published = self._private_structure(data)
        self._versions.install(
            kind, published, self._twin_structure(published, data)
        )

    # -- structure ownership ---------------------------------------------------

    def _private_structure(self, data: Any) -> Any:
        """Resolve ``(kind, data)`` and privatize when maintenance mutates.

        Sharded registrations and schemes without ``apply_delta`` never
        mutate structures, so the engine-shared resolution is safe to hold.
        Delta-capable monolithic schemes get a private copy: a codec
        round-trip when serializable (keeps warm cache/store resolution),
        else a fresh private build.
        """
        scheme = self._registration.scheme
        if self._registration.shards > 1 or scheme.apply_delta is None:
            return self._engine.resolve(self._kind, data)
        if scheme.serializable:
            return scheme.load(scheme.dump(self._engine.resolve(self._kind, data)))
        started = time.perf_counter()
        structure = scheme.preprocess(data, self.tracker)
        self._engine._bump(
            self._kind, builds=1, build_seconds=time.perf_counter() - started
        )
        return structure

    def _twin_structure(self, structure: Any, content: Any) -> Any:
        """The offline-side twin of a published structure.

        Only delta-capable monolithic kinds are mutated in place, so only
        they need a second instance -- a codec round-trip when serializable,
        else a second private build (privatization, not a cache miss: it is
        not counted as a build).  Everything else shares one instance across
        both left-right sides.
        """
        scheme = self._registration.scheme
        if self._registration.shards > 1 or scheme.apply_delta is None:
            return structure
        if scheme.serializable:
            return scheme.load(scheme.dump(structure))
        return scheme.preprocess(content, self.tracker)

    def _rematerialize(self) -> None:
        """Re-install structures after a failed repair-rebuild dropped them.

        Callers must be idle (no announced slot): an announced reader
        blocking on the writer mutex would deadlock a draining writer.
        Benign to race -- every contender builds from the same post-batch
        content under the mutex, and only the first installs.
        """
        versions = self._versions
        with versions.writer_mutex:
            if versions.current.structures.get(self._kind) is not None:
                return
            content = self._content.canonical()
            published = self._private_structure(content)
            versions.install(
                self._kind, published, self._twin_structure(published, content)
            )

    # -- identity and versions -------------------------------------------------

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def version(self) -> int:
        """Monotonic count of applied (non-empty) change batches."""
        return self._versions.current.number

    @property
    def dirty(self) -> bool:
        """True while a delta-maintained version awaits persistence."""
        return self._persisted_version < self._versions.current.number

    def fingerprint(self) -> str:
        """The versioned content identity: a lineage hash of the history.

        Version 0 is the plain dataset fingerprint (the handle aliases the
        engine's ordinary artifact); later versions chain batches through
        :func:`advance_lineage`.
        """
        return self._versions.current.lineage

    def artifact_key(self) -> ArtifactKey:
        """Identity of this version's artifact in cache/store terms."""
        return ArtifactKey(
            fingerprint=self.fingerprint(),
            scheme=self._registration.scheme.name,
            params=self._registration.params,
        )

    def dataset(self) -> Any:
        """A consistent snapshot of the current dataset content."""
        with self._versions.writer_mutex:
            return self._content.canonical()

    # -- serving ---------------------------------------------------------------

    def _answer(self, query: Any, structure: Any) -> bool:
        """Evaluate one query over a pinned structure.

        The handle is the *analytic* mutable surface: evaluation charges the
        handle's own cost tracker (the |CHANGED|-vs-|D| accounting of the
        Section 4(7) experiments).  Untracked production serving goes
        through mutable :class:`~repro.service.dataset.Dataset` sessions.
        A kernel exception bumps ``serve_errors`` before propagating, so
        failed serves are never invisible to health accounting.
        """
        registration = self._registration
        started = time.perf_counter()
        try:
            if registration.shards > 1:
                answer = self._engine._planner.answer(
                    self._kind, registration, structure, query, self.tracker
                )
            else:
                answer = registration.scheme.answer(structure, query, self.tracker)
        except Exception:
            self._engine._bump(self._kind, serve_errors=1)
            raise
        self._engine._count_serve(
            self._kind, queries=1, serve_seconds=time.perf_counter() - started
        )
        # Preserve an explicit DegradedAnswer marker; plain bool otherwise.
        return answer if isinstance(answer, faults.DegradedAnswer) else bool(answer)

    def query(self, query: Any) -> bool:
        """Answer one query against the current version (snapshot-consistent).

        Lock-free: pins the published version record and serves from it --
        concurrent with other readers *and* with writers, which can never
        block a read.  The answer always reflects a fully-applied version.
        """
        versions = self._versions
        slot = versions.slot()
        version = versions.pin(slot)
        try:
            self._check_open()
            structure = version.structures.get(self._kind)
            if structure is None:
                # A failed repair-rebuild dropped the structure (see
                # apply_changes); go idle, re-materialize from current
                # content under the writer mutex, and re-pin.
                versions.release(slot)
                self._rematerialize()
                version = versions.pin(slot)
                structure = version.structures[self._kind]
            return self._answer(query, structure)
        finally:
            versions.release(slot)

    def query_batch(self, queries: Iterable[Any]) -> List[bool]:
        """Answer several queries against **one** version (batch-atomic).

        One version record is pinned across the whole batch, so every
        answer reflects the same fully-applied version -- the multi-probe
        counterpart of :meth:`query`'s snapshot guarantee (and what the
        torn-snapshot stress test in ``tests/unit/test_mutable_engine.py``
        pins down).  Batch atomicity is one pointer read, not a lock.
        """
        batch = list(queries)
        versions = self._versions
        slot = versions.slot()
        version = versions.pin(slot)
        try:
            self._check_open()
            structure = version.structures.get(self._kind)
            if structure is None:
                versions.release(slot)
                self._rematerialize()
                version = versions.pin(slot)
                structure = version.structures[self._kind]
            return [self._answer(query, structure) for query in batch]
        finally:
            versions.release(slot)

    # -- mutation --------------------------------------------------------------

    def apply_changes(self, changes: Iterable[Any]) -> ChangeLog:
        """Apply one change batch atomically; returns the cumulative log.

        The batch is validated up front (malformed changes raise
        :class:`~repro.core.errors.DeltaError` with nothing applied), no-op
        deletes are screened out, and the remainder goes to the scheme's
        ``apply_delta`` hook -- O(|CHANGED| * polylog) in-place maintenance
        against the *offline* twin, which readers cannot see.  The new
        version is then published with one atomic pointer store, readers
        still pinned to the retired version are drained, and the batch is
        re-applied to the retired twin (the next offline side) -- the
        left-right double-apply, so delta cost is paid twice but an O(|D|)
        clone is never paid at all.

        When the scheme has no hook, the hook refuses the batch, or the
        kind is sharded, the handle falls back to resolving the post-batch
        content through the engine: sharded kinds rebuild only the touched
        shards (content-addressed artifacts), monolithic kinds rebuild in
        full.  Either way readers never observe an intermediate state, and
        a torn fold can never be published.
        """
        batch = list(changes)
        versions = self._versions
        with versions.writer_mutex:
            self._check_open()
            self._content.validate(batch)
            effective = self._content.screen(batch)
            if not effective:
                # Every screened change was already logged by screen().
                self.log.record(0, 0, "batch screened to no-ops")
                return self.log
            registration = self._registration
            scheme = registration.scheme
            offline = versions.offline
            applied_by_delta = False
            torn = False
            started = time.perf_counter()
            if (
                registration.shards == 1
                and scheme.apply_delta is not None
                and offline.get(self._kind) is not None
            ):
                try:
                    if faults._PLAN is not None:
                        faults.on_delta_apply(self._kind)
                    offline[self._kind] = scheme.apply_delta(
                        offline[self._kind], effective, self.tracker
                    )
                    applied_by_delta = True
                except DeltaError:
                    # Contract: raised *before* mutating -- plain fallback.
                    applied_by_delta = False
                except Exception:
                    # Crashed mid-fold: only the offline twin may be torn;
                    # the published side was never touched, so no reader
                    # can see the tear.  The batch still commits (content
                    # is the source of truth) and the rebuild below
                    # replaces the torn twin before anything is published.
                    torn = True
            for change in effective:
                self._content.apply(change)
            current = versions.current
            number = current.number + 1
            lineage = advance_lineage(current.lineage, number, effective)
            canonical = None
            fresh = None
            if not applied_by_delta:
                canonical = self._content.canonical()
                try:
                    fresh = self._private_structure(canonical)
                except BaseException:
                    # Never publish (or retain) a possibly-torn structure:
                    # drop the kind from both sides, still commit the
                    # version, and let the next query re-materialize from
                    # the post-batch content -- degraded-and-loud, never
                    # silently wrong.
                    offline.pop(self._kind, None)
                    versions.publish(number, lineage)
                    versions.drain()
                    versions.offline.pop(self._kind, None)
                    raise
                offline[self._kind] = fresh
            versions.publish(number, lineage)
            elapsed = time.perf_counter() - started
            if applied_by_delta:
                self._engine._bump(
                    self._kind,
                    delta_batches=1,
                    delta_changes=len(effective),
                    delta_seconds=elapsed,
                )
            else:
                self._engine._bump(self._kind, fallback_rebuilds=1)
                if torn:
                    self._engine._bump(self._kind, write_rollbacks=1)
            # Second apply: once readers drain off the retired side, bring
            # it up to this version so it can serve as the next offline set.
            versions.drain()
            retired = versions.offline
            if applied_by_delta:
                try:
                    retired[self._kind] = scheme.apply_delta(
                        retired[self._kind], effective, self.tracker
                    )
                except Exception:
                    # The published side is intact and current; repair the
                    # mirror from it so the next batch folds into a correct
                    # twin.  Loud in the counters, invisible to readers.
                    retired[self._kind] = self._twin_structure(
                        versions.current.structures[self._kind],
                        self._content.canonical(),
                    )
                    self._engine._bump(self._kind, write_rollbacks=1)
            else:
                retired[self._kind] = self._twin_structure(fresh, canonical)
            if applied_by_delta:
                self._schedule_persist()
            elif self._store_ready():
                # Uniform durability: the rebuilt structure also lands
                # under this version's key (the resolve above already
                # persisted it content-addressed).
                self._schedule_persist()
            else:
                self._persisted_version = number
            self.log.record(
                len(effective),
                0,
                f"v{number}: {len(effective)} change(s) via "
                f"{'delta' if applied_by_delta else 'rebuild'}"
                + (f", {len(batch) - len(effective)} screened" if len(batch) != len(effective) else ""),
            )
            return self.log

    # -- write-behind persistence ----------------------------------------------

    def _store_ready(self) -> bool:
        return (
            self._engine._store is not None
            and self._registration.shards == 1
            and self._registration.scheme.dump is not None
        )

    def _schedule_persist(self) -> None:
        """Queue an asynchronous re-persist of the current dirty version."""
        if not self._store_ready():
            return
        target = self._versions.current.number
        pool = self._engine._ensure_persist_pool()
        with self._persist_guard:
            self._persist_future = pool.submit(self._persist, target)

    def _persist(self, target: int) -> None:
        """Dump version ``target`` if still current and write it through.

        The dump runs with the version pinned exactly like a reader --
        writers drain pinned readers before re-folding a retired structure,
        so the bytes are a consistent snapshot -- and the store write runs
        unpinned.  A stale target (a newer batch already published) is
        skipped; the newer batch queued its own task.

        Store failures (disk full, unwritable root) are retried with
        backoff per the recovery policy; a terminal failure is recorded and
        raised by the next :meth:`flush` -- even if a newer batch replaces
        this task's future, the error is never silently dropped.  The
        in-memory structure stays current either way; only durability lags.
        """
        with self._versions.pinned() as version:
            if version.number != target or self._persisted_version >= target:
                return
            structure = version.structures.get(self._kind)
            if structure is None:
                return
            payload = self._registration.scheme.dump(structure)
            key = ArtifactKey(
                fingerprint=version.lineage,
                scheme=self._registration.scheme.name,
                params=self._registration.params,
            )
        recovery = faults.policy()
        backoff = recovery.writebehind_backoff_seconds
        attempts = max(1, recovery.writebehind_attempts)
        for attempt in range(attempts):
            try:
                self._engine._store.put(key, payload)
                break
            except Exception as exc:
                if attempt + 1 < attempts:
                    self._engine._bump(self._kind, writebehind_retries=1)
                    time.sleep(backoff)
                    backoff *= 2
                    continue
                self._engine._bump(self._kind, writebehind_failures=1)
                with self._persist_guard:
                    self._persist_error = exc
                return
        with self._persist_guard:
            self._persisted_version = max(self._persisted_version, target)
            self._persist_error = None

    def flush(self) -> None:
        """Write-behind barrier: returns with the current version durable.

        Raises :class:`~repro.core.errors.WriteBehindError` (with the store
        failure as ``__cause__``) when write-behind exhausted its retries
        and a final synchronous attempt here still fails -- a stale on-disk
        artifact is surfaced, never silently dropped.
        """
        with self._persist_guard:
            future = self._persist_future
        if future is not None:
            future.result()
        if self._store_ready():
            self._persist(self._versions.current.number)
        with self._persist_guard:
            cause = self._persist_error
        if cause is not None:
            raise WriteBehindError(
                f"write-behind persistence failed for kind {self._kind!r} "
                f"at version {self.version}; the in-memory structure is "
                f"current but the on-disk artifact is stale"
            ) from cause

    # -- lifecycle ---------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError(f"dataset handle for kind {self._kind!r} is closed")
        if self._engine._closed:
            raise ServiceError("engine is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush dirty state, then detach; further queries/batches error.

        A failed final flush (:class:`~repro.core.errors.WriteBehindError`)
        still closes the handle -- the error propagates *after* the handle
        is detached, so shutdown cannot wedge on a dead store."""
        if self._closed:
            return
        try:
            self.flush()
        finally:
            with self._versions.writer_mutex:
                self._closed = True
            self._engine._forget_handle(self)

    def __enter__(self) -> "DatasetHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
