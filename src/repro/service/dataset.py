"""Dataset sessions: the dataset-first serving surface of the engine.

The paper's economics are "preprocess D once, answer many queries in
polylog" -- so the *preprocessed dataset*, not the raw payload, is the
natural addressable object of the serving API.  ``QueryEngine.attach``
fingerprints a payload **once**, registers a stable name, and returns a
:class:`Dataset` session that serves every registered kind over it:

* ``ds.query(kind, q)`` / ``ds.query_batch(requests)`` -- the serving hot
  path: the first query per kind resolves through cache -> store -> build
  (with the content identity precomputed: no per-request fingerprint memo
  lookup, no O(|D|) re-hash past the memo cliff, ever) and captures a
  *serve plan* -- registration, resolved structure, and the scheme's
  untracked fast kernel bound into one callable -- so steady state is one
  dict hit plus one kernel call, and batches vectorize through one
  ``answer_many`` per kind group;
* ``ds.query_tracked(kind, q, tracker)`` -- the analytic twin: per-request
  resolution plus the cost-charging ``evaluate`` (the tractability API the
  certifier measures), always answer-identical to the fast path;
* ``ds.submit(kind, q)`` -- the same answer as a future on the engine pool;
* ``ds.warm(kinds=...)`` -- pre-build (and persist) structures per kind;
* ``ds.apply_changes(batch)`` -- for sessions attached ``mutable=True``,
  folds one change batch into *every* served structure behind a single
  writer mutex and one atomically published version pointer (readers are
  lock-free; see :class:`~repro.service.mutable.VersionedStructures`),
  routing each kind to its ``PiScheme.apply_delta`` hook (falling back to
  touched-shard or full rebuilds), replacing the one-kind-per-handle
  restriction of :class:`~repro.service.mutable.DatasetHandle`;
* ``ds.detach()`` -- flushes dirty state and releases the name; further use
  raises :class:`~repro.core.errors.UnknownDatasetError`.

One session dispatches to all three resolution paths from its attach-time
options: monolithic, sharded (``shards=K`` overrides the registration
default per dataset), and mutable.  Requests can address a session by name
(``QueryRequest(kind, dataset="events", query=q)``); the old
payload-per-request form keeps working through an anonymous attach inside
the engine (see :meth:`~repro.service.engine.QueryEngine.execute`).

    >>> from repro.queries import membership_class, sorted_run_scheme
    >>> from repro.service.engine import QueryEngine
    >>> engine = QueryEngine()
    >>> engine.register("membership", membership_class(), sorted_run_scheme())
    >>> ds = engine.attach("events", (3, 1, 4), shards=2)
    >>> ds.query("membership", 4), ds.query("membership", 9)
    (True, False)
    >>> engine.stats().per_kind["membership"].fingerprint_rehashes
    0
    >>> ds.detach(); engine.close()
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import replace
from functools import partial
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.cost import CostTracker
from repro.core.errors import (
    DeltaError,
    ServiceError,
    UnknownDatasetError,
    WriteBehindError,
)
from repro.core.query import PiScheme
from repro.incremental.changes import ChangeLog
from repro.service import faults
from repro.service.artifacts import ArtifactKey
from repro.service.mutable import MutableContent, VersionedStructures, advance_lineage
from repro.service.sharding import ShardPlan, gather_fast
from repro.storage.fingerprint import dataset_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.engine import QueryEngine, QueryRequest, _Registration

__all__ = ["Dataset"]

#: Batches at or below this size are answered inline even when
#: ``concurrent=True``: grouped kernel loops finish microsecond batches
#: faster than a single pool submit/wakeup round-trip would.
_INLINE_BATCH = 32


def _group_by_kind(
    pairs: Sequence[Tuple[str, Any]],
) -> Dict[str, Tuple[List[int], List[Any]]]:
    """Group ``(kind, query)`` pairs: kind -> (input positions, queries).

    The single grouping used by every vectorized batch path, so answers can
    be scattered back position-stable after per-kind ``answer_many`` calls.
    """
    groups: Dict[str, Tuple[List[int], List[Any]]] = {}
    for position, (kind, query) in enumerate(pairs):
        group = groups.get(kind)
        if group is None:
            group = groups[kind] = ([], [])
        group[0].append(position)
        group[1].append(query)
    return groups


def _chunk_length(total: int, width: int) -> int:
    """Ceil-divided slice length so ``width`` chunks cover ``total`` items."""
    return -(-total // max(1, width))


def _width_chunks(items: Sequence[Any], width: int) -> List[Sequence[Any]]:
    """Contiguous slices of ``items``, at most ``width`` of them.

    The pool fan-out shape shared by ``QueryEngine.execute_batch`` and
    ``Dataset.query_batch``: one task per worker, never one per query.
    """
    length = _chunk_length(len(items), width)
    return [items[start : start + length] for start in range(0, len(items), length)]


def _bind_fast(scheme: PiScheme, structure: Any) -> Tuple[Callable, Callable]:
    """``(answer_one, answer_many)`` bound to one resolved structure.

    When the scheme has no query rewriting, the callables bind the untracked
    kernels directly (one C-level partial call per query); otherwise they go
    through :meth:`~repro.core.query.PiScheme.answer_fast` /
    :meth:`~repro.core.query.PiScheme.answer_many`, which apply the rewrite.
    """
    if scheme.rewrite_query is None and scheme.evaluate_fast is not None:
        answer_one = partial(scheme.evaluate_fast, structure)
        if scheme.evaluate_many is not None:
            return answer_one, partial(scheme.evaluate_many, structure)
        return answer_one, partial(scheme.answer_many, structure)
    return partial(scheme.answer_fast, structure), partial(scheme.answer_many, structure)


class _ServePlan:
    """A (session, kind) hot-path binding: resolution captured once.

    ``answer``/``answer_many`` are the untracked kernels bound to the
    resolved structure; :meth:`serve`/:meth:`serve_many` time *only* the
    kernel call (resolution was paid at plan build and is accounted as
    build/hit, never serve) and record on the engine's lock-free counters.
    The engine's keyed plan watchers drop the plan if its structure is ever
    evicted, so a plan cannot pin or outlive a dropped structure.
    """

    __slots__ = ("_engine", "_kind", "answer", "answer_many")

    def __init__(
        self,
        engine: "QueryEngine",
        kind: str,
        answer: Callable,
        answer_many: Callable,
    ) -> None:
        self._engine = engine
        self._kind = kind
        self.answer = answer
        self.answer_many = answer_many

    def serve(self, query: Any) -> bool:
        started = time.perf_counter()
        try:
            answer = self.answer(query)
        except Exception:
            # Failed serves must never be invisible: health accounting
            # counts the errored query even though the caller sees the
            # exception.
            self._engine._bump(self._kind, serve_errors=1)
            raise
        self._engine._count_serve(
            self._kind, queries=1, serve_seconds=time.perf_counter() - started
        )
        return answer

    def serve_many(self, queries: Sequence[Any]) -> List[bool]:
        started = time.perf_counter()
        try:
            answers = self.answer_many(queries)
        except Exception:
            self._engine._bump(self._kind, serve_errors=len(queries))
            raise
        self._engine._count_serve(
            self._kind,
            queries=len(queries),
            serve_seconds=time.perf_counter() - started,
        )
        return answers


class _ShardedServe:
    """The serve plan of a sharded kind: plan + lazily captured structures.

    Routing is preserved (a membership probe still scatters to one hash
    bucket), so structures are captured per shard *as routed queries touch
    them* -- resolution goes through the engine's ordinary per-shard layers
    exactly once per shard (accounted as shard build/hit, outside the serve
    timer), after which the steady-state path is route + untracked
    :func:`~repro.service.sharding.gather_fast`, with no cache probes and
    no locks.  Each captured shard key is registered with the engine's plan
    watchers; evicting any of them drops this plan.
    """

    __slots__ = ("_engine", "_ds", "_kind", "_registration", "_spec",
                 "_plan", "_structures", "_pieces", "_empty")

    def __init__(
        self,
        engine: "QueryEngine",
        ds: "Dataset",
        kind: str,
        registration: "_Registration",
        shard_plan: ShardPlan,
    ) -> None:
        self._engine = engine
        self._ds = ds
        self._kind = kind
        self._registration = registration
        self._spec = registration.scheme.sharding
        self._plan = shard_plan
        self._structures: List[Optional[Any]] = [None] * len(shard_plan.planned)
        self._pieces = [planned.piece for planned in shard_plan.planned]
        self._empty = [piece.is_empty() for piece in self._pieces]

    def _routed(self, query: Any) -> Tuple[Any, Sequence[int]]:
        """Rewrite + route + capture any still-missing shard structures."""
        registration = self._registration
        rewrite = registration.scheme.rewrite_query
        effective = query if rewrite is None else rewrite(query)
        spec = self._spec
        if spec.route is None:
            positions: Sequence[int] = range(len(self._pieces))
        else:
            positions = list(spec.route(effective, self._pieces))
        structures = self._structures
        missing = [
            position
            for position in positions
            if structures[position] is None and not self._empty[position]
        ]
        if missing:
            planner = self._engine._planner
            resolved = planner._resolve_positions(
                self._kind, self._registration, self._plan, missing
            )
            for position in missing:
                structures[position] = resolved[position]
                self._engine._watch_plan_key(
                    planner.shard_key(
                        self._registration, self._plan, self._plan.planned[position]
                    ),
                    self._ds,
                    self._kind,
                )
        return effective, positions

    def serve(self, query: Any) -> bool:
        effective, positions = self._routed(query)
        started = time.perf_counter()
        try:
            answer = gather_fast(
                self._registration, self._spec, self._plan, self._structures,
                positions, effective, engine=self._engine, kind=self._kind,
            )
        except Exception:
            self._engine._bump(self._kind, serve_errors=1)
            raise
        elapsed = time.perf_counter() - started
        self._engine._count_serve(
            self._kind, queries=1, serve_seconds=elapsed, shard_serve_seconds=elapsed
        )
        return answer

    def serve_many(self, queries: Sequence[Any]) -> List[bool]:
        serve = self.serve
        return [serve(query) for query in queries]


class _MutableServe:
    """The serve plan of a mutable session's kind: lock-free versioned reads.

    The plan binds the session state and registration, **not** a structure:
    every answer pins the state's current published
    :class:`~repro.service.mutable._Version` record -- one attribute load
    plus a per-thread announce slot, no shared lock of any kind -- and
    serves the kind's structure out of it, so delta maintenance and
    fallback rebuilds are picked up without any plan invalidation.  A
    writer can never block a read; batch atomicity lives in
    ``_MutableState.query_batch`` (one pin across every kind group).
    First-touch materialization happens before the serve timer starts, so
    build cost never leaks into ``serve_seconds``.
    """

    __slots__ = ("_engine", "_state", "_kind", "_registration", "_sharded")

    def __init__(
        self,
        engine: "QueryEngine",
        state: "_MutableState",
        kind: str,
        registration: "_Registration",
    ) -> None:
        self._engine = engine
        self._state = state
        self._kind = kind
        self._registration = registration
        self._sharded = registration.shards > 1

    def serve(self, query: Any) -> bool:
        state = self._state
        versions = state._versions
        slot = versions.slot()
        version = versions.pin(slot)
        try:
            state._ds._check_attached()
            structure = version.structures.get(self._kind)
            while structure is None:
                # First touch (or a failed repair dropped the kind): go
                # idle -- materialization takes the writer mutex, and an
                # announced reader must never block on it -- then re-pin.
                versions.release(slot)
                state._materialize(self._kind)
                version = versions.pin(slot)
                structure = version.structures.get(self._kind)
            started = time.perf_counter()
            try:
                if self._sharded:
                    answer = self._engine._planner.answer_fast(
                        self._registration, structure, query, kind=self._kind
                    )
                else:
                    answer = self._registration.scheme.answer_fast(structure, query)
            except Exception:
                self._engine._bump(self._kind, serve_errors=1)
                raise
            elapsed = time.perf_counter() - started
        finally:
            versions.release(slot)
        self._engine._count_serve(self._kind, queries=1, serve_seconds=elapsed)
        return answer

    # No serve_many here: mutable batches never reach the per-kind plans --
    # Dataset.query_batch routes the whole batch to _MutableState.query_batch,
    # which pins one version record across *every* kind group (batch
    # atomicity is a whole-batch property, not a per-group one).


class Dataset:
    """One attached dataset, addressable by name, serving every kind.

    Created by :meth:`repro.service.engine.QueryEngine.attach` (or, without
    a name, by the engine's payload-request adapter); not meant to be
    constructed directly.  The session owns the dataset's content identity
    -- computed exactly once at attach -- and the per-kind artifact keys
    derived from it, which is what makes the warm serving path one
    dictionary probe instead of a fingerprint-memo lookup per request.

    Attach-time options fix how each kind resolves:

    * ``kinds`` restricts the served kinds (default: every kind registered
      at attach time);
    * ``shards=K`` overrides the registration's shard count for every
      served kind whose scheme declares a
      :class:`~repro.service.merge.ShardSpec` (kinds without one keep their
      registered path);
    * ``mutable=True`` routes all serving through versioned snapshot
      publication and enables :meth:`apply_changes`.

    Thread safety matches the engine's: any number of threads may query
    concurrently; mutable sessions serve lock-free against the current
    published version (writers never block readers), so answers always
    reflect a fully-applied version.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        name: Optional[str],
        data: Any,
        fingerprint: str,
        *,
        kinds: Optional[Sequence[str]] = None,
        shards: int = 1,
        mutable: bool = False,
    ) -> None:
        self._engine = engine
        self._name = name
        self._data = data
        self._fingerprint = fingerprint
        self._shards = shards
        self._detached = False
        self._keys: Dict[str, ArtifactKey] = {}
        #: Per-kind serve plans (named sessions only): registration,
        #: resolved structure reference and bound kernel captured once, so
        #: the steady-state query path is one dict hit plus one kernel call.
        self._plans: Dict[str, Any] = {}
        self._plans_lock = threading.Lock()
        if name is None and kinds is None:
            # Anonymous adapter session: defer to the engine's registrations
            # so later register() calls are visible, exactly like the legacy
            # payload path.
            self._registrations: Optional[Dict[str, "_Registration"]] = None
        else:
            served = tuple(kinds) if kinds is not None else tuple(engine.kinds())
            if not served:
                raise ServiceError(
                    "attach() found no kinds to serve; register at least one "
                    "query kind first (or pass kinds=...)"
                )
            registrations: Dict[str, "_Registration"] = {}
            for kind in served:
                registration = engine._registration(kind)
                effective = registration.shards
                if shards > 1 and registration.scheme.sharding is not None:
                    effective = shards
                if effective != registration.shards:
                    registration = replace(registration, shards=effective)
                registrations[kind] = registration
            self._registrations = registrations
        self._mutable = _MutableState(self) if mutable else None

    # -- identity --------------------------------------------------------------

    @property
    def name(self) -> Optional[str]:
        """The attach name; ``None`` for anonymous adapter sessions."""
        return self._name

    @property
    def data(self) -> Any:
        """The attached payload object (treated as immutable while served,
        unless the session was attached ``mutable=True``)."""
        return self._data

    @property
    def fingerprint(self) -> str:
        """The content identity computed once at attach (version 0 for
        mutable sessions; see :meth:`version`)."""
        return self._fingerprint

    @property
    def kinds(self) -> List[str]:
        """Sorted kinds this session serves."""
        if self._registrations is None:
            return self._engine.kinds()
        return sorted(self._registrations)

    @property
    def mutable(self) -> bool:
        return self._mutable is not None

    @property
    def detached(self) -> bool:
        return self._detached

    @property
    def version(self) -> int:
        """Monotonic count of applied change batches (0 when immutable)."""
        return 0 if self._mutable is None else self._mutable.version

    def stats(self) -> Dict[str, Any]:
        """This session's slice of the engine's counter snapshot.

        A plain JSON-serializable dict: the session identity (``dataset``,
        ``version``, ``mutable``) plus ``kinds`` mapping each served kind to
        its :meth:`~repro.service.engine.SchemeStats.stats_snapshot` dict.
        The supported way to read serving counters for one session --
        callers (examples, tests, the workload driver's per-run window)
        never reach into ``engine.stats().per_kind`` directly.
        """
        per_kind = self._engine.stats().stats_snapshot()["per_kind"]
        served = set(self.kinds)
        return {
            "dataset": self._name,
            "version": self.version,
            "mutable": self.mutable,
            "kinds": {
                kind: counters
                for kind, counters in per_kind.items()
                if kind in served
            },
        }

    def shards_for(self, kind: str) -> int:
        """Effective shard count serving ``kind`` for this session."""
        return self.registration_for(kind).shards

    def registration_for(self, kind: str) -> "_Registration":
        """The (possibly shard-overridden) registration serving ``kind``."""
        if self._registrations is None:
            return self._engine._registration(kind)
        try:
            return self._registrations[kind]
        except KeyError:
            raise ServiceError(
                f"dataset {self._name!r} does not serve kind {kind!r}; "
                f"served kinds: {self.kinds}"
            ) from None

    def artifact_key(self, kind: str) -> ArtifactKey:
        """The artifact identity serving ``kind`` at the current version.

        Immutable sessions precompute one key per kind (the warm-path probe
        is then a single dictionary access); mutable sessions derive the key
        from the version lineage, so every applied batch addresses a fresh
        artifact without an O(|D|) re-hash.
        """
        if self._mutable is not None:
            return self._mutable.artifact_key(kind)
        key = self._keys.get(kind)
        if key is None:
            registration = self.registration_for(kind)
            key = ArtifactKey(
                fingerprint=self._fingerprint,
                scheme=registration.scheme.name,
                params=registration.params,
            )
            self._keys[kind] = key
        return key

    # -- serving ---------------------------------------------------------------

    def query(self, kind: str, query: Any) -> bool:
        """Answer one query of ``kind`` over this dataset.

        Steady state for a named session is the hot path: one serve-plan
        dict hit plus one untracked kernel call (the plan captured the
        registration and the resolved structure at first use).  The first
        query per kind -- and any query after a plan invalidation -- walks
        the engine's ordinary artifact layers (cache -> store -> build) with
        the precomputed identity; mutable sessions answer lock-free against
        the latest published (fully-applied) version.
        """
        plan = self._plans.get(kind)
        if plan is None:
            self._check_attached()
            plan = self._build_plan(kind)
            if plan is None:
                return self._engine._serve_for(self, kind, query)
        return plan.serve(query)

    def query_tracked(
        self, kind: str, query: Any, tracker: Optional[CostTracker] = None
    ) -> bool:
        """Answer one query through the *analytic* (tracked) serving path.

        Bypasses the serve-plan fast path: resolution walks the engine's
        artifact layers per request and evaluation runs the scheme's cost-
        charging ``evaluate`` against ``tracker`` (the shared no-op tracker
        when omitted) -- the tractability API the certifier measures, kept
        byte-for-byte intact next to the untracked production path.  Answers
        are always identical to :meth:`query`; the hot-path property suite
        pins the equality.
        """
        from repro.core.cost import ensure_tracker

        self._check_attached()
        # Coerce None to the shared no-op tracker *here*: further down the
        # stack a None tracker selects the untracked kernels (the fast
        # path), and this method's contract is the analytic evaluator even
        # when the caller does not care about the charges.
        return self._engine._serve_for(self, kind, query, ensure_tracker(tracker))

    def _build_plan(self, kind: str) -> Optional[Any]:
        """Capture the serve plan for ``kind`` (named sessions only).

        Resolution happens exactly once, through the same accounted engine
        layers as the general path; anonymous adapter sessions return
        ``None`` and keep the legacy per-request probing semantics.
        """
        if self._name is None:
            return None
        engine = self._engine
        registration = self.registration_for(kind)
        watch_key: Optional[ArtifactKey] = None
        if self._mutable is not None:
            plan: Any = _MutableServe(engine, self._mutable, kind, registration)
        elif registration.shards > 1:
            shard_plan = engine._planner.plan(
                kind, registration, self._data, self._fingerprint
            )
            plan = _ShardedServe(engine, self, kind, registration, shard_plan)
        else:
            structure = engine._resolve_for(self, kind)
            answer_one, answer_many = _bind_fast(registration.scheme, structure)
            plan = _ServePlan(engine, kind, answer_one, answer_many)
            watch_key = self.artifact_key(kind)
        with self._plans_lock:
            # A session detached mid-build must not cache a live plan: the
            # release path cleared the dict under this lock *after* setting
            # the flag, so re-checking here closes the race.
            if not self._detached:
                self._plans[kind] = plan
        if watch_key is not None:
            # Register *after* installing: if the structure was evicted
            # while this plan was built, the watcher fires right here and
            # removes the just-installed plan (sharded plans register per
            # shard as structures are captured; mutable plans hold none).
            engine._watch_plan_key(watch_key, self, kind)
        return plan

    def _answer_group(self, kind: str, queries: Sequence[Any]) -> List[bool]:
        """Answer one same-kind group through the plan's batch kernel."""
        plan = self._plans.get(kind)
        if plan is None:
            self._check_attached()
            plan = self._build_plan(kind)
            if plan is None:
                engine = self._engine
                return [engine._serve_for(self, kind, query) for query in queries]
        return plan.serve_many(queries)

    def query_batch(
        self,
        requests: Iterable[Any],
        *,
        concurrent: bool = True,
    ) -> List[bool]:
        """Answer a batch of ``(kind, query)`` pairs; answers match input order.

        Items may be plain ``(kind, query)`` tuples or
        :class:`~repro.service.engine.QueryRequest` records (their
        ``dataset``/``data`` fields, if set, must address this session).

        The batch is **vectorized**: queries are grouped by kind and each
        group runs through one ``answer_many`` kernel call instead of one
        dispatch per query.  Mutable sessions pin one published version
        record across every group, so the whole batch reflects one version
        (the batch-atomic snapshot guarantee -- one pointer read, not a
        lock).  With ``concurrent=True``, large
        batches are chunked to the engine pool's width -- one task per
        worker, never one task per query; small batches run inline.
        """
        pairs = [self._as_pair(item) for item in requests]
        self._check_attached()
        if self._mutable is not None:
            return self._mutable.query_batch(pairs)
        if not pairs:
            return []
        answers: List[bool] = [False] * len(pairs)
        groups = _group_by_kind(pairs)
        workers = self._engine._max_workers
        if not concurrent or len(pairs) <= _INLINE_BATCH or workers <= 1:
            for kind, (positions, queries) in groups.items():
                for position, answer in zip(
                    positions, self._answer_group(kind, queries)
                ):
                    answers[position] = answer
            return answers
        chunk_length = _chunk_length(len(pairs), workers)
        jobs: List[Tuple[str, List[int], List[Any]]] = []
        for kind, (positions, queries) in groups.items():
            for start in range(0, len(queries), chunk_length):
                jobs.append(
                    (
                        kind,
                        positions[start : start + chunk_length],
                        queries[start : start + chunk_length],
                    )
                )
        pool = self._engine._ensure_pool()
        futures = [
            (positions, pool.submit(self._answer_group, kind, queries))
            for kind, positions, queries in jobs
        ]
        for positions, future in futures:
            for position, answer in zip(positions, future.result()):
                answers[position] = answer
        return answers

    def submit(self, kind: str, query: Any) -> "Future[bool]":
        """Asynchronous :meth:`query`: a future resolving on the engine pool.

        A future still queued when the session detaches raises
        :class:`~repro.core.errors.UnknownDatasetError` from ``result()``
        (the query re-checks liveness when it actually runs); a submit
        racing :meth:`QueryEngine.close` surfaces the engine's own
        ``ServiceError`` instead of the raw pool shutdown error.
        """
        self._check_attached()
        pool = self._engine._ensure_pool()
        try:
            return pool.submit(self.query, kind, query)
        except RuntimeError as exc:
            # The pool shut down between the liveness check and the enqueue.
            raise ServiceError("engine is closed") from exc

    def warm(self, kinds: Optional[Sequence[str]] = None) -> "Dataset":
        """Pre-build (and persist) the structures serving ``kinds``.

        Defaults to every served kind; returns ``self`` so attach-and-warm
        chains: ``ds = engine.attach("events", data).warm()``.
        """
        self._check_attached()
        for kind in self.kinds if kinds is None else kinds:
            self._engine._resolve_for(self, kind)
        return self

    def _as_pair(self, item: Any) -> Tuple[str, Any]:
        if isinstance(item, tuple) and len(item) == 2:
            return item
        kind = getattr(item, "kind", None)
        if kind is not None and hasattr(item, "query"):
            named = getattr(item, "dataset", None)
            if named is not None and named != self._name:
                raise ServiceError(
                    f"request addresses dataset {named!r}, not {self._name!r}"
                )
            payload = getattr(item, "data", None)
            if payload is not None and payload is not self._data:
                raise ServiceError(
                    "request carries a payload that is not this session's data"
                )
            return kind, item.query
        raise ServiceError(
            f"query_batch items are (kind, query) pairs or QueryRequests; "
            f"got {type(item).__name__}"
        )

    # -- mutation --------------------------------------------------------------

    def apply_changes(self, changes: Iterable[Any]) -> ChangeLog:
        """Apply one change batch atomically across every served kind.

        Only valid for sessions attached ``mutable=True``.  Each served kind
        with a materialized structure is maintained in place through its
        scheme's ``apply_delta`` hook when possible; sharded kinds and
        refused batches fall back to resolving the post-batch content
        (content-addressed shard artifacts make that a touched-shards-only
        rebuild).  Readers never observe an intermediate state: every
        maintenance step runs against the offline structure set, and the
        new version becomes visible through one atomic pointer store.
        """
        self._check_attached()
        if self._mutable is None:
            raise ServiceError(
                f"dataset {self._name!r} was attached immutable; pass "
                "mutable=True to attach() to enable apply_changes"
            )
        return self._mutable.apply_changes(changes)

    def flush(self) -> None:
        """Write-behind barrier: returns with the current version durable
        (no-op for immutable sessions)."""
        if self._mutable is not None:
            self._mutable.flush()

    def dataset(self) -> Any:
        """A consistent snapshot of the current content (the attach payload
        for immutable sessions)."""
        if self._mutable is None:
            return self._data
        return self._mutable.snapshot()

    # -- lifecycle -------------------------------------------------------------

    def _check_attached(self) -> None:
        if self._detached:
            raise UnknownDatasetError(
                f"dataset {self._name!r} is detached; attach it again to serve"
            )
        if self._engine._closed:
            raise ServiceError("engine is closed")

    def _drop_plan(self, kind: str) -> None:
        """Release one cached serve plan (engine-internal).

        Fired by the engine's keyed plan watchers when a structure the plan
        captured is evicted, so even a session that is never queried again
        frees its reference; live sessions transparently rebuild on their
        next query.
        """
        with self._plans_lock:
            self._plans.pop(kind, None)

    def _release(self) -> None:
        """Flush dirty state and mark detached (engine-internal).

        The flag is set *before* the serve plans are dropped (both under the
        plan lock a concurrent :meth:`_build_plan` re-checks), so a queued
        future that runs after detach can never re-install a plan and serve
        a released session -- it lands on :meth:`_check_attached` and raises
        :class:`~repro.core.errors.UnknownDatasetError` cleanly.
        """
        if self._detached:
            return
        self._detached = True
        with self._plans_lock:
            self._plans.clear()
        if self._mutable is not None:
            self._mutable.flush()

    def detach(self) -> None:
        """Flush dirty state, release the name, evict cached structures.

        Idempotent.  Further queries or batches against this session raise
        :class:`~repro.core.errors.UnknownDatasetError`.
        """
        if self._detached:
            return
        if self._name is None:
            # Anonymous adapter sessions are owned by the engine memo.
            self._engine.invalidate(self._data)
            self._detached = True
            return
        self._engine.detach(self._name)

    def __enter__(self) -> "Dataset":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self._name if self._name is not None else "<anonymous>"
        tags = []
        if self._mutable is not None:
            tags.append(f"mutable v{self.version}")
        if self._shards > 1:
            tags.append(f"shards={self._shards}")
        suffix = f" ({', '.join(tags)})" if tags else ""
        return f"Dataset({label!r}, kinds={self.kinds}{suffix})"


class _MutableState:
    """Multi-kind mutable serving state behind one published version pointer.

    The generalization of :class:`~repro.service.mutable.DatasetHandle` to a
    whole session: one :class:`~repro.service.mutable.MutableContent`
    working copy, one :class:`~repro.service.mutable.VersionedStructures`
    (left-right versioned publication: lock-free readers, writer-only
    mutex), and one lazily materialized structure **per served kind, per
    left-right side**.  A change batch validates once, screens once, then
    maintains every materialized structure against the offline side --
    delta-capable monolithic kinds in place through ``apply_delta``,
    everything else by rebuilding from the post-batch content (sharded
    kinds reuse untouched shard artifacts) -- publishes the new version
    with one atomic pointer store, and re-applies to the retired side.
    Kinds never queried stay unmaterialized and cost nothing until first
    use, at which point they build from the *current* content.
    """

    def __init__(self, ds: Dataset) -> None:
        self._ds = ds
        self._engine = ds._engine
        self.tracker = CostTracker()
        self.log = ChangeLog()
        self._content = MutableContent(ds._data, self.tracker, self.log)
        self._versions = VersionedStructures(ds._fingerprint)
        self._persist_guard = threading.Lock()
        self._persist_futures: Dict[str, Any] = {}
        self._persisted: Dict[str, int] = {}
        # kind -> terminal store failure from write-behind; surfaced (not
        # swallowed) by the next flush()/detach.
        self._persist_errors: Dict[str, BaseException] = {}

    @property
    def version(self) -> int:
        return self._versions.current.number

    def artifact_key(self, kind: str) -> ArtifactKey:
        """Identity of this version's artifact for ``kind``."""
        registration = self._ds.registration_for(kind)
        return ArtifactKey(
            fingerprint=self._versions.current.lineage,
            scheme=registration.scheme.name,
            params=registration.params,
        )

    def snapshot(self) -> Any:
        with self._versions.writer_mutex:
            return self._content.canonical()

    # -- structures ------------------------------------------------------------

    def resolve(self, kind: str) -> Any:
        """The structure serving ``kind`` at the current version.

        Pins the published version like any reader; first touch goes idle
        and materializes under the writer mutex (see :meth:`_materialize`).
        """
        versions = self._versions
        with versions.pinned() as version:
            self._ds._check_attached()
            structure = version.structures.get(kind)
            if structure is not None:
                return structure
        return self._materialize(kind)

    def _materialize(self, kind: str) -> Any:
        """First-touch build of ``kind`` from the *current* content.

        Runs under the writer mutex (callers must hold no announce slot:
        a pinned reader blocking here would deadlock a draining writer) and
        installs the structure into **both** left-right sides -- the
        published side in place (readers on any live version observe the
        kind appear with identical answers; the content did not change) and
        the offline side as a private twin, so the next batch can fold into
        it without touching what readers see.

        At version 0 the session's attach-time fingerprint addresses the
        ordinary content-addressed artifacts, so warm cache/store resolution
        applies; later versions snapshot the working copy (one O(|D|) hash,
        paid at materialization, not per request).  Delta-capable monolithic
        kinds are privatized exactly like
        :meth:`~repro.service.mutable.DatasetHandle._private_structure`, so
        in-place maintenance never corrupts cache-shared structures.
        """
        versions = self._versions
        with versions.writer_mutex:
            structure = versions.current.structures.get(kind)
            if structure is not None:
                return structure
            if versions.current.number == 0:
                content, fingerprint = self._ds._data, self._ds._fingerprint
            else:
                content, fingerprint = self._content.canonical(), None
            structure = self._build(kind, content, fingerprint)
            versions.install(kind, structure, self._twin(kind, structure, content))
            return structure

    def _twin(self, kind: str, structure: Any, content: Any) -> Any:
        """The offline-side twin of a published structure for ``kind``.

        Only delta-capable monolithic kinds are mutated in place, so only
        they need a second instance -- a codec round-trip when serializable,
        else a second private build (privatization, not a cache miss: it is
        not counted as a build).  Everything else shares one instance
        across both left-right sides because nothing mutates it in place.
        """
        registration = self._ds.registration_for(kind)
        scheme = registration.scheme
        if registration.shards > 1 or scheme.apply_delta is None:
            return structure
        if scheme.serializable:
            return scheme.load(scheme.dump(structure))
        return scheme.preprocess(content, self.tracker)

    def _build(self, kind: str, content: Any, fingerprint: Optional[str]) -> Any:
        engine = self._engine
        registration = self._ds.registration_for(kind)
        scheme = registration.scheme
        delta_capable = registration.shards == 1 and scheme.apply_delta is not None
        if not delta_capable or scheme.serializable:
            if fingerprint is None:
                fingerprint = dataset_fingerprint(content)
            if registration.shards > 1:
                return engine._planner.resolve(
                    kind, registration, content, fingerprint=fingerprint
                )
            key = ArtifactKey(
                fingerprint=fingerprint,
                scheme=scheme.name,
                params=registration.params,
            )
            structure = engine._resolve_by_key(kind, registration, key, content)
            if delta_capable:
                # Privatize through the codec: in-place delta maintenance
                # must never touch a structure shared through the cache.
                structure = scheme.load(scheme.dump(structure))
            return structure
        started = time.perf_counter()
        structure = scheme.preprocess(content, self.tracker)
        engine._bump(kind, builds=1, build_seconds=time.perf_counter() - started)
        return structure

    # -- serving ---------------------------------------------------------------

    def _answer(
        self,
        kind: str,
        structure: Any,
        query: Any,
        tracker: Optional[CostTracker] = None,
    ) -> bool:
        """Evaluate one query over a pinned structure.

        Without a ``tracker`` the untracked production kernels answer
        (``answer_fast`` / the planner's fast scatter); with one, the
        analytic cost-charging evaluator runs -- the tracked path of
        :meth:`Dataset.query_tracked`.  A kernel exception bumps
        ``serve_errors`` before propagating, so failed serves are never
        invisible to health accounting.
        """
        registration = self._ds.registration_for(kind)
        started = time.perf_counter()
        try:
            if registration.shards > 1:
                if tracker is None:
                    answer = self._engine._planner.answer_fast(
                        registration, structure, query, kind=kind
                    )
                else:
                    answer = self._engine._planner.answer(
                        kind, registration, structure, query, tracker
                    )
            elif tracker is None:
                answer = registration.scheme.answer_fast(structure, query)
            else:
                answer = registration.scheme.answer(structure, query, tracker)
        except Exception:
            self._engine._bump(kind, serve_errors=1)
            raise
        self._engine._count_serve(
            kind, queries=1, serve_seconds=time.perf_counter() - started
        )
        # Preserve an explicit DegradedAnswer marker; plain bool otherwise.
        return answer if isinstance(answer, faults.DegradedAnswer) else bool(answer)

    def query(
        self, kind: str, query: Any, tracker: Optional[CostTracker] = None
    ) -> bool:
        versions = self._versions
        slot = versions.slot()
        version = versions.pin(slot)
        try:
            self._ds._check_attached()
            structure = version.structures.get(kind)
            while structure is None:
                versions.release(slot)
                self._materialize(kind)
                version = versions.pin(slot)
                structure = version.structures.get(kind)
            return self._answer(kind, structure, query, tracker)
        finally:
            versions.release(slot)

    def query_batch(self, pairs: Sequence[Tuple[str, Any]]) -> List[bool]:
        """All pairs against one pinned version: every answer sees one state.

        The batch is grouped by kind and each group runs through one
        ``answer_many`` kernel call -- vectorized like the immutable batch
        path, but with **one** version record pinned across every group, so
        the whole batch is atomic against writers (one pointer read, not a
        lock).  Kinds not yet materialized are built first while idle:
        materialization takes the writer mutex, which an announced reader
        must never block on.
        """
        versions = self._versions
        groups = _group_by_kind(pairs)
        slot = versions.slot()
        version = versions.pin(slot)
        try:
            self._ds._check_attached()
            while any(version.structures.get(kind) is None for kind in groups):
                versions.release(slot)
                for kind in groups:
                    if versions.current.structures.get(kind) is None:
                        self._materialize(kind)
                version = versions.pin(slot)
            answers: List[bool] = [False] * len(pairs)
            for kind, (positions, queries) in groups.items():
                registration = self._ds.registration_for(kind)
                structure = version.structures[kind]
                started = time.perf_counter()
                try:
                    if registration.shards > 1:
                        planner = self._engine._planner
                        group_answers = [
                            planner.answer_fast(
                                registration, structure, query, kind=kind
                            )
                            for query in queries
                        ]
                    else:
                        group_answers = registration.scheme.answer_many(
                            structure, queries
                        )
                except Exception:
                    self._engine._bump(kind, serve_errors=len(queries))
                    raise
                self._engine._count_serve(
                    kind,
                    queries=len(queries),
                    serve_seconds=time.perf_counter() - started,
                )
                for position, answer in zip(positions, group_answers):
                    answers[position] = answer
            return answers
        finally:
            versions.release(slot)

    # -- mutation --------------------------------------------------------------

    def apply_changes(self, changes: Iterable[Any]) -> ChangeLog:
        """Apply one batch to every materialized kind; left-right publish.

        Phase 1 runs entirely against the **offline** structure set, which
        no reader can see: delta-capable monolithic kinds fold in place
        through ``apply_delta`` (a mid-fold crash marks the kind torn --
        the torn instance is replaced by the rebuild below, so a torn fold
        can never be published), everything else rebuilds from the
        post-batch content.  The new version is then published with one
        atomic pointer store; readers pinned to the retired version are
        drained, and phase 2 brings the retired set up to date (the same
        delta re-applied, or the rebuilt structure twinned), making it the
        next offline set.  Delta cost is paid twice -- O(|CHANGED|) each --
        never an O(|D|) clone.

        A rebuild failure drops the failing kind *and every kind not yet
        rebuilt* from both sides (their pre-batch structures are stale and
        must never serve the committed content); the version still
        publishes -- content is the source of truth -- and the error
        re-raises after both sides are consistent.  Next query per dropped
        kind re-materializes from the post-batch content: degraded-and-
        loud, never silently wrong.
        """
        batch = list(changes)
        versions = self._versions
        with versions.writer_mutex:
            self._ds._check_attached()
            self._content.validate(batch)
            effective = self._content.screen(batch)
            if not effective:
                self.log.record(0, 0, "batch screened to no-ops")
                return self.log
            offline = versions.offline
            delta_kinds: List[Tuple[str, float]] = []  # (kind, apply seconds)
            rebuild_kinds: List[str] = []
            torn_kinds: List[str] = []
            for kind in sorted(offline):
                registration = self._ds.registration_for(kind)
                scheme = registration.scheme
                if registration.shards == 1 and scheme.apply_delta is not None:
                    started = time.perf_counter()
                    try:
                        if faults._PLAN is not None:
                            faults.on_delta_apply(kind)
                        offline[kind] = scheme.apply_delta(
                            offline[kind], effective, self.tracker
                        )
                        delta_kinds.append((kind, time.perf_counter() - started))
                        continue
                    except DeltaError:
                        # Contract: raised *before* mutating -- plain fallback.
                        pass
                    except Exception:
                        # Crashed mid-fold: only the offline twin may be
                        # torn; the published side was never touched, so no
                        # reader can see the tear.  The batch still commits
                        # (content is the source of truth) and the rebuild
                        # below replaces the torn twin before publication.
                        torn_kinds.append(kind)
                rebuild_kinds.append(kind)
            for change in effective:
                self._content.apply(change)
            number = versions.current.number + 1
            lineage = advance_lineage(versions.current.lineage, number, effective)
            rebuilt: Dict[str, Any] = {}
            dropped: List[str] = []
            rebuild_error: Optional[BaseException] = None
            canonical: Any = None
            if rebuild_kinds:
                canonical = self._content.canonical()
                fingerprint = dataset_fingerprint(canonical)
                for index, kind in enumerate(rebuild_kinds):
                    try:
                        fresh = self._build(kind, canonical, fingerprint)
                    except Exception as exc:
                        dropped = rebuild_kinds[index:]
                        for late in dropped:
                            offline.pop(late, None)
                        rebuild_error = exc
                        break
                    offline[kind] = fresh
                    rebuilt[kind] = fresh
            versions.publish(number, lineage)
            for kind, seconds in delta_kinds:
                self._engine._bump(
                    kind,
                    delta_batches=1,
                    delta_changes=len(effective),
                    delta_seconds=seconds,
                )
            for kind in rebuilt:
                self._engine._bump(kind, fallback_rebuilds=1)
                if kind in torn_kinds:
                    self._engine._bump(kind, write_rollbacks=1)
            # Phase 2: once readers drain off the retired side, bring it up
            # to this version so it can serve as the next offline set.
            versions.drain()
            retired = versions.offline
            for late in dropped:
                retired.pop(late, None)
            for kind, _seconds in delta_kinds:
                scheme = self._ds.registration_for(kind).scheme
                try:
                    retired[kind] = scheme.apply_delta(
                        retired[kind], effective, self.tracker
                    )
                except Exception:
                    # The published side is intact and current; repair the
                    # mirror from it so the next batch folds into a correct
                    # twin.  Loud in the counters, invisible to readers.
                    if canonical is None:
                        canonical = self._content.canonical()
                    retired[kind] = self._twin(
                        kind, versions.current.structures[kind], canonical
                    )
                    self._engine._bump(kind, write_rollbacks=1)
            for kind, fresh in rebuilt.items():
                retired[kind] = self._twin(kind, fresh, canonical)
            if rebuild_error is not None:
                raise rebuild_error
            for kind, _seconds in delta_kinds:
                self._schedule_persist(kind)
            screened = len(batch) - len(effective)
            self.log.record(
                len(effective),
                0,
                f"v{number}: {len(effective)} change(s); "
                f"delta={sorted(kind for kind, _ in delta_kinds)} "
                f"rebuild={sorted(rebuild_kinds)}"
                + (f", {screened} screened" if screened else ""),
            )
            return self.log

    # -- write-behind persistence ----------------------------------------------

    def _store_ready(self, kind: str) -> bool:
        registration = self._ds.registration_for(kind)
        return (
            self._engine._store is not None
            and registration.shards == 1
            and registration.scheme.dump is not None
        )

    def _schedule_persist(self, kind: str) -> None:
        if not self._store_ready(kind):
            return
        target = self._versions.current.number
        pool = self._engine._ensure_persist_pool()
        with self._persist_guard:
            self._persist_futures[kind] = pool.submit(self._persist, kind, target)

    def _persist(self, kind: str, target: int) -> None:
        """Dump ``kind``'s structure at version ``target`` if still current.

        Mirrors the handle path: the dump runs with the version pinned
        exactly like a reader (writers drain pinned readers before
        re-folding a retired structure, so the bytes are a consistent
        snapshot), and the store write runs unpinned; a stale target is
        skipped because the newer batch queued its own task.

        Store failures (disk full, unwritable root) are retried with
        backoff per the recovery policy; a terminal failure is recorded in
        ``_persist_errors`` and raised by the next :meth:`flush` -- the
        in-memory structure stays current either way, only durability lags.
        """
        with self._versions.pinned() as version:
            if version.number != target or self._persisted.get(kind, 0) >= target:
                return
            structure = version.structures.get(kind)
            if structure is None:
                return
            registration = self._ds.registration_for(kind)
            payload = registration.scheme.dump(structure)
            key = ArtifactKey(
                fingerprint=version.lineage,
                scheme=registration.scheme.name,
                params=registration.params,
            )
        recovery = faults.policy()
        backoff = recovery.writebehind_backoff_seconds
        attempts = max(1, recovery.writebehind_attempts)
        for attempt in range(attempts):
            try:
                self._engine._store.put(key, payload)
                break
            except Exception as exc:
                if attempt + 1 < attempts:
                    self._engine._bump(kind, writebehind_retries=1)
                    time.sleep(backoff)
                    backoff *= 2
                    continue
                self._engine._bump(kind, writebehind_failures=1)
                with self._persist_guard:
                    self._persist_errors[kind] = exc
                return
        with self._persist_guard:
            self._persisted[kind] = max(self._persisted.get(kind, 0), target)
            self._persist_errors.pop(kind, None)

    def flush(self) -> None:
        """Barrier: every delta-maintained kind durable at the current version.

        Raises :class:`~repro.core.errors.WriteBehindError` (with the store
        failure as ``__cause__``) when any kind's write-behind exhausted its
        retries and a final synchronous attempt here still fails -- a stale
        on-disk artifact is surfaced, never silently dropped.
        """
        with self._persist_guard:
            futures = list(self._persist_futures.values())
        for future in futures:
            future.result()
        current = self._versions.current
        for kind in list(current.structures):
            if self._store_ready(kind):
                self._persist(kind, current.number)
        with self._persist_guard:
            errors = sorted(self._persist_errors.items())
        if errors:
            kind, cause = errors[0]
            raise WriteBehindError(
                f"write-behind persistence failed for kind(s) "
                f"{[name for name, _ in errors]} of dataset {self._ds.name!r}; "
                f"in-memory structures are current but on-disk artifacts are "
                f"stale"
            ) from cause
