"""Shard specs and per-kind merge operators for scatter-gather serving.

The paper's parallel-feasibility argument (Definition 1, Section 3) is that a
Pi-structure can be attacked with polylog *parallel* work.  Sharding makes
that operational: a dataset is partitioned into K pieces, each piece gets its
own small Pi-structure, and a query is answered by *scatter* (evaluate a
per-shard partial result on every relevant shard) followed by *gather*
(combine the partials with a kind-specific merge operator).

Three merge families cover every shardable case study:

``union``
    Boolean existential queries (membership, point/range selection): the
    per-shard answer is already a Boolean and the gather is disjunction.
``monoid combine``
    Aggregate queries (RMQ-style): each shard emits a partial aggregate --
    e.g. ``(min value, leftmost global argmin)`` -- and the gather folds an
    associative, commutative combine over them.
``k-way merge``
    Order-sensitive queries (top-k): each shard emits its local top-k
    candidates as a sorted run and the gather k-way merges the runs.

A scheme opts into sharding by attaching a :class:`ShardSpec` (partition
policy + split function + merge operator + optional query router) to
``PiScheme.sharding``; see :mod:`repro.queries.membership` for the simplest
example and :mod:`repro.service.sharding` for the planner that consumes it.

    >>> from repro.service.merge import union_merge, stable_bucket
    >>> union_merge().combine([False, True, False], None)
    True
    >>> stable_bucket("some row", 4) == stable_bucket("some row", 4)
    True
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable, List, Optional, Sequence

from repro.core.cost import CostTracker

__all__ = [
    "ShardPiece",
    "MergeOperator",
    "ShardSpec",
    "union_merge",
    "monoid_merge",
    "kway_merge",
    "stable_bucket",
    "locate_by_content",
    "range_blocks",
]

#: Per-shard partial evaluator: ``(structure, query, piece_meta, tracker) ->
#: partial result``.  ``None`` on a :class:`MergeOperator` means "use the
#: scheme's ordinary Boolean ``evaluate``" (the union case).
PartialFn = Callable[[Any, Any, Any, CostTracker], Any]
#: Gather: ``(partials, query) -> bool``; partials arrive in shard order.
CombineFn = Callable[[List[Any], Any], bool]


@dataclass(frozen=True)
class ShardPiece:
    """One shard of a partitioned dataset.

    Parameters
    ----------
    index:
        Shard id within the plan (part of the artifact identity).
    count:
        Total number of shards K the plan was built for.
    data:
        The shard's dataset, of the *same type* as the whole dataset, so the
        scheme's ordinary ``preprocess`` builds the shard structure unchanged.
    meta:
        Policy metadata the merge operator may need at gather time; range
        policies store ``{"offset": o, "length": l}`` here so positional
        queries can be rebased into shard-local coordinates.
    """

    index: int
    count: int
    data: Any
    meta: Any = None

    def is_empty(self) -> bool:
        """True when the shard holds no data (no structure is built for it)."""
        try:
            return len(self.data) == 0
        except TypeError:
            return self.data is None


@dataclass(frozen=True)
class MergeOperator:
    """How per-shard partial results become one answer.

    Parameters
    ----------
    name:
        Taxonomy label (``"union"``, ``"monoid"``, ``"kway"``) surfaced in
        reprs and docs.
    combine:
        Gather function ``(partials, query) -> bool``.
    partial:
        Optional scatter function ``(structure, query, meta, tracker) ->
        partial``; when absent the scheme's Boolean ``evaluate`` is the
        partial (union semantics).
    empty:
        Partial result for a shard that holds no data, ``(query) -> partial``
        (e.g. ``False`` for union, ``None`` -- the monoid identity -- for
        aggregates).
    """

    name: str
    combine: CombineFn
    partial: Optional[PartialFn] = None
    empty: Optional[Callable[[Any], Any]] = None


def union_merge() -> MergeOperator:
    """Disjunction gather for existential queries (membership, selection).

    Returns a :class:`MergeOperator` whose partial is the scheme's own
    Boolean evaluator and whose gather is ``any``; an empty shard
    contributes ``False``.
    """
    return MergeOperator(
        name="union",
        combine=lambda partials, query: any(partials),
        empty=lambda query: False,
    )


def monoid_merge(
    partial: PartialFn,
    fold: Callable[[Any, Any], Any],
    finalize: Callable[[Any, Any], bool],
    *,
    name: str = "monoid",
) -> MergeOperator:
    """Associative-combine gather for aggregate queries (RMQ/LCA-style).

    Parameters
    ----------
    partial:
        Scatter function producing a shard's partial aggregate, or ``None``
        when the query does not touch the shard (the monoid identity).
    fold:
        Associative binary combine over two non-identity partials.
    finalize:
        ``(folded aggregate or None, query) -> bool`` final answer.

    Returns the assembled :class:`MergeOperator`; ``None`` partials (empty or
    untouched shards) are skipped by the fold.
    """

    def combine(partials: List[Any], query: Any) -> bool:
        accumulated = None
        for part in partials:
            if part is None:
                continue
            accumulated = part if accumulated is None else fold(accumulated, part)
        return bool(finalize(accumulated, query))

    return MergeOperator(
        name=name, combine=combine, partial=partial, empty=lambda query: None
    )


def kway_merge(
    partial: PartialFn,
    finalize: Callable[[List[Any], Any], bool],
    *,
    name: str = "kway",
) -> MergeOperator:
    """Sorted-run gather for order-sensitive queries (top-k, ranked range).

    Parameters
    ----------
    partial:
        Scatter function producing a shard's sorted candidate run (plus any
        bookkeeping ``finalize`` needs, e.g. the shard's cardinality).
    finalize:
        ``(non-empty partials, query) -> bool``; typically k-way merges the
        runs with :func:`merge_sorted_desc` and inspects the k-th candidate.

    Returns the assembled :class:`MergeOperator`; empty shards are dropped
    before ``finalize`` sees the partial list.
    """

    def combine(partials: List[Any], query: Any) -> bool:
        present = [part for part in partials if part is not None]
        return bool(finalize(present, query))

    return MergeOperator(
        name=name, combine=combine, partial=partial, empty=lambda query: None
    )


def merge_sorted_desc(runs: Sequence[Sequence[Any]], count: int) -> List[Any]:
    """The ``count`` largest elements of descending-sorted ``runs`` (k-way merge)."""
    return list(islice(heapq.merge(*runs, reverse=True), count))


def _canonical(value: Any) -> Any:
    """Collapse ==-equal numeric aliases to one representative.

    Hash routing buckets by ``repr``, but the structures themselves compare
    with ``==`` -- and ``1 == 1.0 == True`` while their reprs differ.  Bools
    and integer-valued floats therefore canonicalize to ``int`` (recursively
    through tuples/lists, for row-shaped items) so equal values always land
    in the same bucket.  Over-merging distinct values is harmless; splitting
    equal values would break the K-vs-1 equivalence contract.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, (tuple, list)):
        return tuple(_canonical(item) for item in value)
    return value


def stable_bucket(value: Any, buckets: int) -> int:
    """Run-independent hash partition of ``value`` into ``[0, buckets)``.

    Uses CRC-32 of ``repr`` of the :func:`canonicalized <_canonical>` value
    -- like :func:`repro.core.query.stable_seed`, deliberately *not* Python's
    process-salted ``hash`` -- so the same element lands in the same shard in
    every process, which is what makes shard artifacts shareable across
    processes and change batches routable to shards.
    """
    if buckets < 1:
        raise ValueError("bucket count must be at least 1")
    return zlib.crc32(repr(_canonical(value)).encode("utf-8")) % buckets


def locate_by_content(item: Any, pieces: Sequence["ShardPiece"]) -> Optional[int]:
    """Route a row-shaped changed item to its hash bucket, or None.

    The shared ``ShardSpec.locate`` implementation for hash-partitioned
    row/tuple datasets (selection relations, top-k score tables); items that
    cannot be viewed as a tuple are unroutable (the caller degrades to
    "all shards").
    """
    try:
        return stable_bucket(tuple(item), len(pieces))
    except TypeError:
        return None


def range_blocks(length: int, shards: int) -> List[tuple]:
    """Balanced contiguous ``(offset, length)`` blocks covering ``length`` slots.

    The first ``length % shards`` blocks are one element longer; empty blocks
    (when ``shards > length``) are omitted.  Block boundaries depend only on
    ``(length, shards)``, so an in-place point mutation leaves every other
    block's content -- and hence its content-addressed artifact -- unchanged.
    """
    if shards < 1:
        raise ValueError("shard count must be at least 1")
    base, extra = divmod(length, shards)
    blocks: List[tuple] = []
    offset = 0
    for index in range(shards):
        block_length = base + (1 if index < extra else 0)
        if block_length == 0:
            continue
        blocks.append((offset, block_length))
        offset += block_length
    return blocks


@dataclass(frozen=True)
class ShardSpec:
    """A scheme's declaration of how its datasets shard and its answers merge.

    Parameters
    ----------
    policy:
        Default partition policy, ``"hash"`` (content buckets; enables
        routing point lookups and change batches to single shards) or
        ``"range"`` (contiguous blocks; preserves positional structure for
        offset-based queries like RMQ).
    split:
        ``(data, K) -> [ShardPiece]``.  Hash policies return exactly K
        pieces with ``piece.index`` equal to its position (possibly empty
        pieces) so routers can index by bucket; range policies may omit
        empty blocks.
    merge:
        The :class:`MergeOperator` gathering per-shard partials.
    route:
        Optional scatter pruner ``(query, pieces) -> positions`` limiting
        which shards a query touches (``None`` = broadcast to all).
    locate:
        Optional change router ``(changed item, pieces) -> position`` used by
        shard-level invalidation to predict which shard a change batch
        touches; ``None``/unknown items fall back to "all shards".
    """

    policy: str
    split: Callable[[Any, int], List[ShardPiece]]
    merge: MergeOperator
    route: Optional[Callable[[Any, Sequence[ShardPiece]], Sequence[int]]] = None
    locate: Optional[Callable[[Any, Sequence[ShardPiece]], Optional[int]]] = None
