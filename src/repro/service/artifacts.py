"""The preprocessing-artifact store: Pi-structures as durable files.

A built Pi-structure is addressed by an :class:`ArtifactKey` --
``(dataset fingerprint, scheme name, params)`` -- and stored as one file:

.. code-block:: text

    +--------+---------+------------+---------------+-----------+
    | magic  | version | header len | header (JSON) |  payload  |
    | 6 B    | u16 BE  | u32 BE     | UTF-8         |  bytes    |
    +--------+---------+------------+---------------+-----------+

The JSON header repeats the key and carries the payload's SHA-256 and
length, so :meth:`ArtifactStore.get` can detect truncation, bit rot and
key collisions before a single payload byte reaches ``pickle``.  Writes go
through a temp file plus :func:`os.replace`, so readers never observe a
half-written artifact even with concurrent builders.

Version mismatches (the store format or a scheme's ``artifact_version``)
raise :class:`~repro.core.errors.ArtifactVersionError` -- the caller treats
that exactly like a miss and rebuilds, which is always safe because
artifacts are pure caches of PTIME-recomputable state.

    >>> import tempfile
    >>> from repro.service.artifacts import ArtifactKey, ArtifactStore
    >>> store = ArtifactStore(tempfile.mkdtemp())
    >>> key = ArtifactKey(fingerprint="ab" * 32, scheme="demo-scheme", params="|v1")
    >>> _ = store.put(key, b"pi-structure-bytes")
    >>> store.get(key)
    b'pi-structure-bytes'
    >>> store.contains(key), store.delete(key), store.contains(key)
    (True, True, False)
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.core.errors import ArtifactCorruptionError, ArtifactVersionError
from repro.service import faults

__all__ = ["ArtifactKey", "ArtifactStore", "MAGIC", "FORMAT_VERSION"]

#: File magic: never a valid pickle or JSON prefix, so foreign files fail fast.
MAGIC = b"\x89PIART"

#: Bumped whenever the container layout (not a payload) changes shape.
FORMAT_VERSION = 1

_HEADER_STRUCT = struct.Struct(">HI")  # (format version, header length)


def _slug(text: str) -> str:
    """A filesystem-safe rendering of a scheme name ('sort+binary-search')."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "scheme"


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one persisted Pi-structure.

    ``params`` is a canonical string for anything that changes the built
    structure beyond the dataset -- scheme parameters, and the scheme's
    ``artifact_version`` (two layouts of the same logical structure must not
    alias).
    """

    fingerprint: str
    scheme: str
    params: str = ""

    def filename(self) -> str:
        # The scheme name is part of the digest because the directory name is
        # only a lossy slug of it: two schemes that slug identically must
        # still get distinct paths.
        identity = f"{self.scheme}\x00{self.params}".encode("utf-8")
        return f"{self.fingerprint}-{hashlib.sha256(identity).hexdigest()[:12]}.pia"

    def as_header(self) -> Dict[str, str]:
        return {
            "fingerprint": self.fingerprint,
            "scheme": self.scheme,
            "params": self.params,
        }


class ArtifactStore:
    """Durable, corruption-checked storage for serialized Pi-structures."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: ArtifactKey) -> Path:
        return self.root / _slug(key.scheme) / key.filename()

    # -- writing ---------------------------------------------------------------

    def put(self, key: ArtifactKey, payload: bytes) -> Path:
        """Persist ``payload`` under ``key`` atomically; returns the path."""
        if faults._PLAN is not None:
            faults.on_store_write(key)
        header = dict(key.as_header())
        header["payload_len"] = len(payload)
        header["payload_sha256"] = hashlib.sha256(payload).hexdigest()
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")

        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The ".part" suffix keeps half-written (or crash-orphaned) temp
        # files out of the "*/*.pia" globs of keys()/size_bytes().
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(MAGIC)
                handle.write(_HEADER_STRUCT.pack(FORMAT_VERSION, len(header_bytes)))
                handle.write(header_bytes)
                handle.write(payload)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    # -- reading ---------------------------------------------------------------

    def get(self, key: ArtifactKey) -> Optional[bytes]:
        """The payload stored under ``key``, or None when absent.

        Raises :class:`ArtifactCorruptionError` on any integrity failure and
        :class:`ArtifactVersionError` on a format mismatch; a missing file is
        a plain miss (None).
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        if faults._PLAN is not None:
            blob = faults.on_store_read(key, blob)
        header, payload = self._parse(blob, path)
        for field_name, expected in key.as_header().items():
            if header.get(field_name) != expected:
                raise ArtifactCorruptionError(
                    f"{path}: header {field_name!r} is {header.get(field_name)!r}, "
                    f"expected {expected!r} (key collision or tampering)"
                )
        return payload

    def _parse(self, blob: bytes, path: Path) -> Tuple[dict, bytes]:
        prefix_len = len(MAGIC) + _HEADER_STRUCT.size
        if len(blob) < prefix_len:
            raise ArtifactCorruptionError(f"{path}: truncated before header")
        if blob[: len(MAGIC)] != MAGIC:
            raise ArtifactCorruptionError(f"{path}: bad magic; not an artifact file")
        version, header_len = _HEADER_STRUCT.unpack_from(blob, len(MAGIC))
        if version != FORMAT_VERSION:
            raise ArtifactVersionError(
                f"{path}: store format v{version}, this build reads v{FORMAT_VERSION}"
            )
        header_end = prefix_len + header_len
        if len(blob) < header_end:
            raise ArtifactCorruptionError(f"{path}: truncated inside header")
        try:
            header = json.loads(blob[prefix_len:header_end].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArtifactCorruptionError(f"{path}: unreadable header") from exc
        payload = blob[header_end:]
        if len(payload) != header.get("payload_len"):
            raise ArtifactCorruptionError(
                f"{path}: payload is {len(payload)} bytes, header promised "
                f"{header.get('payload_len')}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise ArtifactCorruptionError(f"{path}: payload checksum mismatch")
        return header, payload

    # -- maintenance -----------------------------------------------------------

    def contains(self, key: ArtifactKey) -> bool:
        return self._path(key).is_file()

    def delete(self, key: ArtifactKey) -> bool:
        """Remove one artifact; returns False when it was absent."""
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def keys(self) -> Iterator[ArtifactKey]:
        """Keys of every readable artifact (corrupt files are skipped)."""
        for path in sorted(self.root.glob("*/*.pia")):
            try:
                header, _ = self._parse(path.read_bytes(), path)
            except (ArtifactCorruptionError, ArtifactVersionError, OSError):
                continue
            yield ArtifactKey(
                fingerprint=header["fingerprint"],
                scheme=header["scheme"],
                params=header.get("params", ""),
            )

    def size_bytes(self) -> int:
        """Total on-disk footprint of the store."""
        return sum(path.stat().st_size for path in self.root.glob("*/*.pia"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore(root={str(self.root)!r})"
