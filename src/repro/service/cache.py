"""A thread-safe LRU cache of live Pi-structures, in front of the store.

The artifact store removes the *build* cost from warm serving; this cache
also removes the *load* (deserialization) cost for artifacts that are hot
within one process.  Capacity is counted in entries, not bytes -- the
structures here are polynomial-size by construction and the engine's working
set is a handful of (dataset, scheme) pairs.  Sharded kinds cache one entry
per shard, so hot shards of a cold dataset still serve from memory.

    >>> from repro.service.cache import LRUArtifactCache
    >>> cache = LRUArtifactCache(capacity=2)
    >>> cache.put("pi-structure-key", [1, 2, 3])
    >>> cache.get("pi-structure-key")
    [1, 2, 3]
    >>> cache.get("never-seen") is None
    True
    >>> cache.stats().hits, cache.stats().misses
    (1, 1)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Hashable, Optional

from repro.service import faults

__all__ = ["LRUArtifactCache", "CacheStats"]

_MISS = object()


@dataclass(frozen=True)
class CacheStats:
    """Counters snapshot: probes that hit, missed, and evictions made."""

    hits: int
    misses: int
    evictions: int
    entries: int
    capacity: int
    #: Eviction-listener callbacks that raised (and were contained).
    listener_errors: int = 0

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def stats_snapshot(self) -> Dict[str, Any]:
        """Plain JSON-serializable dict of the counters plus ``hit_rate``."""
        snapshot = dict(asdict(self))
        snapshot["hit_rate"] = self.hit_rate
        return snapshot


class LRUArtifactCache:
    """Bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._listener_errors = 0
        self._eviction_listener: Optional[Callable[[Hashable], None]] = None

    def set_eviction_listener(self, listener: Optional[Callable[[Hashable], None]]) -> None:
        """Register a callback fired (outside the cache lock) whenever an
        entry leaves the cache -- capacity eviction, :meth:`invalidate`, or
        :meth:`clear`.  The engine uses it to invalidate serve plans that
        captured a structure reference, so a dropped entry cannot stay
        pinned by a hot-path plan."""
        self._eviction_listener = listener

    def _notify(self, key: Hashable) -> None:
        # Always called *outside* the cache lock, and never allowed to
        # raise: a broken listener must not poison callers of put/
        # invalidate/clear, nor abort notification of the remaining keys
        # in a clear().  Failures are counted, not propagated.
        listener = self._eviction_listener
        if listener is None:
            return
        try:
            listener(key)
        except Exception:
            with self._lock:
                self._listener_errors += 1

    def get(self, key: Hashable, *, record: bool = True) -> Optional[Any]:
        """The cached structure, refreshed to most-recent, or None.

        ``record=False`` leaves the hit/miss counters untouched -- for
        re-probes of a key already counted once (e.g. the double-checked
        recheck under a build lock), so one logical lookup is one statistic.
        """
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                if record:
                    self._misses += 1
                return None
            self._entries.move_to_end(key)
            if record:
                self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evicts the least-recently-used when full.

        Returns nothing; eviction is recorded in :meth:`stats`.
        """
        evicted = None
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value
        if evicted is not None:
            self._notify(evicted)
        if faults._PLAN is not None:
            faults.on_cache_put(self, key)

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key``; returns True when an entry was actually removed."""
        with self._lock:
            removed = self._entries.pop(key, _MISS) is not _MISS
        if removed:
            self._notify(key)
        return removed

    def clear(self) -> None:
        """Drop every entry (counters are kept; they are cumulative)."""
        with self._lock:
            dropped = list(self._entries)
            self._entries.clear()
        for key in dropped:
            self._notify(key)

    def force_evict(self, count: int) -> int:
        """Evict up to ``count`` least-recently-used entries immediately.

        The fault-injection "eviction storm" primitive (also usable for
        memory-pressure shedding): entries leave through the same listener
        path as capacity evictions, so serve-plan watchers race exactly as
        they would under real pressure.  Returns how many were evicted.
        """
        dropped = []
        with self._lock:
            while self._entries and len(dropped) < count:
                key, _ = self._entries.popitem(last=False)
                self._evictions += 1
                dropped.append(key)
        for key in dropped:
            self._notify(key)
        return len(dropped)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        """An immutable snapshot of hit/miss/eviction counters and occupancy."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                capacity=self.capacity,
                listener_errors=self._listener_errors,
            )
