"""The serving half of the paper's economics: preprocess once, serve many.

The paper's Pi-structures are computed once in PTIME and amortized over many
polylog queries -- but an index that dies with the process amortizes nothing.
This package persists built structures and serves query batches against them:

:mod:`repro.service.artifacts`
    :class:`ArtifactStore` -- Pi-structures on disk, keyed by (dataset
    fingerprint, scheme name, params), with versioned headers and
    corruption detection.

:mod:`repro.service.cache`
    :class:`LRUArtifactCache` -- a bounded in-process cache in front of the
    store, so hot artifacts skip even the deserialization cost.

:mod:`repro.service.engine`
    :class:`QueryEngine` -- accepts batches of mixed queries, resolves each
    to a cached artifact (building and persisting on miss), executes
    batches on a thread pool, and keeps per-scheme serving statistics.

:mod:`repro.service.dataset`
    :class:`Dataset` -- the dataset-first serving surface:
    ``engine.attach(name, data)`` fingerprints a payload once and returns
    one named session serving every registered kind (monolithic, sharded
    and mutable paths unified), addressable from requests via
    ``QueryRequest(kind, dataset=name, query=...)``.

:mod:`repro.service.merge`
    :class:`ShardSpec` and the merge-operator families (union, monoid
    combine, k-way merge) that schemes declare to become shardable.

:mod:`repro.service.sharding`
    :class:`ShardPlanner` -- partitions datasets into K shards, builds
    per-shard Pi-structures in parallel, persists each as an independent
    content-addressed artifact, and serves queries by scatter-gather.

:mod:`repro.service.mutable`
    :class:`DatasetHandle` -- versioned, snapshot-consistent serving of
    *mutable* datasets: change batches fold into the live Pi-structure
    through per-scheme ``apply_delta`` hooks in O(|CHANGED| * polylog)
    (falling back to touched-shard or full rebuilds), with write-behind
    persistence of dirty artifacts.
"""

from repro.service.artifacts import ArtifactKey, ArtifactStore
from repro.service.cache import LRUArtifactCache
from repro.service.dataset import Dataset
from repro.service.engine import EngineStats, QueryEngine, QueryRequest, SchemeStats
from repro.service.mutable import DatasetHandle, MutableContent, SnapshotLatch
from repro.service.merge import (
    MergeOperator,
    ShardPiece,
    ShardSpec,
    kway_merge,
    monoid_merge,
    range_blocks,
    stable_bucket,
    union_merge,
)
from repro.service.sharding import (
    PlannedShard,
    ShardedStructure,
    ShardPlan,
    ShardPlanner,
    plan_diff,
    touched_shards,
)

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "LRUArtifactCache",
    "Dataset",
    "DatasetHandle",
    "MutableContent",
    "SnapshotLatch",
    "EngineStats",
    "QueryEngine",
    "QueryRequest",
    "SchemeStats",
    "MergeOperator",
    "ShardPiece",
    "ShardSpec",
    "kway_merge",
    "monoid_merge",
    "range_blocks",
    "stable_bucket",
    "union_merge",
    "PlannedShard",
    "ShardedStructure",
    "ShardPlan",
    "ShardPlanner",
    "plan_diff",
    "touched_shards",
]
