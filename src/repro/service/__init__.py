"""The serving half of the paper's economics: preprocess once, serve many.

The paper's Pi-structures are computed once in PTIME and amortized over many
polylog queries -- but an index that dies with the process amortizes nothing.
This package persists built structures and serves query batches against them:

:mod:`repro.service.artifacts`
    :class:`ArtifactStore` -- Pi-structures on disk, keyed by (dataset
    fingerprint, scheme name, params), with versioned headers and
    corruption detection.

:mod:`repro.service.cache`
    :class:`LRUArtifactCache` -- a bounded in-process cache in front of the
    store, so hot artifacts skip even the deserialization cost.

:mod:`repro.service.engine`
    :class:`QueryEngine` -- accepts batches of mixed queries, resolves each
    to a cached artifact (building and persisting on miss), executes
    batches on a thread pool, and keeps per-scheme serving statistics.

:mod:`repro.service.dataset`
    :class:`Dataset` -- the dataset-first serving surface:
    ``engine.attach(name, data)`` fingerprints a payload once and returns
    one named session serving every registered kind (monolithic, sharded
    and mutable paths unified), addressable from requests via
    ``QueryRequest(kind, dataset=name, query=...)``.

:mod:`repro.service.merge`
    :class:`ShardSpec` and the merge-operator families (union, monoid
    combine, k-way merge) that schemes declare to become shardable.

:mod:`repro.service.sharding`
    :class:`ShardPlanner` -- partitions datasets into K shards, builds
    per-shard Pi-structures in parallel, persists each as an independent
    content-addressed artifact, and serves queries by scatter-gather.

:mod:`repro.service.frontend`
    The serving front: an asyncio TCP gateway (:class:`ServingFront`,
    admission control + backpressure) over a multi-process worker pool
    (:class:`Supervisor`) in which every worker hosts its own engine
    against the *shared* on-disk store, plus the sync
    :class:`RemoteClient` whose sessions duck-type :class:`Dataset` for
    the workload drivers.

:mod:`repro.service.mutable`
    :class:`DatasetHandle` -- versioned, snapshot-consistent serving of
    *mutable* datasets: lock-free readers pin atomically published version
    records (:class:`VersionedStructures`) while change batches fold into
    the offline structure set through per-scheme ``apply_delta`` hooks in
    O(|CHANGED| * polylog) (falling back to touched-shard or full
    rebuilds), with write-behind persistence of dirty artifacts.

This module is also the *curated public surface*: everything a serving
client needs -- the engine, the dataset-first session API, the error
hierarchy, the workload harness (:class:`~repro.workloads.WorkloadSpec`,
:func:`~repro.workloads.run_closed_loop`, :func:`~repro.workloads.run_open_loop`)
and the catalog's :func:`~repro.catalog.build_query_engine` factory -- is
importable from ``repro.service`` directly.  Deep imports
(``from repro.service.engine import QueryEngine``) keep working; the
curated names in ``__all__`` are the supported, stable set.

    >>> from repro.service import build_query_engine, WorkloadSpec
    >>> engine = build_query_engine()
    >>> ds = engine.attach("d", (1, 2, 3), kinds=["list-membership"])
    >>> ds.query("list-membership", 2)
    True
    >>> engine.close()
"""

from repro.core.errors import (
    ArtifactCorruptionError,
    ArtifactError,
    ArtifactVersionError,
    DeltaError,
    InjectedFaultError,
    ReproError,
    ServiceError,
    ShardFailedError,
    UnknownDatasetError,
    WorkloadError,
    WriteBehindError,
)
from repro.service.artifacts import ArtifactKey, ArtifactStore
from repro.service.faults import (
    DegradedAnswer,
    FaultClock,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    SCENARIOS,
    active_plan,
    clear_fault_plan,
    install_fault_plan,
    scenario,
)
from repro.service.cache import LRUArtifactCache
from repro.service.dataset import Dataset
from repro.service.engine import EngineStats, QueryEngine, QueryRequest, SchemeStats
from repro.service.mutable import (
    DatasetHandle,
    MutableContent,
    SnapshotLatch,
    VersionedStructures,
)
from repro.service.merge import (
    MergeOperator,
    ShardPiece,
    ShardSpec,
    kway_merge,
    monoid_merge,
    range_blocks,
    stable_bucket,
    union_merge,
)
from repro.service.sharding import (
    PlannedShard,
    ShardedStructure,
    ShardPlan,
    ShardPlanner,
    plan_diff,
    touched_shards,
)

# Workload harness entry points.  Safe to import eagerly: repro.workloads
# depends only on repro.core and repro.incremental (datasets are
# duck-typed), so no cycle back into this package.
from repro.workloads import (
    DriftKeys,
    HotspotKeys,
    KeyDistribution,
    LatencyStats,
    UniformKeys,
    WorkloadReport,
    WorkloadSpec,
    ZipfKeys,
    run_closed_loop,
    run_open_loop,
)

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "LRUArtifactCache",
    "Dataset",
    "DatasetHandle",
    "MutableContent",
    "SnapshotLatch",
    "VersionedStructures",
    "EngineStats",
    "QueryEngine",
    "QueryRequest",
    "SchemeStats",
    "MergeOperator",
    "ShardPiece",
    "ShardSpec",
    "kway_merge",
    "monoid_merge",
    "range_blocks",
    "stable_bucket",
    "union_merge",
    "PlannedShard",
    "ShardedStructure",
    "ShardPlan",
    "ShardPlanner",
    "plan_diff",
    "touched_shards",
    # error hierarchy
    "ReproError",
    "ServiceError",
    "UnknownDatasetError",
    "ArtifactError",
    "ArtifactCorruptionError",
    "ArtifactVersionError",
    "DeltaError",
    "WorkloadError",
    "InjectedFaultError",
    "ShardFailedError",
    "WriteBehindError",
    # fault injection (the failure model; see docs/architecture.md)
    "FaultSpec",
    "FaultClock",
    "FaultPlan",
    "RecoveryPolicy",
    "DegradedAnswer",
    "SCENARIOS",
    "scenario",
    "install_fault_plan",
    "clear_fault_plan",
    "active_plan",
    # workload harness
    "KeyDistribution",
    "UniformKeys",
    "ZipfKeys",
    "HotspotKeys",
    "DriftKeys",
    "WorkloadSpec",
    "LatencyStats",
    "WorkloadReport",
    "run_closed_loop",
    "run_open_loop",
    # catalog factory (lazy; see __getattr__)
    "build_query_engine",
    # serving front (lazy; see __getattr__)
    "ServingFront",
    "GatewayConfig",
    "Supervisor",
    "RemoteClient",
    "RemoteDataset",
    # new error types of the serving front
    "ProtocolError",
    "OverloadedError",
    "WorkerFailedError",
]

from repro.core.errors import (  # noqa: E402 - grouped with the lazy block
    OverloadedError,
    ProtocolError,
    WorkerFailedError,
)

#: Serving-front names resolved lazily: the frontend pulls in asyncio and
#: multiprocessing, which pure in-process users should not pay for.
_FRONTEND_NAMES = frozenset(
    {"ServingFront", "GatewayConfig", "Supervisor", "RemoteClient", "RemoteDataset"}
)


def __getattr__(name: str):
    # Lazy re-export: repro.catalog imports the query-class registry at
    # module level, so an eager import here would find a partially
    # initialized catalog on catalog-first import chains.  PEP 562 defers
    # the lookup to first attribute access, after both modules exist.
    if name == "build_query_engine":
        from repro.catalog import build_query_engine

        return build_query_engine
    if name in _FRONTEND_NAMES:
        import repro.service.frontend as frontend

        return getattr(frontend, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
