"""Sharded Pi-structures: partitioned preprocessing with scatter-gather serving.

A monolithic Pi-structure makes build cost and memory scale with a single
process.  The :class:`ShardPlanner` instead partitions a dataset into K
shards (policy declared per scheme via
:class:`~repro.service.merge.ShardSpec`), builds one small Pi-structure per
shard *in parallel*, persists each as an independent
:class:`~repro.service.artifacts.ArtifactStore` artifact, and serves queries
by scatter-gather through the scheme's merge operator.

Shard artifacts are **content-addressed**: each is keyed by the shard's own
dataset fingerprint plus ``(shard id, K, scheme, params)``.  That is what
makes shard-level invalidation automatic -- after an
:mod:`repro.incremental` change batch mutates a dataset, re-planning yields
identical fingerprints for every untouched shard, so their artifacts are
cache/store hits and only the touched shards pay a rebuild
(:func:`touched_shards` predicts which, :func:`plan_diff` verifies after the
fact).

    >>> from repro.queries import membership_class, sorted_run_scheme
    >>> from repro.service.engine import QueryEngine
    >>> engine = QueryEngine()
    >>> engine.register("membership", membership_class(), sorted_run_scheme(),
    ...                 shards=4)
    >>> ds = engine.attach("numbers", tuple(range(100)))
    >>> _ = ds.warm()  # builds all four shards in parallel
    >>> engine.stats().per_kind["membership"].shard_builds
    4
    >>> ds.query("membership", 17)  # routed: 1 probe
    True
    >>> engine.close()
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cost import NULL_TRACKER, ensure_tracker
from repro.core.errors import InjectedFaultError, ShardFailedError
from repro.service import faults
from repro.service.artifacts import ArtifactKey
from repro.service.merge import MergeOperator, ShardPiece, ShardSpec
from repro.storage.fingerprint import dataset_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.engine import QueryEngine, _Registration

__all__ = [
    "PlannedShard",
    "ShardPlan",
    "ShardedStructure",
    "ShardPlanner",
    "gather_fast",
    "touched_shards",
    "plan_diff",
]


def _lost_shard_outcome(
    merge: MergeOperator,
    partials: List[Any],
    effective_query: Any,
    failed: List[int],
    engine: Optional["QueryEngine"],
    kind: Optional[str],
):
    """The per-kind partial-result-or-fail-fast policy, applied after a
    scatter lost one or more shards.

    Union kinds tolerate missing partials: ``any`` over the shards that
    responded is never silently wrong (``True`` is definitely correct;
    ``False`` means "not found in the responding shards" and is returned
    as an explicit :class:`~repro.service.faults.DegradedAnswer` with
    ``partial=True``).  Monoid-combine and k-way kinds need *every* shard
    for a correct answer, so they fail fast with
    :class:`~repro.core.errors.ShardFailedError`.
    """
    if merge.name == "union":
        if engine is not None and kind is not None:
            engine._bump(kind, degraded_answers=1)
        return faults.DegradedAnswer(
            bool(merge.combine(partials, effective_query)),
            reason=f"lost shard(s) {failed} during scatter-gather",
            failed_shards=failed,
        )
    if engine is not None and kind is not None:
        engine._bump(kind, shard_failures=len(failed))
    raise ShardFailedError(
        f"scatter-gather for {kind or 'sharded kind'} lost shard(s) {failed}; "
        f"merge family {merge.name!r} cannot tolerate a missing partial"
    )


def gather_fast(
    registration: "_Registration",
    spec: ShardSpec,
    plan: ShardPlan,
    structures: Sequence[Optional[Any]],
    positions: Iterable[int],
    effective_query: Any,
    engine: Optional["QueryEngine"] = None,
    kind: Optional[str] = None,
) -> bool:
    """Untracked scatter-gather over already-resolved shard structures.

    The production twin of :meth:`ShardPlanner._scatter_gather`: identical
    partial/merge semantics (``None`` structures contribute the merge
    operator's ``empty`` partial), but partials evaluate through the
    scheme's untracked fast kernel (or the shared no-op tracker) and nothing
    is timed or counted.  ``effective_query`` must already be rewritten.

    A shard lost to an :class:`~repro.core.errors.InjectedFaultError`
    mid-scatter goes through :func:`_lost_shard_outcome`; every other
    exception (genuine query errors, library bugs) keeps propagating
    unchanged.  ``engine``/``kind`` route the health counters; without
    them the policy still applies, uncounted.
    """
    scheme = registration.scheme
    merge = spec.merge
    partial = merge.partial
    evaluate_fast = scheme.evaluate_fast
    planned = plan.planned
    armed = faults._PLAN is not None
    partials: List[Any] = []
    failed: List[int] = []
    for position in positions:
        structure = structures[position]
        if structure is None:
            partials.append(
                merge.empty(effective_query) if merge.empty is not None else None
            )
            continue
        try:
            if armed:
                shard_started = time.perf_counter()
                faults.on_shard_partial(kind or scheme.name, position)
            if partial is not None:
                value = partial(
                    structure, effective_query, planned[position].piece.meta, NULL_TRACKER
                )
            elif evaluate_fast is not None:
                value = bool(evaluate_fast(structure, effective_query))
            else:
                value = bool(scheme.evaluate(structure, effective_query, NULL_TRACKER))
        except InjectedFaultError:
            # Only an injected dead shard enters the degradation policy;
            # genuine query errors (bad parameters, library bugs) keep
            # propagating unchanged -- misuse must stay loud, not partial.
            failed.append(position)
            continue
        if armed and (
            time.perf_counter() - shard_started >= faults.policy().slow_shard_seconds
        ):
            if engine is not None and kind is not None:
                engine._bump(kind, shard_timeouts=1)
        partials.append(value)
    if failed:
        return _lost_shard_outcome(
            merge, partials, effective_query, failed, engine, kind
        )
    return bool(merge.combine(partials, effective_query))


@dataclass(frozen=True)
class PlannedShard:
    """One shard of a plan: the piece plus its content fingerprint."""

    piece: ShardPiece
    fingerprint: str


@dataclass(frozen=True)
class ShardPlan:
    """The partition of one dataset for one query kind.

    ``planned`` is ordered; merge routers address shards by *position* in
    this sequence.  The plan is pure data -- re-planning the same content
    yields the same fingerprints, which is what shard artifact reuse and
    :func:`plan_diff` rely on.
    """

    kind: str
    shards: int
    policy: str
    planned: Tuple[PlannedShard, ...]

    def fingerprints(self) -> Tuple[str, ...]:
        """Per-shard content fingerprints, in plan order."""
        return tuple(planned.fingerprint for planned in self.planned)


@dataclass(frozen=True)
class ShardedStructure:
    """A resolved plan: per-shard structures aligned with ``plan.planned``.

    ``structures[i]`` is ``None`` exactly when ``plan.planned[i]`` is an
    empty piece (no structure is built for it; the merge operator's
    ``empty`` partial stands in at gather time).
    """

    plan: ShardPlan
    structures: Tuple[Optional[Any], ...]

    def built_count(self) -> int:
        """Number of shards holding a live structure."""
        return sum(1 for structure in self.structures if structure is not None)


class ShardPlanner:
    """Plan, build and serve sharded Pi-structures for a :class:`QueryEngine`.

    The planner is engine-internal (the engine constructs one and routes
    every ``shards > 1`` registration through it); it reuses the engine's
    cache -> store -> build resolution per shard, so each shard artifact gets
    the same corruption handling and double-checked build locking as a
    monolithic artifact.

    Shard builds run on a pool **separate from the engine's serving pool**:
    a serving worker that waited on sibling tasks in its own pool could
    deadlock once all workers wait on builds that cannot be scheduled.
    Build tasks never submit further work, so the planner pool cannot
    deadlock against itself.
    """

    #: Bound on the (kind, dataset fingerprint, K) -> plan memo.
    PLAN_MEMO_ENTRIES = 32

    def __init__(self, engine: "QueryEngine", max_workers: int = 4):
        self._engine = engine
        self._max_workers = max(1, max_workers)
        self._plans: "OrderedDict[Tuple[str, str, int], ShardPlan]" = OrderedDict()
        self._plans_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_guard = threading.Lock()
        self._closed = False

    # -- planning --------------------------------------------------------------

    def plan(
        self,
        kind: str,
        registration: "_Registration",
        data: Any,
        data_fingerprint: str,
    ) -> ShardPlan:
        """The shard plan for (kind, data): split + per-shard fingerprints.

        Plans are memoized by ``(kind, dataset fingerprint, K)`` -- content
        addressed, so two objects with equal content share a plan and an
        in-place mutation (new fingerprint) naturally misses.
        """
        memo_key = (kind, data_fingerprint, registration.shards)
        with self._plans_lock:
            plan = self._plans.get(memo_key)
            if plan is not None:
                self._plans.move_to_end(memo_key)
                return plan
        spec = self._spec(registration)
        pieces = spec.split(data, registration.shards)
        planned = tuple(
            PlannedShard(
                piece=piece,
                fingerprint="empty"
                if piece.is_empty()
                else dataset_fingerprint(piece.data),
            )
            for piece in pieces
        )
        plan = ShardPlan(
            kind=kind,
            shards=registration.shards,
            policy=spec.policy,
            planned=planned,
        )
        with self._plans_lock:
            self._plans[memo_key] = plan
            self._plans.move_to_end(memo_key)
            while len(self._plans) > self.PLAN_MEMO_ENTRIES:
                self._plans.popitem(last=False)
        return plan

    def forget(self, fingerprint: str) -> None:
        """Drop memoized plans for a dataset fingerprint (after mutation)."""
        with self._plans_lock:
            stale = [key for key in self._plans if key[1] == fingerprint]
            for key in stale:
                del self._plans[key]

    def shard_key(
        self, registration: "_Registration", plan: ShardPlan, planned: PlannedShard
    ) -> ArtifactKey:
        """Artifact identity of one shard: content fingerprint + shard id."""
        return ArtifactKey(
            fingerprint=planned.fingerprint,
            scheme=registration.scheme.name,
            params=f"{registration.params}|s{planned.piece.index}/{plan.shards}",
        )

    # -- building --------------------------------------------------------------

    def _rewrite(self, registration: "_Registration", query: Any) -> Any:
        if registration.scheme.rewrite_query is not None:
            return registration.scheme.rewrite_query(query)
        return query

    def _route(
        self, registration: "_Registration", plan: ShardPlan, effective_query: Any
    ) -> List[int]:
        """Plan positions an (already rewritten) query scatters to."""
        spec = self._spec(registration)
        if spec.route is None:
            return list(range(len(plan.planned)))
        pieces = [planned.piece for planned in plan.planned]
        return list(spec.route(effective_query, pieces))

    def _resolve_positions(
        self,
        kind: str,
        registration: "_Registration",
        plan: ShardPlan,
        positions: Iterable[int],
    ) -> List[Optional[Any]]:
        """Structures for the given plan positions (cache, store, or build).

        Returns a plan-length list, ``None`` outside ``positions`` and for
        empty pieces.  Misses are dispatched to the planner pool in parallel.
        """
        engine = self._engine
        structures: List[Optional[Any]] = [None] * len(plan.planned)
        misses: List[Tuple[int, PlannedShard, ArtifactKey]] = []
        for position in positions:
            planned = plan.planned[position]
            if planned.piece.is_empty():
                continue
            key = self.shard_key(registration, plan, planned)
            structure = engine._cache.get(key)
            if structure is not None:
                engine._bump(kind, shard_cache_hits=1)
                structures[position] = structure
            else:
                misses.append((position, planned, key))
        if len(misses) == 1:
            position, planned, key = misses[0]
            structures[position] = engine._resolve_miss(
                kind, registration, key, planned.piece.data, shard=True
            )
        elif misses:
            pool = self._ensure_pool()
            futures = [
                (
                    position,
                    pool.submit(
                        engine._resolve_miss,
                        kind,
                        registration,
                        key,
                        planned.piece.data,
                        shard=True,
                    ),
                )
                for position, planned, key in misses
            ]
            for position, future in futures:
                structures[position] = future.result()
        return structures

    def resolve(
        self,
        kind: str,
        registration: "_Registration",
        data: Any,
        fingerprint: Optional[str] = None,
    ) -> ShardedStructure:
        """All shard structures for (kind, data), building misses in parallel.

        Warm path: one memoized plan lookup plus one cache probe per shard.
        Cold path: every missing shard build is dispatched to the planner
        pool (engine stats record per-shard build counts and seconds).

        ``fingerprint`` is the dataset's content identity when the caller
        already knows it (an attached :class:`~repro.service.dataset.Dataset`
        computes it once at attach); without it the engine's identity memo is
        consulted -- an O(|D|) re-hash on a memo miss.
        """
        if fingerprint is None:
            fingerprint = self._engine._fingerprint(data, kind=kind)
        plan = self.plan(kind, registration, data, fingerprint)
        structures = self._resolve_positions(
            kind, registration, plan, range(len(plan.planned))
        )
        return ShardedStructure(plan=plan, structures=tuple(structures))

    # -- serving ---------------------------------------------------------------

    def serve(
        self,
        kind: str,
        registration: "_Registration",
        data: Any,
        query: Any,
        tracker: Any = None,
        fingerprint: Optional[str] = None,
    ) -> Tuple[bool, float]:
        """Answer one query end to end: route once, resolve routed shards,
        scatter-gather.

        The query is rewritten and routed exactly once; only the routed
        shards are resolved (cold shards build lazily, in parallel).
        Returns ``(answer, scatter_seconds)`` -- the time spent evaluating
        partials and merging, which the engine records as the serve cost.
        ``fingerprint``, when given, skips the engine's identity memo (see
        :meth:`resolve`).
        """
        if fingerprint is None:
            fingerprint = self._engine._fingerprint(data, kind=kind)
        plan = self.plan(kind, registration, data, fingerprint)
        effective = self._rewrite(registration, query)
        positions = self._route(registration, plan, effective)
        structures = self._resolve_positions(kind, registration, plan, positions)
        answer, elapsed = self._scatter_gather(
            registration, plan, structures, positions, effective, tracker, kind=kind
        )
        # Hot-path counter (thread-local shard, folded on stats() read): the
        # per-query serve path takes no statistics lock.
        self._engine._count_serve(kind, shard_serve_seconds=elapsed)
        return answer, elapsed

    def answer_fast(
        self,
        registration: "_Registration",
        sharded: ShardedStructure,
        query: Any,
        kind: Optional[str] = None,
    ) -> bool:
        """Untracked, statistics-neutral scatter over a resolved structure.

        The production serving kernel for sharded kinds: rewrite + route
        once, then :func:`gather_fast` over the bundled per-shard structures.
        Answer-identical to :meth:`answer` (the tracked, merge-timed twin).
        """
        effective = self._rewrite(registration, query)
        positions = self._route(registration, sharded.plan, effective)
        return gather_fast(
            registration,
            self._spec(registration),
            sharded.plan,
            sharded.structures,
            positions,
            effective,
            engine=self._engine,
            kind=kind,
        )

    def answer(
        self,
        kind: str,
        registration: "_Registration",
        sharded: ShardedStructure,
        query: Any,
        tracker: Any = None,
    ) -> bool:
        """Scatter the query over an already-resolved :class:`ShardedStructure`.

        A statistics-neutral primitive (no query/serve counters are bumped;
        :meth:`serve` is the accounted path the engine uses).  Returns the
        Boolean answer; identical to evaluating the scheme over the
        monolithic structure (the K-vs-1 equivalence property test in
        ``tests/property/test_prop_sharding.py`` enforces this for every
        shardable kind).
        """
        effective = self._rewrite(registration, query)
        positions = self._route(registration, sharded.plan, effective)
        answer, _seconds = self._scatter_gather(
            registration,
            sharded.plan,
            list(sharded.structures),
            positions,
            effective,
            tracker,
            kind=kind,
        )
        return answer

    def _scatter_gather(
        self,
        registration: "_Registration",
        plan: ShardPlan,
        structures: List[Optional[Any]],
        positions: Iterable[int],
        effective_query: Any,
        tracker: Any = None,
        kind: Optional[str] = None,
    ) -> Tuple[bool, float]:
        """Evaluate partials over ``positions`` and gather with the merge
        operator; returns ``(answer, elapsed_seconds)``.  Pure with respect
        to engine serving statistics -- callers decide what to record --
        except the health counters: a shard lost mid-scatter applies the
        same :func:`_lost_shard_outcome` policy as :func:`gather_fast`
        (union degrades explicitly, monoid/k-way fail fast)."""
        scheme = registration.scheme
        merge = self._spec(registration).merge
        tracker = ensure_tracker(tracker)
        pieces = [planned.piece for planned in plan.planned]
        armed = faults._PLAN is not None
        started = time.perf_counter()
        partials: List[Any] = []
        failed: List[int] = []
        for position in positions:
            structure = structures[position]
            if structure is None:
                partials.append(
                    merge.empty(effective_query) if merge.empty is not None else None
                )
                continue
            try:
                if armed:
                    shard_started = time.perf_counter()
                    faults.on_shard_partial(kind or scheme.name, position)
                if merge.partial is not None:
                    value = merge.partial(
                        structure, effective_query, pieces[position].meta, tracker
                    )
                else:
                    value = bool(scheme.evaluate(structure, effective_query, tracker))
            except InjectedFaultError:
                # Same policy as gather_fast: only injected faults degrade.
                failed.append(position)
                continue
            if armed and (
                time.perf_counter() - shard_started
                >= faults.policy().slow_shard_seconds
            ):
                if kind is not None:
                    self._engine._bump(kind, shard_timeouts=1)
            partials.append(value)
        if failed:
            answer = _lost_shard_outcome(
                merge, partials, effective_query, failed, self._engine, kind
            )
            return answer, time.perf_counter() - started
        answer = bool(merge.combine(partials, effective_query))
        return answer, time.perf_counter() - started

    # -- lifecycle -------------------------------------------------------------

    def _spec(self, registration: "_Registration") -> ShardSpec:
        spec = registration.scheme.sharding
        if spec is None:  # pragma: no cover - register() rejects this upfront
            from repro.core.errors import ServiceError

            raise ServiceError(
                f"scheme {registration.scheme.name!r} declares no ShardSpec"
            )
        return spec

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_guard:
            if self._closed:
                from repro.core.errors import ServiceError

                raise ServiceError("engine is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-shard-build",
                )
            return self._pool

    def close(self) -> None:
        """Shut down the shard-build pool; further builds error (idempotent)."""
        with self._pool_guard:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


def _change_item(change: Any) -> Any:
    """The shard-routable payload of one incremental change record."""
    from repro.incremental.changes import EdgeChange, TupleChange

    if isinstance(change, TupleChange):
        return change.row
    if isinstance(change, EdgeChange):
        return (change.source, change.target)
    return change


def touched_shards(plan: ShardPlan, changes: Iterable[Any], spec: ShardSpec) -> Set[int]:
    """Plan positions a change batch touches (shard-level invalidation).

    Accepts :class:`~repro.incremental.changes.TupleChange` /
    :class:`~repro.incremental.changes.EdgeChange` records or raw changed
    items, routes each through ``spec.locate``, and returns the set of plan
    positions whose shard must be rebuilt.  Any change the spec cannot
    locate degrades conservatively to "all shards".
    """
    pieces = [planned.piece for planned in plan.planned]
    everything = set(range(len(pieces)))
    if spec.locate is None:
        return everything
    touched: Set[int] = set()
    for change in changes:
        position = spec.locate(_change_item(change), pieces)
        if position is None:
            return everything
        touched.add(position)
    return touched


def plan_diff(old: ShardPlan, new: ShardPlan) -> Tuple[Set[int], Set[int]]:
    """``(reused, rebuilt)`` plan positions between two plans of the same kind.

    A shard is *reused* when a shard with the same id carries the same
    content fingerprint in both plans (its artifact resolves warm); anything
    else in the new plan is *rebuilt*.  Used by tests and the sharding
    benchmark to verify that change batches only rebuild touched shards.
    """
    old_by_id: Dict[int, str] = {
        planned.piece.index: planned.fingerprint for planned in old.planned
    }
    reused: Set[int] = set()
    rebuilt: Set[int] = set()
    for position, planned in enumerate(new.planned):
        if old_by_id.get(planned.piece.index) == planned.fingerprint:
            reused.add(position)
        else:
            rebuilt.add(position)
    return reused, rebuilt
