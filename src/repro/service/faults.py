"""Fault injection for the serving stack: named, composable, deterministic.

The paper's economics say preprocessing makes queries *dependably* cheap;
this module makes "dependably" checkable.  A :class:`FaultPlan` is a list
of :class:`FaultSpec` entries -- each names an injection *site* threaded
through the serving stack and a failure *mode* -- plus a seeded
:class:`FaultClock` that decides deterministically which invocations fire.
Arm a plan with :func:`install_fault_plan` (or ``plan.armed()``), and the
module-level hooks called from the hot paths start injecting; with no plan
installed every hook is a constant-time no-op guarded by one global
``None`` check, so the unfaulted serving stack pays nothing.

Injection sites and their recovery policies (see ``docs/architecture.md``,
"Failure model"):

``store.read``
    :meth:`ArtifactStore.get <repro.service.artifacts.ArtifactStore.get>`
    -- corrupt the payload (checksum mismatch), truncate the file, or
    delay the read.  Recovery: the engine deletes the bad artifact and
    retries the load up to ``RecoveryPolicy.load_retries`` times before
    rebuilding from source (always safe: artifacts are pure caches of
    PTIME-recomputable state).
``store.write``
    :meth:`ArtifactStore.put` -- fail with ``ENOSPC`` (disk full).
    Recovery: builds still serve from memory; write-behind retries with
    backoff and ``flush()`` surfaces the terminal error.
``shard.partial``
    One shard of a scatter-gather raises (dead) or sleeps (slow).
    Recovery: union-merge kinds degrade to an explicit
    :class:`DegradedAnswer`; monoid/k-way kinds fail fast with
    :class:`~repro.core.errors.ShardFailedError`.
``cache.put``
    An eviction storm: every cache insert force-evicts ``storm_size``
    entries, racing the serve-plan invalidation watchers.
``mutable.delta``
    ``apply_delta`` raises mid-batch.  Recovery: the handle commits the
    batch to content and repairs the structure by rebuild, so no torn
    snapshot is ever published.
``worker.serve``
    A serving-front worker process dies mid-serve (the hook calls
    ``os._exit``, so no cleanup runs -- a hard crash, not an exception).
    Recovery: the supervisor detects the dead process, retries that
    worker's in-flight reads once on a healthy worker (writes surface
    :class:`~repro.core.errors.WorkerFailedError` -- they may or may not
    have applied), re-homes mutable datasets by replaying their
    acknowledged change journal, and restarts the worker with backoff
    bounded by ``RecoveryPolicy.worker_restart_attempts`` /
    ``worker_restart_backoff_seconds``.  Restarted workers are *not*
    re-armed: the scenario models one crash event, not a crashing binary.

Every scenario in :data:`SCENARIOS` is pinned by a test in
``tests/chaos/`` asserting both the recovery behavior and the health
counters it must move (``stats_snapshot()["health"]``).

    >>> from repro.service.faults import scenario, active_plan
    >>> plan = scenario("dead-shard", kind="list-membership", times=1)
    >>> [spec.site for spec in plan.specs]
    ['shard.partial']
    >>> with plan.armed():
    ...     active_plan() is plan
    True
    >>> active_plan() is None
    True
"""

from __future__ import annotations

import errno
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.core.errors import InjectedFaultError

__all__ = [
    "FaultSpec",
    "FaultClock",
    "FaultPlan",
    "RecoveryPolicy",
    "DegradedAnswer",
    "SCENARIOS",
    "scenario",
    "install_fault_plan",
    "clear_fault_plan",
    "active_plan",
    "policy",
]

#: site -> the failure modes that make sense there.
SITES: Dict[str, Tuple[str, ...]] = {
    "store.read": ("corrupt", "truncate", "slow"),
    "store.write": ("disk-full",),
    "shard.partial": ("raise", "slow"),
    "cache.put": ("evict-storm",),
    "mutable.delta": ("raise",),
    "worker.serve": ("crash", "slow"),
}


@dataclass(frozen=True)
class RecoveryPolicy:
    """Tunables for the recovery side: how hard the stack tries before
    giving up, and how slow "slow" is."""

    #: Extra store reads after a corrupt one before rebuilding from source.
    load_retries: int = 1
    #: Total write-behind persistence attempts per dirty artifact.
    writebehind_attempts: int = 3
    #: Backoff between write-behind attempts (doubles each retry).
    writebehind_backoff_seconds: float = 0.02
    #: Injected delay for a "slow" shard partial.
    slow_shard_seconds: float = 0.05
    #: Injected delay for a "slow" artifact read.
    slow_load_seconds: float = 0.05
    #: Restart attempts for a crashed serving-front worker before the
    #: supervisor gives the slot up as lost.
    worker_restart_attempts: int = 3
    #: Backoff before the first restart attempt (doubles each retry).
    worker_restart_backoff_seconds: float = 0.05
    #: Injected delay for a "slow" (alive but stalled) worker serve.
    slow_worker_seconds: float = 0.05
    #: Cross-worker retries the supervisor may spend on one read whose
    #: worker died or timed out (writes never retry: they may have applied).
    read_retry_budget: int = 2
    #: Base backoff before a supervisor read retry; doubles each attempt
    #: and is jittered to avoid retry synchronization.
    retry_backoff_seconds: float = 0.01
    #: Consecutive failures (crashes, deadline expiries) on one worker
    #: before its circuit breaker opens and routing stops sending it reads.
    breaker_failure_threshold: int = 5
    #: Seconds an open breaker waits before letting one half-open probe
    #: through; the probe's outcome closes or re-opens the breaker.
    breaker_reset_seconds: float = 0.25


DEFAULT_POLICY = RecoveryPolicy()


@dataclass(frozen=True)
class FaultSpec:
    """One injection: *where* (site), *how* (mode), and *when* (clock).

    ``kind`` filters to one query kind (matched against the artifact key's
    scheme name or the serving kind; None matches all).  ``shard`` filters
    ``shard.partial`` to one shard position.  The clock fires the spec on
    invocations ``after < seen`` and stops after ``times`` firings
    (``times=None`` never stops); ``probability`` thins firings with the
    plan's seeded RNG, so the same seed replays the same fault schedule.
    """

    site: str
    mode: str
    kind: Optional[str] = None
    times: Optional[int] = 1
    after: int = 0
    probability: float = 1.0
    delay_seconds: float = 0.0
    storm_size: int = 4
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; one of {sorted(SITES)}"
            )
        if self.mode not in SITES[self.site]:
            raise ValueError(
                f"mode {self.mode!r} is not valid at site {self.site!r}; "
                f"one of {SITES[self.site]}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} outside [0, 1]")

    def matches(self, kind: Optional[str], shard: Optional[int]) -> bool:
        if self.kind is not None and kind is not None and self.kind != kind:
            return False
        if self.shard is not None and shard is not None and self.shard != shard:
            return False
        return True


class FaultClock:
    """Deterministic firing decisions: same seed, same schedule.

    One clock serves a whole plan; per-spec ``seen``/``fired`` counters and
    a seeded RNG live behind one lock, so concurrent serving threads
    observe one global fault schedule rather than per-thread ones.
    """

    def __init__(self, seed: int = 0):
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._seen: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}

    def decide(self, spec_index: int, spec: FaultSpec) -> bool:
        with self._lock:
            seen = self._seen.get(spec_index, 0) + 1
            self._seen[spec_index] = seen
            if seen <= spec.after:
                return False
            fired = self._fired.get(spec_index, 0)
            if spec.times is not None and fired >= spec.times:
                return False
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                return False
            self._fired[spec_index] = fired + 1
            return True

    def fired(self, spec_index: int) -> int:
        with self._lock:
            return self._fired.get(spec_index, 0)


class FaultPlan:
    """A set of specs plus the clock that schedules them.

    Compose plans by concatenating spec lists; arm one at a time (the
    module keeps a single global slot -- nested arming raises, because two
    overlapping schedules would not be deterministic).
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        *,
        seed: int = 0,
        policy: Optional[RecoveryPolicy] = None,
        name: Optional[str] = None,
    ):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.policy = policy or DEFAULT_POLICY
        self.name = name
        self.clock = FaultClock(seed)

    def first_firing(
        self, site: str, *, kind: Optional[str] = None, shard: Optional[int] = None
    ) -> Optional[FaultSpec]:
        """The first spec at ``site`` that matches and fires now, if any."""
        for index, spec in enumerate(self.specs):
            if spec.site != site or not spec.matches(kind, shard):
                continue
            if self.clock.decide(index, spec):
                return spec
        return None

    def fired_count(self, site: Optional[str] = None) -> int:
        """Total firings so far, optionally restricted to one site."""
        return sum(
            self.clock.fired(index)
            for index, spec in enumerate(self.specs)
            if site is None or spec.site == site
        )

    @contextmanager
    def armed(self) -> Iterator["FaultPlan"]:
        """Install this plan for the ``with`` body, then clear it."""
        install_fault_plan(self)
        try:
            yield self
        finally:
            clear_fault_plan()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or f"{len(self.specs)} specs"
        return f"FaultPlan({label}, seed={self.seed})"


class DegradedAnswer(int):
    """A boolean answer explicitly marked partial.

    Subclasses ``int`` so it compares equal to the plain ``True``/``False``
    every caller already handles (``DegradedAnswer(False, ...) == False``),
    while carrying ``partial=True`` plus the failed shards for callers that
    check.  Answers are *never* silently wrong: a degraded union answer of
    ``False`` means "not found in the shards that responded".
    """

    partial = True

    def __new__(
        cls,
        value: bool,
        *,
        reason: str = "shard failure",
        failed_shards: Sequence[int] = (),
    ) -> "DegradedAnswer":
        answer = super().__new__(cls, bool(value))
        answer.reason = reason
        answer.failed_shards = tuple(failed_shards)
        return answer

    def __repr__(self) -> str:
        return (
            f"DegradedAnswer({bool(self)}, reason={self.reason!r}, "
            f"failed_shards={self.failed_shards})"
        )


# -- the global slot + hooks ---------------------------------------------------
#
# Serving code guards every hook call with ``if faults._PLAN is not None``:
# the unfaulted fast path costs one module-attribute load and a pointer
# compare, and the hook bodies below never run.

_PLAN: Optional[FaultPlan] = None
_PLAN_LOCK = threading.Lock()


def install_fault_plan(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` globally.  Raises if another plan is already armed."""
    global _PLAN
    with _PLAN_LOCK:
        if _PLAN is not None:
            raise RuntimeError(
                f"a fault plan is already armed ({_PLAN!r}); clear it first"
            )
        _PLAN = plan
    return plan


def clear_fault_plan() -> None:
    """Disarm whatever plan is installed (idempotent)."""
    global _PLAN
    with _PLAN_LOCK:
        _PLAN = None


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def policy() -> RecoveryPolicy:
    """The armed plan's recovery policy, or the defaults."""
    plan = _PLAN
    return plan.policy if plan is not None else DEFAULT_POLICY


def on_store_read(key, blob: bytes) -> bytes:
    """Hook in :meth:`ArtifactStore.get`, after the raw file read."""
    plan = _PLAN
    if plan is None:
        return blob
    spec = plan.first_firing("store.read", kind=getattr(key, "scheme", None))
    if spec is None:
        return blob
    if spec.mode == "corrupt":
        # Flip the last payload byte: the header still parses, the SHA-256
        # check fails -- exactly the bit-rot case the store must detect.
        return blob[:-1] + bytes([blob[-1] ^ 0xFF])
    if spec.mode == "truncate":
        return blob[: len(blob) // 2]
    time.sleep(spec.delay_seconds or plan.policy.slow_load_seconds)
    return blob


def on_store_write(key) -> None:
    """Hook in :meth:`ArtifactStore.put`, before any bytes hit disk."""
    plan = _PLAN
    if plan is None:
        return
    spec = plan.first_firing("store.write", kind=getattr(key, "scheme", None))
    if spec is not None:
        raise OSError(errno.ENOSPC, f"injected disk-full writing {key!r}")


def on_shard_partial(kind: str, position: int) -> None:
    """Hook in scatter-gather, before evaluating one shard's partial."""
    plan = _PLAN
    if plan is None:
        return
    spec = plan.first_firing("shard.partial", kind=kind, shard=position)
    if spec is None:
        return
    if spec.mode == "raise":
        raise InjectedFaultError(
            f"injected dead shard {position} serving {kind!r}"
        )
    time.sleep(spec.delay_seconds or plan.policy.slow_shard_seconds)


def on_cache_put(cache, key) -> None:
    """Hook in :meth:`LRUArtifactCache.put`, after the insert."""
    plan = _PLAN
    if plan is None:
        return
    spec = plan.first_firing("cache.put")
    if spec is not None:
        cache.force_evict(spec.storm_size)


def on_delta_apply(kind: str) -> None:
    """Hook in ``apply_changes``, before a scheme's ``apply_delta`` runs."""
    plan = _PLAN
    if plan is None:
        return
    spec = plan.first_firing("mutable.delta", kind=kind)
    if spec is not None:
        raise InjectedFaultError(f"injected apply_delta failure for {kind!r}")


#: Exit status a crashed worker dies with, so the supervisor (and tests)
#: can tell an injected crash from an ordinary worker failure.
WORKER_CRASH_EXIT = 113


def on_worker_serve(kind: Optional[str]) -> None:
    """Hook in the worker process serve loop, before evaluating a request.

    Mode ``"crash"`` hard-kills the *current process* with ``os._exit`` --
    no exception, no cleanup, no response frame -- which is exactly what
    the supervisor's crash detection must cope with.  Mode ``"slow"``
    sleeps instead: the worker stays alive but stalls, which is the harder
    failure -- liveness polling sees a healthy process while every caller
    waits -- and exactly what deadlines, hedged reads and circuit breakers
    exist to absorb.  Only ever fires inside a worker process whose pool
    shipped it a plan; the gateway process never installs ``worker.serve``
    specs.
    """
    plan = _PLAN
    if plan is None:
        return
    spec = plan.first_firing("worker.serve", kind=kind)
    if spec is None:
        return
    if spec.mode == "crash":
        import os

        os._exit(WORKER_CRASH_EXIT)
    time.sleep(spec.delay_seconds or plan.policy.slow_worker_seconds)


# -- the scenario registry -----------------------------------------------------

#: name -> base specs.  ``scenario()`` turns a name into an armed-ready plan;
#: every name here is pinned by a test in ``tests/chaos/``.
SCENARIOS: Dict[str, Tuple[FaultSpec, ...]] = {
    "corrupt-artifact": (FaultSpec("store.read", "corrupt"),),
    "truncate-artifact": (FaultSpec("store.read", "truncate"),),
    "slow-artifact-read": (FaultSpec("store.read", "slow"),),
    "dead-shard": (FaultSpec("shard.partial", "raise"),),
    "slow-shard": (FaultSpec("shard.partial", "slow"),),
    "eviction-storm": (FaultSpec("cache.put", "evict-storm", times=None),),
    "failed-delta-apply": (FaultSpec("mutable.delta", "raise"),),
    "disk-full-writebehind": (FaultSpec("store.write", "disk-full"),),
    "dead-worker": (FaultSpec("worker.serve", "crash"),),
    "slow-worker": (FaultSpec("worker.serve", "slow", times=None),),
}


def scenario(
    name: str,
    *,
    seed: int = 0,
    policy: Optional[RecoveryPolicy] = None,
    **overrides,
) -> FaultPlan:
    """A ready-to-arm plan for one registered scenario.

    ``overrides`` replace :class:`FaultSpec` fields on every spec in the
    scenario (commonly ``kind=...`` to scope the fault, ``times=...`` /
    ``probability=...`` to reshape the schedule).
    """
    try:
        specs = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault scenario {name!r}; one of {sorted(SCENARIOS)}"
        ) from None
    if overrides:
        specs = tuple(replace(spec, **overrides) for spec in specs)
    return FaultPlan(specs, seed=seed, policy=policy, name=name)
