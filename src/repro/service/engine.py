"""The concurrent query engine: batches of mixed queries over cached artifacts.

This is the "serve many" half of the paper's amortization argument made
operational.  The engine serves *query kinds* -- registered
``(QueryClass, PiScheme)`` pairs -- over datasets, resolving every request
to a Pi-structure through three layers:

1. the in-process :class:`~repro.service.cache.LRUArtifactCache` (hot);
2. the on-disk :class:`~repro.service.artifacts.ArtifactStore`, when the
   scheme is serializable (warm: pay deserialization, skip the build);
3. ``scheme.preprocess`` (cold: pay the PTIME build, then persist + cache).

The dataset-first surface is :meth:`QueryEngine.attach`: fingerprint a
payload once, register a stable name, and serve every kind through the
returned :class:`~repro.service.dataset.Dataset` session -- queries address
the session (or name it via ``QueryRequest(kind, dataset=..., query=...)``)
and never pay a per-request fingerprint lookup.  The older
payload-per-request form (``QueryRequest(kind, data, query)``) keeps
working through a thin adapter that performs an *anonymous attach* behind a
bounded identity memo; it is deprecated in favor of named sessions --
constructing a payload request emits a :class:`DeprecationWarning` with the
migration hint, while the behavior stays identical.

Batches run on a thread pool, with large fan-outs chunked to the pool width
(one task per worker, never one per microsecond-scale query).  Pure-Python
evaluators contend on the GIL, so the pool buys overlap rather than true
parallelism -- but the engine is the concurrency *correctness* boundary:
per-key build locks guarantee one build per artifact under concurrent
misses; rare-event counters (builds, hits, deltas) are lock-protected while
the per-query counters ride lock-free thread-local shards folded on
``stats()`` read.  Per-scheme statistics separate build time from serve
time, which is exactly the cost split (PTIME once vs. polylog each) the
paper's Definition 1 is about.  Named sessions additionally cache per-kind
*serve plans* (see :mod:`repro.service.dataset`), so their steady-state
queries bypass this module's general path entirely.

Registering a kind with ``shards=K`` (for schemes that declare a
:class:`~repro.service.merge.ShardSpec`) swaps the monolithic path for the
:class:`~repro.service.sharding.ShardPlanner`: K per-shard structures built
in parallel, persisted independently, and served by scatter-gather.
``attach(..., shards=K)`` applies the same override per dataset.

Datasets that *mutate* are served either through
``attach(..., mutable=True)`` (one session, every kind, single latch) or
through the single-kind
:meth:`QueryEngine.open_dataset` -> :class:`~repro.service.mutable.DatasetHandle`:
change batches fold into the live structure via per-scheme ``apply_delta``
hooks (falling back to touched-shard or full rebuilds), behind a versioned
snapshot latch with write-behind persistence.

    >>> from repro.queries import membership_class, sorted_run_scheme
    >>> from repro.service.engine import QueryEngine, QueryRequest
    >>> engine = QueryEngine()
    >>> engine.register("membership", membership_class(), sorted_run_scheme())
    >>> ds = engine.attach("readings", (3, 1, 4))
    >>> ds.query("membership", 4)
    True
    >>> engine.execute(QueryRequest("membership", dataset="readings", query=9))
    False
    >>> import warnings
    >>> with warnings.catch_warnings():  # legacy payload form: deprecated
    ...     warnings.simplefilter("ignore", DeprecationWarning)
    ...     legacy = QueryRequest("membership", (3, 1, 4), 9)
    >>> engine.execute(legacy)
    False
    >>> engine.stats().per_kind["membership"].builds  # built once, served thrice
    1
"""

from __future__ import annotations

import threading
import time
import warnings
import weakref
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.core.cost import CostTracker
from repro.core.errors import (
    ArtifactCorruptionError,
    ArtifactError,
    ServiceError,
    UnknownDatasetError,
)
from repro.core.query import PiScheme, QueryClass
from repro.service import faults
from repro.service.artifacts import ArtifactKey, ArtifactStore
from repro.service.cache import CacheStats, LRUArtifactCache
from repro.service.dataset import Dataset, _width_chunks
from repro.service.sharding import ShardPlanner
from repro.storage.fingerprint import dataset_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.mutable import DatasetHandle

__all__ = ["QueryRequest", "SchemeStats", "EngineStats", "QueryEngine"]


@dataclass(frozen=True)
class QueryRequest:
    """One query under a registered kind, addressing a dataset two ways.

    **Named (preferred)** -- ``QueryRequest(kind, dataset=name, query=q)``
    addresses a session attached via :meth:`QueryEngine.attach`.  The
    payload stays server-side; the request is resolved against the
    session's precomputed content identity, so the warm path never touches
    the fingerprint memo.

    **Payload (deprecated)** -- ``QueryRequest(kind, data, query)`` ships
    the dataset inside the request.  The engine adapts it by performing an
    anonymous attach keyed on object identity: the engine treats ``data``
    as **immutable while served**, repeated requests for the *same object*
    reuse the memoized identity, and once more than ``fingerprint_memo_size``
    distinct payloads are live every additional one costs an O(|D|) re-hash
    per request (counted in ``SchemeStats.fingerprint_rehashes``).  After
    mutating a payload in place, call :meth:`QueryEngine.invalidate` (or
    pass a fresh object) so the next request re-fingerprints and rebuilds.
    The form is kept for compatibility; constructing one emits a
    :class:`DeprecationWarning` pointing at the named migration.
    """

    kind: str
    data: Any = None
    query: Any = None
    dataset: Optional[str] = None

    def __post_init__(self) -> None:
        if self.data is not None and self.dataset is None:
            warnings.warn(
                "QueryRequest(kind, data, query) payload requests are "
                "deprecated; attach the dataset once and address it by "
                "name: engine.attach(name, data) then "
                "QueryRequest(kind, dataset=name, query=...) or "
                "Dataset.query(kind, query)",
                DeprecationWarning,
                stacklevel=2,
            )


@dataclass
class SchemeStats:
    """Serving counters for one registered kind.

    The plain counters (``builds``, ``cache_hits``, ``store_hits``) count
    monolithic artifact resolutions; the ``shard_*`` counters count
    *per-shard* resolutions for datasets served sharded (a single cold
    sharded resolve bumps ``shard_builds`` once per non-empty shard).  The
    ``shards`` field records the *registered* shard count only -- a
    per-dataset ``attach(..., shards=K)`` override leaves it unchanged
    while its requests accrue into the ``shard_*`` counters, so nonzero
    ``shard_builds`` alongside ``shards == 1`` means attach-time overrides
    are in play.
    ``shard_serve_seconds`` accumulates scatter-gather time, already included
    in ``serve_seconds``.  The ``delta_*`` counters track the mutable-dataset
    write path (:mod:`repro.service.mutable`): batches folded in place by the
    scheme's ``apply_delta`` hook versus ``fallback_rebuilds`` that resolved
    the post-batch content from scratch.

    The ``fingerprint_*`` counters expose the payload-request adapter's memo
    economics: ``fingerprint_rehashes`` counts every O(|D|) content hash
    paid while resolving a payload-style request of this kind (a memo miss
    -- first sight of the object or an earlier eviction), and
    ``fingerprint_evictions`` counts memo entries evicted by this kind's
    inserts.  Named :class:`~repro.service.dataset.Dataset` sessions hash
    once at attach and never touch the memo, so at steady state both stay
    zero -- which is what ``benchmarks/bench_case13_api.py`` verifies.
    """

    scheme: str = ""
    queries: int = 0
    cache_hits: int = 0
    store_hits: int = 0
    builds: int = 0
    build_seconds: float = 0.0
    serve_seconds: float = 0.0
    shards: int = 1
    shard_builds: int = 0
    shard_cache_hits: int = 0
    shard_store_hits: int = 0
    shard_build_seconds: float = 0.0
    shard_serve_seconds: float = 0.0
    delta_batches: int = 0
    delta_changes: int = 0
    delta_seconds: float = 0.0
    fallback_rebuilds: int = 0
    fingerprint_rehashes: int = 0
    fingerprint_evictions: int = 0
    # -- health counters (the failure model; see docs/architecture.md).
    # Zero on every happy path; each one is an observable recovery event.
    #: Store reads that failed integrity checks (bad checksum, truncation).
    checksum_failures: int = 0
    #: Store reads slower than the recovery policy's slow-load threshold.
    slow_loads: int = 0
    #: Extra load attempts made after a corrupt read before rebuilding.
    rebuild_retries: int = 0
    #: Scatter-gather answers served partial (union kinds, shards missing).
    degraded_answers: int = 0
    #: Shard partials that exceeded the slow-shard threshold.
    shard_timeouts: int = 0
    #: Shard partials lost to a fault on fail-fast (monoid/k-way) kinds.
    shard_failures: int = 0
    #: apply_changes batches whose structure was repaired by rebuild after
    #: a mid-batch failure (the torn-snapshot guard).
    write_rollbacks: int = 0
    #: Write-behind persistence attempts retried after a store failure.
    writebehind_retries: int = 0
    #: Write-behind persists that exhausted retries (flush() will raise).
    writebehind_failures: int = 0
    #: Synchronous artifact writes that failed (structure served from
    #: memory; the store is stale or unwritable).
    persist_failures: int = 0
    #: Queries whose answer kernel raised (the exception propagates to the
    #: caller, but the failed serve is never invisible to health/SLO
    #: accounting -- ``queries`` counts successes only).
    serve_errors: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of artifact resolutions (monolithic or shard) that skipped a build."""
        hits = self.cache_hits + self.store_hits + self.shard_cache_hits + self.shard_store_hits
        resolutions = hits + self.builds + self.shard_builds
        if not resolutions:
            return 0.0
        return hits / resolutions

    def stats_snapshot(self) -> Dict[str, Any]:
        """A plain JSON-serializable dict of every counter plus ``hit_rate``.

        The stable read surface for drivers and dashboards (the workload
        harness correlates latency with these per run window); field names
        match the dataclass attributes exactly.
        """
        snapshot = dict(asdict(self))
        snapshot["hit_rate"] = self.hit_rate
        return snapshot


@dataclass(frozen=True)
class EngineStats:
    """Immutable snapshot: per-kind scheme stats plus cache counters."""

    per_kind: Dict[str, SchemeStats]
    cache: CacheStats

    def total_queries(self) -> int:
        """Queries answered across every registered kind since the last reset."""
        return sum(stats.queries for stats in self.per_kind.values())

    @property
    def fingerprint_rehashes(self) -> int:
        """O(|D|) content hashes paid on the request path, across kinds.

        Named dataset sessions keep this at zero at steady state; growth
        here means payload-style requests are thrashing the identity memo
        (raise ``fingerprint_memo_size`` or attach the datasets)."""
        return sum(stats.fingerprint_rehashes for stats in self.per_kind.values())

    @property
    def fingerprint_evictions(self) -> int:
        """Identity-memo evictions across kinds (the memo-cliff signal)."""
        return sum(stats.fingerprint_evictions for stats in self.per_kind.values())

    #: The SchemeStats fields folded into the ``health`` rollup.
    HEALTH_FIELDS = (
        "checksum_failures",
        "slow_loads",
        "rebuild_retries",
        "degraded_answers",
        "shard_timeouts",
        "shard_failures",
        "write_rollbacks",
        "writebehind_retries",
        "writebehind_failures",
        "persist_failures",
        "serve_errors",
    )

    def health(self) -> Dict[str, int]:
        """The failure-model counters summed across kinds.

        All-zero means no recovery machinery has run since the last reset;
        any nonzero value names exactly which degradation happened (see the
        "Failure model" table in ``docs/architecture.md``).  Includes the
        cache's contained listener errors.
        """
        rollup = {
            field_name: sum(
                getattr(stats, field_name) for stats in self.per_kind.values()
            )
            for field_name in self.HEALTH_FIELDS
        }
        rollup["cache_listener_errors"] = self.cache.listener_errors
        return rollup

    def stats_snapshot(self) -> Dict[str, Any]:
        """The whole snapshot as one plain JSON-serializable dict.

        ``per_kind`` maps each kind to its
        :meth:`SchemeStats.stats_snapshot`, ``cache`` carries the
        :class:`~repro.service.cache.CacheStats` counters, and the folded
        totals ride along -- so callers (the workload driver, monitoring)
        never reach into engine internals or dataclass attributes.
        """
        return {
            "per_kind": {
                kind: stats.stats_snapshot()
                for kind, stats in sorted(self.per_kind.items())
            },
            "cache": self.cache.stats_snapshot(),
            "total_queries": self.total_queries(),
            "fingerprint_rehashes": self.fingerprint_rehashes,
            "fingerprint_evictions": self.fingerprint_evictions,
            "health": self.health(),
        }


@dataclass(frozen=True)
class _Registration:
    query_class: QueryClass
    scheme: PiScheme
    params: str
    shards: int = 1


class _ShardAnchor:
    """Thread-local sentinel whose death retires the thread's counter shard."""

    __slots__ = ("__weakref__",)


def _retire_counter_shard(counter_ref: "weakref.ref", shard: Dict[str, List[float]]) -> None:
    """Finalizer target for a thread's counter shard.

    Module-level on purpose: a bound-method callback would root the whole
    counter (and through it the engine's statistics) in weakref's global
    registry until the owning *thread* exits.  With only a weak reference
    here, dropping the engine frees the counter immediately; the finalizer
    then retires into nothing.
    """
    counter = counter_ref()
    if counter is not None:
        counter._retire(shard)


class _QueryCounterShards:
    """Sharded per-query serving counters: one mutable slot per (thread, kind).

    The per-query hot path used to take the engine-wide statistics lock for
    every answer (``_bump``) -- a measurable constant on a microsecond-scale
    serve, and a contention point under concurrent batches.  Here each
    serving thread owns a private ``kind -> [queries, serve_seconds,
    shard_serve_seconds]`` slot; increments touch only thread-local state
    (no lock), and :meth:`fold` sums every thread's slots when
    ``QueryEngine.stats()`` snapshots.  Slot *creation* is serialized so the
    fold can iterate each shard dict safely; folds may observe an increment
    a hair late, which is inherent to any relaxed counter snapshot.

    Thread lifecycle: a shard is anchored to a thread-local sentinel whose
    finalizer folds the dead thread's counts into a ``_retired``
    accumulator and removes the shard from the live list -- a long-lived
    engine serving thread-per-request traffic stays bounded by its *live*
    threads, not by every thread it has ever seen.
    """

    __slots__ = ("_local", "_shards", "_retired", "_lock", "__weakref__")

    def __init__(self) -> None:
        self._local = threading.local()
        self._shards: List[Dict[str, List[float]]] = []
        self._retired: Dict[str, List[float]] = {}
        self._lock = threading.Lock()

    def slot(self, kind: str) -> List[float]:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = self._local.shard = {}
            anchor = self._local.anchor = _ShardAnchor()
            # The finalizer keeps `shard` alive until the owning thread
            # dies, then folds its counts into the retired accumulator.
            weakref.finalize(anchor, _retire_counter_shard, weakref.ref(self), shard)
            with self._lock:
                self._shards.append(shard)
        slot = shard.get(kind)
        if slot is None:
            # Serialize dict *growth* (never the increments) so a concurrent
            # fold iterating this shard cannot see a mid-resize dict.
            with self._lock:
                slot = shard.setdefault(kind, [0, 0.0, 0.0])
        return slot

    def _retire(self, shard: Dict[str, List[float]]) -> None:
        with self._lock:
            try:
                self._shards.remove(shard)
            except ValueError:  # pragma: no cover - double finalize guard
                return
            for kind, slot in shard.items():
                total = self._retired.get(kind)
                if total is None:
                    self._retired[kind] = [slot[0], slot[1], slot[2]]
                else:
                    total[0] += slot[0]
                    total[1] += slot[1]
                    total[2] += slot[2]

    def fold(self) -> Dict[str, List[float]]:
        """Sum of every live thread's slots plus retired threads', by kind."""
        with self._lock:
            shards = [list(shard.items()) for shard in self._shards]
            shards.append(list(self._retired.items()))
        totals: Dict[str, List[float]] = {}
        for items in shards:
            for kind, slot in items:
                total = totals.get(kind)
                if total is None:
                    totals[kind] = [slot[0], slot[1], slot[2]]
                else:
                    total[0] += slot[0]
                    total[1] += slot[1]
                    total[2] += slot[2]
        return totals

    def reset(self) -> None:
        """Zero every slot in place (concurrent increments may survive)."""
        with self._lock:
            self._retired.clear()
            for shard in self._shards:
                for slot in shard.values():
                    slot[0] = 0
                    slot[1] = 0.0
                    slot[2] = 0.0


class QueryEngine:
    """Resolve-and-serve engine over registered (query class, Pi-scheme) pairs.

    Parameters
    ----------
    store:
        Optional :class:`~repro.service.artifacts.ArtifactStore` for durable
        artifacts; without one, structures live in the memory cache only.
    cache_entries:
        Capacity of the in-process LRU artifact cache.
    max_workers:
        Thread-pool width for :meth:`execute_batch` and for parallel shard
        builds.
    fingerprint_memo_size:
        Capacity of the identity memo backing the payload-request adapter
        (anonymous :class:`~repro.service.dataset.Dataset` sessions).  Past
        this many live payload objects, every additional one degrades to an
        O(|D|) re-hash per request -- counted in
        ``SchemeStats.fingerprint_rehashes`` / ``fingerprint_evictions`` so
        the cliff is observable instead of silent.  Named sessions
        (:meth:`attach`) bypass the memo entirely.
    """

    def __init__(
        self,
        *,
        store: Optional[ArtifactStore] = None,
        cache_entries: int = 64,
        max_workers: int = 4,
        fingerprint_memo_size: int = 32,
    ):
        if fingerprint_memo_size < 0:
            raise ServiceError(
                f"fingerprint_memo_size must be >= 0, got {fingerprint_memo_size}"
            )
        self._store = store
        self._cache = LRUArtifactCache(cache_entries)
        self._cache.set_eviction_listener(self._on_cache_eviction)
        self._registrations: Dict[str, _Registration] = {}
        self._stats: Dict[str, SchemeStats] = {}
        self._stats_lock = threading.Lock()
        self._query_counters = _QueryCounterShards()
        #: key -> [(weakref(Dataset), kind)]: which sessions' serve plans
        #: hold the structure cached under each artifact key.  Evicting a
        #: key fires exactly those plans (keyed invalidation) -- unrelated
        #: sessions keep their steady-state fast path, and no plan can pin
        #: or outlive a structure the engine dropped.
        self._plan_watchers: Dict[ArtifactKey, List[Tuple[Any, str]]] = {}
        self._plan_watchers_lock = threading.Lock()
        self._build_locks: Dict[ArtifactKey, threading.Lock] = {}
        self._build_locks_guard = threading.Lock()
        self._fingerprint_memo_size = fingerprint_memo_size
        self._sessions: "OrderedDict[int, Dataset]" = OrderedDict()
        self._sessions_lock = threading.Lock()
        self._datasets: Dict[str, Dataset] = {}
        self._datasets_guard = threading.Lock()
        self._max_workers = max(1, max_workers)
        self._planner = ShardPlanner(self, max_workers=self._max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_guard = threading.Lock()
        self._persist_pool: Optional[ThreadPoolExecutor] = None
        self._handles: List[Any] = []
        self._handles_guard = threading.Lock()
        self._closed = False
        self._close_lock = threading.Lock()

    # -- registration ----------------------------------------------------------

    def register(
        self,
        kind: str,
        query_class: QueryClass,
        scheme: PiScheme,
        *,
        params: str = "",
        shards: int = 1,
    ) -> None:
        """Expose ``scheme`` for serving queries of ``kind``.

        Parameters
        ----------
        kind:
            Name requests use; must be unused.
        query_class:
            Reference semantics (kept for workload generation and testing).
        scheme:
            The Pi-scheme that builds and answers.
        params:
            Distinguishes variant builds of the same scheme; the scheme's
            ``artifact_version`` is appended so layout changes never alias
            old artifacts.
        shards:
            ``1`` (default) serves one monolithic structure per dataset;
            ``K > 1`` partitions each dataset into K shards and serves by
            scatter-gather -- the scheme must declare a
            :class:`~repro.service.merge.ShardSpec` via ``scheme.sharding``.
        """
        if kind in self._registrations:
            raise ServiceError(f"kind {kind!r} is already registered")
        if shards < 1:
            raise ServiceError(f"shards must be >= 1, got {shards}")
        if shards > 1 and scheme.sharding is None:
            raise ServiceError(
                f"scheme {scheme.name!r} declares no ShardSpec; register "
                f"kind {kind!r} with shards=1 or add a sharding spec "
                "(see repro.service.merge)"
            )
        token = f"{params}|v{scheme.artifact_version}"
        self._registrations[kind] = _Registration(query_class, scheme, token, shards)
        self._stats[kind] = SchemeStats(scheme=scheme.name, shards=shards)

    @classmethod
    def from_registry(
        cls, registry: Any, *, shards: int = 1, **engine_kwargs: Any
    ) -> "QueryEngine":
        """An engine serving every servable entry of a Figure 2 registry.

        Each :class:`~repro.core.classes.RegistryEntry` with a query class
        and at least one scheme is registered under the entry's name, using
        its first *serializable* scheme when one exists (so the artifact
        store can be used), else its first scheme (memory-cache only).

        Parameters
        ----------
        shards:
            Shard count applied to every kind whose serving scheme declares
            a :class:`~repro.service.merge.ShardSpec`; kinds without one
            keep the monolithic path.
        """
        engine = cls(**engine_kwargs)
        for entry in registry.entries():
            scheme = entry.serving_scheme()
            if entry.query_class is None or scheme is None:
                continue
            kind_shards = shards if shards > 1 and scheme.sharding is not None else 1
            engine.register(entry.name, entry.query_class, scheme, shards=kind_shards)
        return engine

    def kinds(self) -> List[str]:
        """Sorted names of every registered query kind."""
        return sorted(self._registrations)

    def shardable_kinds(self) -> List[str]:
        """Registered kinds whose scheme declares a ShardSpec (sorted)."""
        return sorted(
            kind
            for kind, registration in self._registrations.items()
            if registration.scheme.sharding is not None
        )

    def registration(self, kind: str) -> Tuple[QueryClass, PiScheme]:
        """The ``(query class, scheme)`` pair registered under ``kind``."""
        registration = self._registration(kind)
        return registration.query_class, registration.scheme

    def _registration(self, kind: str) -> _Registration:
        try:
            return self._registrations[kind]
        except KeyError as exc:
            raise ServiceError(
                f"no scheme registered for query kind {kind!r}; "
                f"known kinds: {self.kinds()}"
            ) from exc

    # -- dataset sessions ------------------------------------------------------

    def attach(
        self,
        name: str,
        data: Any,
        *,
        kinds: Optional[Sequence[str]] = None,
        shards: int = 1,
        mutable: bool = False,
    ) -> Dataset:
        """Attach ``data`` under a stable name; returns the serving session.

        The payload is fingerprinted **once**, here -- every later request
        against the returned :class:`~repro.service.dataset.Dataset` (or
        naming it via ``QueryRequest(kind, dataset=name, query=...)``)
        reuses that identity, so the steady-state serving path performs zero
        fingerprint-memo lookups and zero re-hashes.

        Parameters
        ----------
        name:
            The request-addressable name; must be unused (detach first to
            re-attach).
        kinds:
            Kinds the session serves; defaults to every kind registered at
            attach time.
        shards:
            ``K > 1`` serves every listed kind whose scheme declares a
            :class:`~repro.service.merge.ShardSpec` from K per-shard
            structures, overriding the registration default for this
            dataset; kinds without a spec keep their registered path.
        mutable:
            Enable :meth:`~repro.service.dataset.Dataset.apply_changes`:
            change batches fold into every served structure behind one
            snapshot latch (per-kind ``apply_delta`` hooks, with
            touched-shard or full rebuild fallbacks).
        """
        if self._closed:
            raise ServiceError("engine is closed")
        if not isinstance(name, str) or not name:
            raise ServiceError(f"attach needs a non-empty name, got {name!r}")
        if shards < 1:
            raise ServiceError(f"shards must be >= 1, got {shards}")
        with self._datasets_guard:
            if name in self._datasets:
                raise ServiceError(f"dataset {name!r} is already attached")
        dataset = Dataset(
            self,
            name,
            data,
            dataset_fingerprint(data),
            kinds=kinds,
            shards=shards,
            mutable=mutable,
        )
        with self._datasets_guard:
            if name in self._datasets:
                raise ServiceError(f"dataset {name!r} is already attached")
            self._datasets[name] = dataset
        return dataset

    def detach(self, name: str) -> None:
        """Detach the named session: flush dirty state, evict its cached
        monolithic structures, shard plans and idle build locks, and release
        the name.  Raises :class:`~repro.core.errors.UnknownDatasetError`
        for names that are not attached."""
        with self._datasets_guard:
            dataset = self._datasets.pop(name, None)
        if dataset is None:
            raise UnknownDatasetError(
                f"no dataset attached under name {name!r}; "
                f"attached: {self.datasets()}"
            )
        dataset._release()
        if not self._fingerprint_in_use(dataset.fingerprint):
            self._evict_content(dataset.fingerprint)

    def dataset(self, name: str) -> Dataset:
        """The attached session named ``name``; raises
        :class:`~repro.core.errors.UnknownDatasetError` otherwise."""
        with self._datasets_guard:
            dataset = self._datasets.get(name)
        if dataset is None:
            raise UnknownDatasetError(
                f"no dataset attached under name {name!r}; "
                f"attached: {self.datasets()}"
            )
        return dataset

    def datasets(self) -> List[str]:
        """Sorted names of every attached dataset session."""
        with self._datasets_guard:
            return sorted(self._datasets)

    # -- artifact resolution ---------------------------------------------------

    def _anonymous_attach(self, data: Any, *, kind: Optional[str] = None) -> Dataset:
        """The payload-request adapter: an anonymous session per live object.

        The bounded memo pins a strong reference to each payload (an
        ``id()`` can never be recycled while its entry is alive) and maps it
        to an unnamed :class:`~repro.service.dataset.Dataset`.  It is what
        keeps the legacy warm path O(polylog): without it every payload
        request would pay an O(|D|) re-hash.  The costs are the immutability
        contract spelled out on :class:`QueryRequest` and the capacity
        cliff: past ``fingerprint_memo_size`` live payloads, the hashes come
        back -- counted per kind as ``fingerprint_rehashes`` (hashes paid
        here) and ``fingerprint_evictions`` (entries this kind pushed out).
        """
        key = id(data)
        with self._sessions_lock:
            session = self._sessions.get(key)
            if session is not None and session.data is data:
                self._sessions.move_to_end(key)
                return session
        fingerprint = dataset_fingerprint(data)
        if kind is not None:
            self._bump(kind, fingerprint_rehashes=1)
        session = Dataset(self, None, data, fingerprint)
        evicted = 0
        with self._sessions_lock:
            self._sessions[key] = session
            self._sessions.move_to_end(key)
            while len(self._sessions) > self._fingerprint_memo_size:
                self._sessions.popitem(last=False)
                evicted += 1
        if evicted and kind is not None:
            self._bump(kind, fingerprint_evictions=evicted)
        return session

    def _fingerprint(self, data: Any, *, kind: Optional[str] = None) -> str:
        """Memoized content fingerprint (see :meth:`_anonymous_attach`)."""
        return self._anonymous_attach(data, kind=kind).fingerprint

    def artifact_key(self, kind: str, data: Any) -> ArtifactKey:
        """The monolithic artifact identity of ``(kind, data)``.

        For sharded kinds this is still the *dataset-level* identity (useful
        as a stable handle); the per-shard keys derive from it via
        :meth:`~repro.service.sharding.ShardPlanner.shard_key`.
        """
        registration = self._registration(kind)
        return ArtifactKey(
            fingerprint=self._fingerprint(data, kind=kind),
            scheme=registration.scheme.name,
            params=registration.params,
        )

    def _build_lock(self, key: ArtifactKey) -> threading.Lock:
        with self._build_locks_guard:
            lock = self._build_locks.get(key)
            if lock is None:
                lock = self._build_locks[key] = threading.Lock()
            return lock

    def resolve(self, kind: str, data: Any) -> Any:
        """The Pi-structure for ``(kind, data)``: cache, then store, then build.

        Returns the scheme's preprocessed structure -- or, for a kind
        registered with ``shards=K``, a
        :class:`~repro.service.sharding.ShardedStructure` bundling the plan
        with every per-shard structure (missing shards built in parallel).

        Payload-form resolution: the dataset is adapted through an anonymous
        attach.  Named sessions resolve via
        :meth:`~repro.service.dataset.Dataset.warm`.
        """
        if self._closed:
            raise ServiceError("engine is closed")
        self._registration(kind)  # unknown-kind error before hashing the payload
        return self._resolve_for(self._anonymous_attach(data, kind=kind), kind)

    def _resolve_for(self, ds: Dataset, kind: str) -> Any:
        """The structure serving ``kind`` for an attached dataset session.

        The single dispatch point behind every resolution surface: mutable
        sessions materialize under their writer mutex, shard-overridden
        kinds go through the planner, and monolithic kinds walk
        cache -> store -> build -- always with the session's precomputed
        content identity, never a fingerprint-memo lookup.
        """
        if self._closed:
            raise ServiceError("engine is closed")
        registration = ds.registration_for(kind)
        if ds._mutable is not None:
            return ds._mutable.resolve(kind)
        if registration.shards > 1:
            return self._planner.resolve(
                kind, registration, ds.data, fingerprint=ds.fingerprint
            )
        return self._resolve_by_key(kind, registration, ds.artifact_key(kind), ds.data)

    def _resolve_by_key(
        self, kind: str, registration: _Registration, key: ArtifactKey, content: Any
    ) -> Any:
        """Monolithic cache -> store -> build resolution for a known key.

        Shared by the session dispatch above and by mutable-session
        materialization (:mod:`repro.service.dataset`), so the probe /
        stat-bump / miss sequence exists exactly once.
        """
        structure = self._cache.get(key)
        if structure is not None:
            self._bump(kind, cache_hits=1)
            return structure
        return self._resolve_miss(kind, registration, key, content)

    def _serve_for(
        self, ds: Dataset, kind: str, query: Any, tracker: Any = None
    ) -> bool:
        """Answer one query for an attached session (all three paths).

        This is the *general* serving path: per-request registration lookup,
        cache-probing resolution, and -- when ``tracker`` is given -- the
        analytic evaluator charging every comparison to it.  Named sessions
        bypass it at steady state through their cached serve plans
        (:mod:`repro.service.dataset`); anonymous adapter sessions and
        first-touch/tracked requests land here.
        """
        if self._closed:
            raise ServiceError("engine is closed")
        registration = ds.registration_for(kind)
        if ds._mutable is not None:
            return ds._mutable.query(kind, query, tracker)
        if registration.shards > 1:
            # Route-aware scatter-gather: the query is rewritten and routed
            # once, and only the shards it scatters to are resolved (cold
            # shards build lazily, in parallel).
            try:
                answer, serve_seconds = self._planner.serve(
                    kind, registration, ds.data, query, tracker,
                    fingerprint=ds.fingerprint,
                )
            except Exception:
                self._bump(kind, serve_errors=1)
                raise
            self._count_serve(kind, queries=1, serve_seconds=serve_seconds)
            return answer
        structure = self._resolve_for(ds, kind)
        started = time.perf_counter()
        try:
            answer = registration.scheme.answer(structure, query, tracker)
        except Exception:
            self._bump(kind, serve_errors=1)
            raise
        self._count_serve(kind, queries=1, serve_seconds=time.perf_counter() - started)
        return answer

    def _resolve_miss(
        self,
        kind: str,
        registration: _Registration,
        key: ArtifactKey,
        data: Any,
        *,
        shard: bool = False,
    ) -> Any:
        """Cache-miss path shared by monolithic and per-shard resolution.

        The caller has already probed the cache (and recorded the miss);
        this takes the per-key build lock, rechecks, then loads from the
        store or builds and persists.  ``shard=True`` routes the counters to
        the ``shard_*`` statistics.
        """
        try:
            with self._build_lock(key):
                # Recheck without recording: this lookup was already counted
                # as a miss above, and a hit here only means another thread
                # finished the build first.
                structure = self._cache.get(key, record=False)
                if structure is not None:
                    self._bump(kind, **{("shard_cache_hits" if shard else "cache_hits"): 1})
                    return structure
                structure = self._load_from_store(kind, registration, key, shard=shard)
                if structure is None:
                    started = time.perf_counter()
                    structure = registration.scheme.preprocess(data, CostTracker())
                    elapsed = time.perf_counter() - started
                    if shard:
                        self._bump(kind, shard_builds=1, shard_build_seconds=elapsed)
                    else:
                        self._bump(kind, builds=1, build_seconds=elapsed)
                    if self._store is not None and registration.scheme.dump is not None:
                        try:
                            self._store.put(key, registration.scheme.dump(structure))
                        except OSError:
                            # Disk full / unwritable store: the build still
                            # serves from memory; only durability is lost,
                            # and the counter makes that observable.
                            self._bump(kind, persist_failures=1)
                self._cache.put(key, structure)
        finally:
            # Drop the per-key lock so the map stays bounded by in-flight
            # builds, not by every key ever seen.  A thread still blocked on
            # the dropped lock serializes against its cohort; a later misser
            # gets a fresh lock and finds the cache populated on recheck --
            # worst case one redundant build, never a wrong answer.
            with self._build_locks_guard:
                self._build_locks.pop(key, None)
        return structure

    def _load_from_store(
        self,
        kind: str,
        registration: _Registration,
        key: ArtifactKey,
        *,
        shard: bool = False,
    ) -> Optional[Any]:
        if self._store is None or registration.scheme.load is None:
            return None
        recovery = faults.policy()
        attempts = 1 + max(0, recovery.load_retries)
        for attempt in range(attempts):
            started = time.perf_counter()
            try:
                payload = self._store.get(key)
            except ArtifactCorruptionError:
                # Checksum mismatch or truncation.  Retry the read first: a
                # transiently bad read (torn page, racing writer) may clear,
                # and with fault injection armed a bounded-retry recovery is
                # exactly what the chaos suite asserts.  Only a persistently
                # corrupt file is deleted -- rebuilding from source is
                # always safe (artifacts are pure PTIME-recomputable caches).
                self._bump(kind, checksum_failures=1)
                if attempt + 1 < attempts:
                    self._bump(kind, rebuild_retries=1)
                    continue
                self._store.delete(key)
                return None
            except ArtifactError:
                # Incompatible format/scheme version: never retryable --
                # drop it and rebuild under the current version.
                self._store.delete(key)
                return None
            if payload is None:
                return None
            if time.perf_counter() - started >= recovery.slow_load_seconds:
                self._bump(kind, slow_loads=1)
            try:
                structure = registration.scheme.load(payload)
            except Exception:
                # Payload passed its checksum but does not deserialize: the
                # file content itself is bad, so a re-read cannot help.
                self._bump(kind, checksum_failures=1)
                self._store.delete(key)
                return None
            self._bump(kind, **{("shard_store_hits" if shard else "store_hits"): 1})
            return structure
        return None

    def warm(self, kind: str, data: Any) -> ArtifactKey:
        """Pre-build (and persist) the artifact(s) for ``(kind, data)``.

        For sharded kinds this builds every shard; the returned key is the
        dataset-level identity (see :meth:`artifact_key`).
        """
        self.resolve(kind, data)
        return self.artifact_key(kind, data)

    # -- serve-plan invalidation -------------------------------------------------

    def _watch_plan_key(self, key: ArtifactKey, dataset: Dataset, kind: str) -> None:
        """Register a session's serve plan as holding the structure at ``key``.

        Must be called *after* the plan is installed on the session: the
        trailing cache re-probe closes the build/evict race -- if the key
        was evicted while the plan was being assembled, the watcher just
        registered is fired immediately, dropping the freshly installed
        plan instead of letting an idle session pin an evicted structure.
        """
        with self._plan_watchers_lock:
            watchers = self._plan_watchers.setdefault(key, [])
            watchers[:] = [entry for entry in watchers if entry[0]() is not None]
            watchers.append((weakref.ref(dataset), kind))
        if self._cache.get(key, record=False) is None:
            self._drop_plans_watching(key)

    def _drop_plans_watching(self, key: ArtifactKey) -> None:
        """Drop exactly the serve plans that captured the structure at
        ``key`` (keyed invalidation: unrelated sessions are untouched, and
        idle sessions release their references eagerly -- the plans are
        removed, not merely marked stale)."""
        with self._plan_watchers_lock:
            watchers = self._plan_watchers.pop(key, ())
        for ref, kind in watchers:
            dataset = ref()
            if dataset is not None:
                dataset._drop_plan(kind)

    def _on_cache_eviction(self, key: Any) -> None:
        """Cache listener: an evicted structure must not stay pinned by a
        session's serve plan."""
        self._drop_plans_watching(key)

    # -- hot-path statistics -----------------------------------------------------

    def _count_serve(
        self,
        kind: str,
        *,
        queries: int = 0,
        serve_seconds: float = 0.0,
        shard_serve_seconds: float = 0.0,
    ) -> None:
        """Record served queries on the lock-free thread-local counters.

        The hot-path replacement for ``_bump(kind, queries=..., ...)``:
        every per-query statistic goes through here; ``_bump`` (lock-held)
        remains for rare events -- builds, hits, deltas, memo accounting.
        """
        slot = self._query_counters.slot(kind)
        slot[0] += queries
        slot[1] += serve_seconds
        slot[2] += shard_serve_seconds

    def invalidate(self, data: Any) -> None:
        """Forget a payload dataset after in-place mutation.

        Drops the anonymous session memoized for this object, the cached
        monolithic structures built from its old content (for every
        registered kind), any memoized shard plans, and any idle per-key
        build-lock entries for the old content -- so the next request
        re-fingerprints the new content and builds or loads the matching
        artifacts, and a long-lived engine cannot accumulate lock entries
        for keys that will never be resolved again.  Shard artifacts are
        content-addressed, so shards whose content survived the mutation
        still resolve warm; artifacts for the *old* content stay in the
        store -- they are still correct for that content.

        Named sessions have no in-place-mutation contract: mutate them
        through :meth:`~repro.service.dataset.Dataset.apply_changes`, or
        detach and re-attach.
        """
        with self._sessions_lock:
            session = self._sessions.pop(id(data), None)
        if session is None:
            return
        if not self._fingerprint_in_use(session.fingerprint):
            self._evict_content(session.fingerprint)

    def _fingerprint_in_use(self, fingerprint: str) -> bool:
        """True while an *attached* session still serves this content.

        Cached structures are content-addressed, so equal-content datasets
        share them; eviction (on detach or invalidate) must not pull a
        structure out from under a surviving session of the same content.
        """
        with self._datasets_guard:
            return any(
                dataset.fingerprint == fingerprint
                for dataset in self._datasets.values()
            )

    def _evict_content(self, fingerprint: str) -> None:
        """Evict every engine-side trace of one content identity: memoized
        shard plans, cached monolithic structures for every registered kind,
        and idle per-key build-lock entries.  Serve plans derived from this
        content fall out through the cache eviction listener (keyed plan
        watchers)."""
        self._planner.forget(fingerprint)
        for registration in self._registrations.values():
            key = ArtifactKey(
                fingerprint=fingerprint,
                scheme=registration.scheme.name,
                params=registration.params,
            )
            self._cache.invalidate(key)
            # A lock entry whose build is still in flight is owned by the
            # builder's own finally-pop; evicting here only matters for idle
            # entries, and double-pops are harmless (pop is idempotent).
            with self._build_locks_guard:
                self._build_locks.pop(key, None)

    # -- mutable datasets --------------------------------------------------------

    def open_dataset(self, kind: str, data: Any) -> "DatasetHandle":
        """A mutable, versioned handle on ``(kind, data)`` -- one kind only.

        The returned :class:`~repro.service.mutable.DatasetHandle` owns a
        private working copy of ``data`` (the caller's object is never
        touched) and serves snapshot-consistent answers while
        ``apply_changes`` batches mutate the underlying Pi-structure in
        place -- or, for sharded kinds and schemes without an
        ``apply_delta`` hook, rebuild through the ordinary artifact layers.
        Close the handle (or the engine) to flush write-behind state.

        To serve one mutable dataset under *several* kinds behind a single
        snapshot latch, use :meth:`attach` with ``mutable=True`` instead.
        """
        if self._closed:
            raise ServiceError("engine is closed")
        from repro.service.mutable import DatasetHandle

        registration = self._registration(kind)
        handle = DatasetHandle(self, kind, registration, data)
        with self._handles_guard:
            self._handles.append(handle)
        return handle

    def _forget_handle(self, handle: Any) -> None:
        with self._handles_guard:
            if handle in self._handles:
                self._handles.remove(handle)

    def _ensure_persist_pool(self) -> ThreadPoolExecutor:
        """The single-worker pool draining write-behind persists in order."""
        with self._pool_guard:
            if self._closed:
                raise ServiceError("engine is closed")
            if self._persist_pool is None:
                self._persist_pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-persist"
                )
            return self._persist_pool

    # -- execution -------------------------------------------------------------

    def execute(self, request: QueryRequest) -> bool:
        """Answer one request through the artifact layers.

        Named requests (``dataset=...``) serve through the attached session;
        payload requests (``data=...``) are adapted via an anonymous attach
        (the deprecated compatibility path -- see :class:`QueryRequest`).
        Returns the Boolean answer; serve time (including scatter-gather for
        sharded kinds) is recorded per kind.
        """
        if self._closed:
            raise ServiceError("engine is closed")
        if request.dataset is not None:
            if request.data is not None:
                raise ServiceError(
                    "request names both a dataset and a payload; pass exactly one"
                )
            return self.dataset(request.dataset).query(request.kind, request.query)
        if request.data is None:
            raise ServiceError(
                "request carries neither a dataset name nor a payload"
            )
        self._registration(request.kind)  # unknown-kind error before hashing
        session = self._anonymous_attach(request.data, kind=request.kind)
        return self._serve_for(session, request.kind, request.query)

    def execute_batch(
        self,
        requests: Sequence[QueryRequest],
        *,
        concurrent: bool = True,
    ) -> List[bool]:
        """Answer a batch of mixed requests; order of answers matches input.

        With ``concurrent=True`` requests are spread over the thread pool;
        answers are identical to sequential execution because evaluators
        never mutate the preprocessed structures and builds are serialized
        per artifact key.  (Shard builds run on the planner's separate pool,
        so concurrent sharded requests cannot starve the serving pool.)
        """
        requests = list(requests)
        if not concurrent or len(requests) <= 1:
            return [self.execute(request) for request in requests]
        pool = self._ensure_pool()
        if len(requests) <= self._max_workers:
            return list(pool.map(self.execute, requests))
        # Chunk the fan-out to pool width: one task per worker answering a
        # contiguous slice, instead of one task per (microsecond-scale)
        # query -- large batches no longer pay per-query submit/wakeup
        # overhead, and answers stay position-stable.
        chunks = _width_chunks(requests, self._max_workers)

        def run_chunk(chunk: Sequence[QueryRequest]) -> List[bool]:
            return [self.execute(request) for request in chunk]

        answers: List[bool] = []
        for chunk_answers in pool.map(run_chunk, chunks):
            answers.extend(chunk_answers)
        return answers

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._closed:
            raise ServiceError("engine is closed")
        with self._pool_guard:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-engine",
                )
            return self._pool

    # -- statistics and lifecycle ----------------------------------------------

    def _bump(self, kind: str, **deltas: Any) -> None:
        with self._stats_lock:
            stats = self._stats[kind]
            for name, delta in deltas.items():
                setattr(stats, name, getattr(stats, name) + delta)

    def stats(self) -> EngineStats:
        """An immutable snapshot of per-kind and cache counters.

        Per-query serving counters (``queries``, ``serve_seconds``,
        ``shard_serve_seconds``) live on lock-free thread-local shards and
        are folded into the snapshot here -- the read side pays the
        aggregation so the serve side never takes a lock.
        """
        with self._stats_lock:
            per_kind = {kind: replace(stats) for kind, stats in self._stats.items()}
        for kind, (queries, serve_seconds, shard_serve) in self._query_counters.fold().items():
            stats = per_kind.get(kind)
            if stats is not None:
                stats.queries += int(queries)
                stats.serve_seconds += serve_seconds
                stats.shard_serve_seconds += shard_serve
        return EngineStats(per_kind=per_kind, cache=self._cache.stats())

    def reset_stats(self) -> None:
        """Zero the per-kind counters (cache counters are cumulative)."""
        with self._stats_lock:
            for kind, stats in self._stats.items():
                self._stats[kind] = SchemeStats(scheme=stats.scheme, shards=stats.shards)
        self._query_counters.reset()

    def close(self) -> None:
        """Detach attached datasets and close open dataset handles (flushing
        write-behind state), then shut down the serving, shard-build and
        persist pools; further work errors.

        A session whose final flush fails (e.g.
        :class:`~repro.core.errors.WriteBehindError` after a disk-full
        write-behind) does not abort the shutdown: every dataset is still
        detached and every pool torn down, then the first failure is
        re-raised so the stale-artifact condition cannot pass silently.

        Idempotent: a second ``close()`` (including a concurrent one, which
        blocks until the first finishes) is a no-op, even when the first
        raised -- teardown completes before the error is re-raised.
        ``submit()`` futures still queued at close time never hang: datasets
        are detached before the pool drains, so each pending future resolves
        with an :class:`~repro.core.errors.UnknownDatasetError` (a
        :class:`~repro.core.errors.ServiceError`)."""
        with self._close_lock:
            if self._closed:
                return
            errors: List[BaseException] = []
            with self._datasets_guard:
                names = list(self._datasets)
            for name in names:
                try:
                    self.detach(name)
                except UnknownDatasetError:  # pragma: no cover - concurrent detach
                    pass
                except Exception as exc:
                    errors.append(exc)
            with self._handles_guard:
                handles = list(self._handles)
            for handle in handles:
                try:
                    handle.close()
                except Exception as exc:
                    errors.append(exc)
            self._closed = True
            self._planner.close()
            with self._pool_guard:
                if self._persist_pool is not None:
                    self._persist_pool.shutdown(wait=True)
                    self._persist_pool = None
                if self._pool is not None:
                    self._pool.shutdown(wait=True)
                    self._pool = None
            if errors:
                raise errors[0]

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
