"""Vertex Cover and Buss kernelization (paper, Section 4(9)).

VC is NP-complete, so by Corollary 7 it cannot be made Pi-tractable --
*unless the parameter K is fixed*.  The paper cites Buss' kernelization
[19]: in O(|E|) time an instance (G, K) shrinks to a kernel whose size
depends on K alone (at most K^2 edges and K^2 + K vertices), after which
deciding the kernel costs a function of K only.  For fixed K that is O(1)
with respect to |G| -- the "VC is in PiTP when K is fixed" claim, which the
case-9 experiment measures directly.

Kernelization rules (Buss):

1. a vertex of degree > K must be in every cover of size <= K: take it,
   decrement K;
2. isolated vertices never help: drop them;
3. a graph with maximum degree <= K and more than K^2 edges has no cover of
   size K: reject.

The remaining kernel is decided by a bounded search tree (branch on either
endpoint of an arbitrary edge, O(2^K * |kernel|)).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.graphs.graph import Graph

__all__ = ["VCInstance", "BussKernel", "buss_kernelize", "vc_branch_decide", "vc_decide", "vc_brute_force"]

EdgeSet = FrozenSet[Tuple[int, int]]


@dataclass(frozen=True)
class VCInstance:
    """A Vertex Cover instance (G, K)."""

    graph: Graph
    k: int


@dataclass
class BussKernel:
    """The result of kernelization: either decided, or a small residual."""

    decided: Optional[bool]
    forced_vertices: Set[int]
    residual_edges: Set[Tuple[int, int]]
    residual_budget: int

    @property
    def kernel_vertices(self) -> int:
        return len({v for edge in self.residual_edges for v in edge})

    @property
    def kernel_edges(self) -> int:
        return len(self.residual_edges)


def buss_kernelize(
    instance: VCInstance,
    tracker: Optional[CostTracker] = None,
) -> BussKernel:
    """O(|E|)-ish kernelization; kernel size bounded by K alone."""
    tracker = ensure_tracker(tracker)
    graph, budget = instance.graph, instance.k
    if budget < 0:
        return BussKernel(False, set(), set(), budget)

    edges: Set[Tuple[int, int]] = set(graph.edges())
    adjacency: Dict[int, Set[int]] = {}
    for u, v in edges:
        tracker.tick(1)
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)

    forced: Set[int] = set()
    # Rule 1: repeatedly take vertices of degree > budget.
    changed = True
    while changed and budget >= 0:
        changed = False
        for vertex, neighbors in list(adjacency.items()):
            tracker.tick(1)
            if len(neighbors) > budget:
                forced.add(vertex)
                budget -= 1
                for neighbor in list(neighbors):
                    tracker.tick(1)
                    adjacency[neighbor].discard(vertex)
                    edge = (min(vertex, neighbor), max(vertex, neighbor))
                    edges.discard(edge)
                    if not adjacency[neighbor]:
                        del adjacency[neighbor]
                del adjacency[vertex]
                changed = True
                break

    if budget < 0:
        return BussKernel(False, forced, set(), budget)
    if not edges:
        return BussKernel(True, forced, set(), budget)
    # Rule 3: too many low-degree edges -> no.
    if len(edges) > budget * budget:
        tracker.tick(1)
        return BussKernel(False, forced, set(), budget)
    return BussKernel(None, forced, edges, budget)


def vc_branch_decide(
    edges: Set[Tuple[int, int]],
    budget: int,
    tracker: Optional[CostTracker] = None,
) -> bool:
    """Bounded search tree on an edge set: O(2^budget * |edges|)."""
    tracker = ensure_tracker(tracker)
    tracker.tick(1)
    if not edges:
        return True
    if budget <= 0:
        return False
    u, v = next(iter(edges))

    def without(vertex: int) -> Set[Tuple[int, int]]:
        return {edge for edge in edges if vertex not in edge}

    tracker.tick(len(edges))
    return vc_branch_decide(without(u), budget - 1, tracker) or vc_branch_decide(
        without(v), budget - 1, tracker
    )


def vc_decide(
    instance: VCInstance,
    tracker: Optional[CostTracker] = None,
    *,
    kernelize: bool = True,
) -> bool:
    """Decide VC; with ``kernelize=False`` the search tree runs on the full
    graph (the no-preprocessing baseline whose cost grows with |G|)."""
    tracker = ensure_tracker(tracker)
    if kernelize:
        kernel = buss_kernelize(instance, tracker)
        if kernel.decided is not None:
            return kernel.decided
        return vc_branch_decide(set(kernel.residual_edges), kernel.residual_budget, tracker)
    return vc_branch_decide(set(instance.graph.edges()), instance.k, tracker)


def vc_brute_force(instance: VCInstance) -> bool:
    """Exhaustive reference for tests (tiny graphs only)."""
    graph, k = instance.graph, instance.k
    edges = list(graph.edges())
    if not edges:
        return k >= 0
    if k >= graph.n:
        return True
    vertices = sorted({v for edge in edges for v in edge})
    for size in range(0, min(k, len(vertices)) + 1):
        for cover in itertools.combinations(vertices, size):
            chosen = set(cover)
            if all(u in chosen or v in chosen for u, v in edges):
                return True
    return False
