"""Approximate Pi-tractability for Vertex Cover (paper, Section 8, issue (5)).

The paper asks: "If a given problem cannot be made Pi-tractable, can we
still preprocess its data set so that approximate parallel polylog-time
algorithms can be developed?"  For Vertex Cover the classical maximal-
matching bound gives exactly that:

* **preprocessing** (O(|E|), PTIME): greedily compute a maximal matching M;
  then |M| <= OPT <= 2|M|.
* **queries** ``k`` (any budget!) answer in O(1): report ``|M| <= k``.

The O(1) answer is a *one-sided approximation* of "OPT <= k":

* an approximate **no** (|M| > k) is always exact (OPT >= |M| > k);
* an approximate **yes** guarantees a cover of size <= 2|M| <= 2k -- every
  exact yes is reported yes, and a yes answer may overshoot the budget by
  at most a factor 2.

So after linear preprocessing, the NP-complete query answers instantly with
a certified bicriteria guarantee -- the approximate escape hatch the paper
sketches for problems outside PiTP.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.cost import CostTracker, ensure_tracker
from repro.graphs.graph import Graph

__all__ = ["maximal_matching", "ApproximateVertexCoverOracle"]


def maximal_matching(
    graph: Graph,
    tracker: Optional[CostTracker] = None,
) -> List[Tuple[int, int]]:
    """Greedy maximal matching in edge order; O(|E|)."""
    tracker = ensure_tracker(tracker)
    matched: Set[int] = set()
    matching: List[Tuple[int, int]] = []
    for u, v in graph.edges():
        tracker.tick(1)
        if u not in matched and v not in matched:
            matched.add(u)
            matched.add(v)
            matching.append((u, v))
    return matching


class ApproximateVertexCoverOracle:
    """O(1) one-sided-approximate answers to "has G a cover of size <= k"."""

    def __init__(self, graph: Graph, tracker: Optional[CostTracker] = None):
        tracker = ensure_tracker(tracker)
        self.matching = maximal_matching(graph, tracker)
        #: Lower bound on the optimum cover size.
        self.lower_bound = len(self.matching)
        #: The certified cover: both endpoints of every matched edge.
        self.cover = sorted({v for edge in self.matching for v in edge})

    @property
    def upper_bound(self) -> int:
        """A cover of this size exists (2-approximation witness)."""
        return len(self.cover)

    def probably_coverable(self, budget: int, tracker: Optional[CostTracker] = None) -> bool:
        """O(1) approximate answer to ``OPT <= budget``.

        False answers are exact; True answers certify a cover of size at
        most ``2 * budget`` (one-sided, factor-2 guarantee).
        """
        ensure_tracker(tracker).tick(1)
        return self.lower_bound <= budget

    def certified_cover_within(self, budget: int) -> Optional[List[int]]:
        """The explicit witness cover when it fits ``2 * budget``."""
        if self.upper_bound <= 2 * budget:
            return list(self.cover)
        return None
