"""Kernelization as preprocessing (paper, Section 4(9): Vertex Cover)."""

from repro.kernelization.approx import ApproximateVertexCoverOracle, maximal_matching
from repro.kernelization.vertex_cover import (
    BussKernel,
    VCInstance,
    buss_kernelize,
    vc_branch_decide,
    vc_brute_force,
    vc_decide,
)

__all__ = [
    "ApproximateVertexCoverOracle",
    "maximal_matching",
    "BussKernel",
    "VCInstance",
    "buss_kernelize",
    "vc_branch_decide",
    "vc_brute_force",
    "vc_decide",
]
