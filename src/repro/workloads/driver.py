"""Workload drivers: closed-loop and open-loop execution with tail latency.

Two driving modes, both consuming the deterministic operation streams of a
bound :class:`~repro.workloads.spec.WorkloadSpec`:

* :func:`run_closed_loop` -- N worker threads, each issuing its stream's
  next operation as soon as the previous answer returns (plus optional
  think time).  Load self-regulates to the service's capacity; the numbers
  answer "how fast can this session serve this mix".
* :func:`run_open_loop` -- an offered-load schedule ``[(qps, seconds),
  ...]``: operations are dispatched at fixed arrival times onto a bounded
  pool, and **latency is measured from the scheduled arrival**, not from
  dispatch -- queueing delay counts, so coordinated omission cannot hide an
  overloaded phase.  The achieved-vs-offered qps curve per phase answers
  "where does this mix saturate".

Both record p50/p95/p99/p999 latency (:class:`LatencyStats`), per-kind
breakdowns, error counts by exception type (library errors are counted and
survived; anything else propagates -- a crash is a bug, not a data point),
and a before/after window over ``Dataset.stats()`` counters so latency can
be correlated with cache hits, delta batches and rebuilds per run.

Reads go through ``Dataset.query``; writes through ``Dataset.apply_changes``.

The ``dataset`` argument is duck-typed, exactly like ``fault_plan``: any
object with the session surface (``kinds`` / ``name`` / ``mutable`` /
``dataset()`` / ``query`` / ``query_batch`` / ``apply_changes`` /
``stats``) drives unchanged.  In particular a
:class:`~repro.service.frontend.client.RemoteDataset` -- the serving
front's sync client session -- makes both drivers *remote* load
generators: same specs, same distributions, same report, with the gateway,
worker pool and wire protocol inside the measured path::

    client = RemoteClient(*front.address)
    ds = client.attach("events", data, kinds=["list-membership"], mutable=True)
    report = run_closed_loop(ds, spec, threads=4, operations=10_000)
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ReproError, WorkloadError
from repro.workloads.spec import Operation, WorkloadSpec

__all__ = ["LatencyStats", "WorkloadReport", "run_closed_loop", "run_open_loop"]

#: Keys of ``Dataset.stats()`` that are gauges or labels, not counters --
#: excluded from the before/after window diff.
_NON_COUNTERS = {"scheme", "shards", "hit_rate", "dataset", "mutable"}


def _percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an ascending sample list."""
    if not sorted_samples:
        return 0.0
    position = q * (len(sorted_samples) - 1)
    low = math.floor(position)
    high = min(low + 1, len(sorted_samples) - 1)
    fraction = position - low
    return sorted_samples[low] * (1 - fraction) + sorted_samples[high] * fraction


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution summary (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    p999: float
    max: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
            p999=_percentile(ordered, 0.999),
            max=ordered[-1],
        )

    def to_dict(self) -> Dict[str, float]:
        """Microsecond-denominated plain dict for benchmark records."""
        return {
            "count": self.count,
            "mean_us": self.mean * 1e6,
            "p50_us": self.p50 * 1e6,
            "p95_us": self.p95 * 1e6,
            "p99_us": self.p99 * 1e6,
            "p999_us": self.p999 * 1e6,
            "max_us": self.max * 1e6,
        }


@dataclass(frozen=True)
class WorkloadReport:
    """The result of one driver run, JSON-serializable via :meth:`to_dict`."""

    mode: str
    operations: int
    reads: int
    writes: int
    duration_seconds: float
    achieved_qps: float
    read_latency: LatencyStats
    write_latency: LatencyStats
    per_kind: Dict[str, LatencyStats]
    errors: Dict[str, int]
    stats_window: Dict[str, Any]
    spec: Dict[str, Any]
    phases: List[Dict[str, Any]] = field(default_factory=list)
    #: Answers explicitly marked partial (``DegradedAnswer`` under an armed
    #: fault plan) -- correct-or-degraded, never silently wrong.
    degraded: int = 0
    #: Operations answered with a typed ``DeadlineExceededError`` -- the
    #: budget ran out somewhere in the pipeline (also present in
    #: ``errors``; broken out because it is the headline resilience number).
    deadline_exceeded: int = 0
    #: Serving-front hedged reads fired during the run (from the
    #: ``frontend.hedged_requests`` counter delta; 0 for local sessions).
    hedged: int = 0

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "mode": self.mode,
            "operations": self.operations,
            "reads": self.reads,
            "writes": self.writes,
            "duration_seconds": self.duration_seconds,
            "achieved_qps": self.achieved_qps,
            "read_latency": self.read_latency.to_dict(),
            "per_kind": {k: v.to_dict() for k, v in self.per_kind.items()},
            "errors": dict(self.errors),
            "degraded": self.degraded,
            "deadline_exceeded": self.deadline_exceeded,
            "hedged": self.hedged,
            "stats_window": self.stats_window,
            "spec": self.spec,
        }
        if self.writes:
            record["write_latency"] = self.write_latency.to_dict()
        if self.phases:
            record["phases"] = self.phases
        return record


def _stats_snapshot(dataset: Any) -> Dict[str, Any]:
    stats = getattr(dataset, "stats", None)
    return stats() if callable(stats) else {}


def _window(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """Numeric counter deltas between two ``Dataset.stats()`` snapshots."""
    window: Dict[str, Any] = {}
    for key, value in after.items():
        if key in _NON_COUNTERS:
            continue
        prior = before.get(key)
        if isinstance(value, dict) and isinstance(prior, dict):
            window[key] = _window(prior, value)
        elif (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and isinstance(prior, (int, float))
        ):
            delta = value - prior
            window[key] = round(delta, 9) if isinstance(delta, float) else delta
    return window


def _execute(dataset: Any, op: Operation) -> Any:
    if op.changes is not None:
        return dataset.apply_changes(op.changes)
    return dataset.query(op.kind, op.query)


class _Recorder:
    """Per-worker sample sink, merged single-threaded after the run."""

    __slots__ = ("read_samples", "write_samples", "per_kind", "errors", "degraded")

    def __init__(self) -> None:
        self.read_samples: List[float] = []
        self.write_samples: List[float] = []
        self.per_kind: Dict[str, List[float]] = {}
        self.errors: Dict[str, int] = {}
        self.degraded = 0

    def record(self, op: Operation, elapsed: float, answer: Any = None) -> None:
        (self.write_samples if op.is_write else self.read_samples).append(elapsed)
        self.per_kind.setdefault(op.kind, []).append(elapsed)
        # Duck-typed so the harness needs no import from the service layer:
        # only a DegradedAnswer carries a truthy ``partial`` marker.
        if getattr(answer, "partial", False):
            self.degraded += 1

    def error(self, exc: BaseException) -> None:
        name = type(exc).__name__
        self.errors[name] = self.errors.get(name, 0) + 1


def _merge(
    recorders: Sequence[_Recorder],
) -> Tuple[List[float], List[float], Dict[str, List[float]], Dict[str, int]]:
    reads: List[float] = []
    writes: List[float] = []
    per_kind: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    for recorder in recorders:
        reads.extend(recorder.read_samples)
        writes.extend(recorder.write_samples)
        for kind, samples in recorder.per_kind.items():
            per_kind.setdefault(kind, []).extend(samples)
        for name, count in recorder.errors.items():
            errors[name] = errors.get(name, 0) + count
    return reads, writes, per_kind, errors


def _apply_deadline(dataset: Any, deadline_ms: Optional[float]) -> None:
    """Propagate a per-request budget onto the session, duck-typed.

    Remote sessions (:class:`~repro.service.frontend.client.RemoteDataset`)
    expose ``set_deadline``; asking a session without one for deadlines is
    a spec error, not something to ignore silently.
    """
    setter = getattr(dataset, "set_deadline", None)
    if callable(setter):
        setter(deadline_ms)
    elif deadline_ms is not None:
        raise WorkloadError(
            f"deadline_ms={deadline_ms} needs a session with set_deadline "
            f"(e.g. the serving front's RemoteDataset); "
            f"{type(dataset).__name__} has none"
        )


def _hedged_delta(stats_window: Dict[str, Any]) -> int:
    """Hedged-read count for the run, from the frontend counter delta."""
    frontend = stats_window.get("frontend")
    if isinstance(frontend, dict):
        value = frontend.get("hedged_requests")
        if isinstance(value, (int, float)):
            return int(value)
    return 0


def _armed(fault_plan: Any):
    """``fault_plan.armed()`` when given, else a no-op context.

    Duck-typed (any object with an ``armed()`` context manager works) so
    the harness stays import-independent of :mod:`repro.service.faults`.
    """
    return nullcontext() if fault_plan is None else fault_plan.armed()


def _split_quota(total: int, workers: int) -> List[int]:
    base, extra = divmod(total, workers)
    return [base + (1 if index < extra else 0) for index in range(workers)]


def run_closed_loop(
    dataset: Any,
    spec: WorkloadSpec,
    *,
    threads: int = 4,
    operations: int = 1000,
    think_seconds: float = 0.0,
    warmup: int = 0,
    fault_plan: Any = None,
    deadline_ms: Optional[float] = None,
) -> WorkloadReport:
    """Drive ``operations`` total ops from ``threads`` closed-loop workers.

    Each worker owns a deterministic stream (seeded from ``spec.seed`` and
    its worker id) and issues its next operation as soon as the previous
    one completes, sleeping ``think_seconds`` in between when given.
    ``warmup`` extra operations per worker run before timing starts
    (unrecorded), so first-touch structure builds do not pollute the tail.

    ``fault_plan`` (a :class:`repro.service.faults.FaultPlan`) is armed for
    the duration of the run -- warmup included -- so degraded-mode tails
    can be measured; answers explicitly marked partial are counted in
    ``WorkloadReport.degraded``, and injected failures surface through the
    normal error counts.

    ``deadline_ms`` attaches an end-to-end budget to every operation (the
    session must expose ``set_deadline``, as
    :class:`~repro.service.frontend.client.RemoteDataset` does); expiries
    are counted in ``WorkloadReport.deadline_exceeded`` and the front's
    hedged reads in ``WorkloadReport.hedged``.
    """
    if threads < 1:
        raise WorkloadError(f"threads must be >= 1, got {threads}")
    if operations < 1:
        raise WorkloadError(f"operations must be >= 1, got {operations}")
    bound = spec.bind(dataset)
    quotas = _split_quota(operations, threads)
    recorders = [_Recorder() for _ in range(threads)]
    spans: List[Tuple[float, float]] = [(0.0, 0.0)] * threads
    barrier = threading.Barrier(threads)
    before = _stats_snapshot(dataset)
    if deadline_ms is not None:
        _apply_deadline(dataset, deadline_ms)

    def worker(worker_id: int) -> None:
        stream = bound.stream(worker_id)
        recorder = recorders[worker_id]
        for _ in range(warmup):
            op = next(stream)
            try:
                _execute(dataset, op)
            except ReproError:
                pass
        barrier.wait()
        started = time.perf_counter()
        for _ in range(quotas[worker_id]):
            op = next(stream)
            begin = time.perf_counter()
            try:
                answer = _execute(dataset, op)
            except ReproError as exc:
                recorder.error(exc)
            else:
                recorder.record(op, time.perf_counter() - begin, answer)
            if think_seconds > 0:
                time.sleep(think_seconds)
        spans[worker_id] = (started, time.perf_counter())

    workers = [
        threading.Thread(target=worker, args=(index,), name=f"workload-{index}")
        for index in range(threads)
    ]
    try:
        with _armed(fault_plan):
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join()
    finally:
        # Clear the budget before the closing stats round trip: the report
        # must come back even when the run itself was expiring.
        if deadline_ms is not None:
            _apply_deadline(dataset, None)

    reads, writes, per_kind, errors = _merge(recorders)
    duration = max(end for _, end in spans) - min(start for start, _ in spans)
    completed = len(reads) + len(writes)
    stats_window = _window(before, _stats_snapshot(dataset))
    return WorkloadReport(
        mode="closed",
        operations=operations,
        reads=len(reads),
        writes=len(writes),
        duration_seconds=duration,
        achieved_qps=completed / duration if duration > 0 else 0.0,
        read_latency=LatencyStats.from_samples(reads),
        write_latency=LatencyStats.from_samples(writes),
        per_kind={k: LatencyStats.from_samples(v) for k, v in sorted(per_kind.items())},
        errors=errors,
        stats_window=stats_window,
        spec=dict(spec.provenance(), threads=threads, think_seconds=think_seconds,
                  **({"deadline_ms": deadline_ms} if deadline_ms is not None else {})),
        degraded=sum(recorder.degraded for recorder in recorders),
        deadline_exceeded=errors.get("DeadlineExceededError", 0),
        hedged=_hedged_delta(stats_window),
    )


def run_open_loop(
    dataset: Any,
    spec: WorkloadSpec,
    *,
    schedule: Sequence[Tuple[float, float]],
    concurrency: int = 4,
    fault_plan: Any = None,
    deadline_ms: Optional[float] = None,
) -> WorkloadReport:
    """Drive an offered-load schedule of ``(offered_qps, seconds)`` phases.

    A dispatcher thread releases one operation per arrival slot onto a
    bounded executor; each operation's latency runs from its *scheduled*
    arrival to completion, so time spent queueing behind a saturated pool
    is charged to the operation (no coordinated omission).  Per phase the
    report records offered vs. achieved qps -- the saturation curve.

    ``fault_plan`` is armed for the whole schedule, and ``deadline_ms``
    attaches a per-operation budget, exactly as in :func:`run_closed_loop`.
    """
    phases = list(schedule)
    if not phases:
        raise WorkloadError("open-loop schedule is empty; give (qps, seconds) phases")
    for offered_qps, seconds in phases:
        if offered_qps <= 0 or seconds <= 0:
            raise WorkloadError(
                f"schedule phases need positive qps and seconds, got "
                f"({offered_qps}, {seconds})"
            )
    if concurrency < 1:
        raise WorkloadError(f"concurrency must be >= 1, got {concurrency}")
    bound = spec.bind(dataset)
    stream = bound.stream(0)
    recorder = _Recorder()
    per_kind: Dict[str, List[float]] = {}
    before = _stats_snapshot(dataset)
    phase_records: List[Dict[str, Any]] = []
    all_reads: List[float] = []
    all_writes: List[float] = []

    def timed(op: Operation) -> Tuple[float, Any]:
        answer = _execute(dataset, op)
        return time.perf_counter(), answer

    if deadline_ms is not None:
        _apply_deadline(dataset, deadline_ms)
    pool = ThreadPoolExecutor(max_workers=concurrency, thread_name_prefix="workload")
    plan_context = _armed(fault_plan)
    plan_context.__enter__()
    try:
        for offered_qps, seconds in phases:
            count = max(1, int(offered_qps * seconds))
            interval = 1.0 / offered_qps
            pending: List[Tuple[Operation, float, Any]] = []
            phase_started = time.perf_counter()
            for slot in range(count):
                scheduled = phase_started + slot * interval
                now = time.perf_counter()
                if scheduled > now:
                    time.sleep(scheduled - now)
                op = next(stream)
                pending.append((op, scheduled, pool.submit(timed, op)))
            phase_samples: List[float] = []
            last_completion = phase_started
            for op, scheduled, future in pending:
                try:
                    completed_at, answer = future.result()
                except ReproError as exc:
                    recorder.error(exc)
                    continue
                last_completion = max(last_completion, completed_at)
                elapsed = completed_at - scheduled
                phase_samples.append(elapsed)
                (all_writes if op.is_write else all_reads).append(elapsed)
                per_kind.setdefault(op.kind, []).append(elapsed)
                if getattr(answer, "partial", False):
                    recorder.degraded += 1
            wall = last_completion - phase_started
            phase_records.append(
                {
                    "offered_qps": offered_qps,
                    "achieved_qps": len(phase_samples) / wall if wall > 0 else 0.0,
                    "operations": count,
                    "completed": len(phase_samples),
                    "latency": LatencyStats.from_samples(phase_samples).to_dict(),
                }
            )
    finally:
        pool.shutdown(wait=True)
        plan_context.__exit__(None, None, None)
        if deadline_ms is not None:
            _apply_deadline(dataset, None)

    duration = sum(
        record["completed"] / record["achieved_qps"]
        for record in phase_records
        if record["achieved_qps"] > 0
    )
    completed = len(all_reads) + len(all_writes)
    stats_window = _window(before, _stats_snapshot(dataset))
    return WorkloadReport(
        mode="open",
        operations=sum(record["operations"] for record in phase_records),
        reads=len(all_reads),
        writes=len(all_writes),
        duration_seconds=duration,
        achieved_qps=completed / duration if duration > 0 else 0.0,
        read_latency=LatencyStats.from_samples(all_reads),
        write_latency=LatencyStats.from_samples(all_writes),
        per_kind={k: LatencyStats.from_samples(v) for k, v in sorted(per_kind.items())},
        errors=recorder.errors,
        stats_window=stats_window,
        spec=dict(spec.provenance(), concurrency=concurrency,
                  **({"deadline_ms": deadline_ms} if deadline_ms is not None else {})),
        phases=phase_records,
        degraded=recorder.degraded,
        deadline_exceeded=recorder.errors.get("DeadlineExceededError", 0),
        hedged=_hedged_delta(stats_window),
    )
