"""Workload harness: skewed traffic, read/write mixes, tail-latency curves.

The instrument every serving-perf claim is judged with.  Declare traffic as
a :class:`WorkloadSpec` -- kind weights, a key distribution (uniform /
Zipf / hotspot / drifting working set), a hit fraction, a read/write ratio
-- bind it to an attached :class:`~repro.service.dataset.Dataset` session,
and drive it closed-loop (:func:`run_closed_loop`: N threads, think time)
or open-loop (:func:`run_open_loop`: an offered-load schedule, latency
measured from scheduled arrival so queueing counts).  Reports carry
p50/p95/p99/p999 latency, achieved-vs-offered qps, error counts, and a
``Dataset.stats()`` counter window for the run.

    >>> from repro.catalog import build_query_engine
    >>> from repro.workloads import WorkloadSpec, ZipfKeys, run_closed_loop
    >>> engine = build_query_engine()
    >>> ds = engine.attach("events", tuple(range(512)), kinds=["list-membership"])
    >>> spec = WorkloadSpec(mix={"list-membership": 1.0}, distribution=ZipfKeys(1.1))
    >>> report = run_closed_loop(ds, spec, threads=2, operations=200)
    >>> (report.reads, report.writes, report.errors)
    (200, 0, {})
    >>> report.read_latency.p999 >= report.read_latency.p50 >= 0
    True
    >>> engine.close()

This package depends only on :mod:`repro.core` and :mod:`repro.incremental`
(datasets are duck-typed), so :mod:`repro.service` can re-export its entry
points without an import cycle.
"""

from repro.workloads.distributions import (
    DriftKeys,
    HotspotKeys,
    KeyDistribution,
    UniformKeys,
    ZipfKeys,
)
from repro.workloads.driver import (
    LatencyStats,
    WorkloadReport,
    run_closed_loop,
    run_open_loop,
)
from repro.workloads.spec import BoundWorkload, Operation, WorkloadSpec
from repro.workloads.templates import BoundTemplate, bind_template, template_kinds

__all__ = [
    "KeyDistribution",
    "UniformKeys",
    "ZipfKeys",
    "HotspotKeys",
    "DriftKeys",
    "WorkloadSpec",
    "BoundWorkload",
    "Operation",
    "BoundTemplate",
    "bind_template",
    "template_kinds",
    "LatencyStats",
    "WorkloadReport",
    "run_closed_loop",
    "run_open_loop",
]
