"""Workload mix specification: kind weights, read/write ratio, key skew.

A :class:`WorkloadSpec` is a declarative description of traffic -- which
kinds, in what proportion, how skewed, how write-heavy -- that binds to an
attached :class:`~repro.service.dataset.Dataset` session and yields
deterministic per-worker operation streams:

    spec = WorkloadSpec(mix={"list-membership": 1.0}, distribution=ZipfKeys(1.1))
    bound = spec.bind(ds)
    stream = bound.stream(worker_id=0)
    op = next(stream)           # Operation(kind=..., query=...) or a write batch

Reads map a distribution-drawn index through the kind's query template
(:mod:`repro.workloads.templates`); writes are valid change batches routed
through ``Dataset.apply_changes`` by the driver.  Determinism: every choice
-- kind, key, hit-vs-miss, write payloads -- is drawn from a per-stream
``random.Random`` seeded from ``(spec.seed, worker_id)``, so two runs of
the same spec over the same dataset issue identical operation sequences
per worker, independent of thread scheduling.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.errors import WorkloadError
from repro.workloads.distributions import KeyDistribution, Sampler, UniformKeys
from repro.workloads.templates import BoundTemplate, bind_template

__all__ = ["WorkloadSpec", "BoundWorkload", "Operation"]


@dataclass(frozen=True)
class Operation:
    """One generated unit of work: a read query or a write batch."""

    kind: str
    query: Any = None
    changes: Optional[List[Any]] = None

    @property
    def is_write(self) -> bool:
        return self.changes is not None


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative traffic shape, bindable to any served dataset session.

    Parameters
    ----------
    mix:
        ``kind -> weight`` for read traffic; weights are normalized, so
        ``{"a": 3, "b": 1}`` reads kind ``a`` three times as often as ``b``.
    write_ratio:
        Fraction of operations that are change batches (``0.1`` = 90/10
        read/write).  Requires a session attached ``mutable=True``.
    distribution:
        The :class:`~repro.workloads.distributions.KeyDistribution` queries
        draw dataset elements from (default uniform).
    hit_fraction:
        Fraction of reads anchored on a live element (yes-leaning); the
        rest probe outside the content (no-leaning).  This is the
        selectivity knob.
    seed:
        Base seed; combined with each worker id for per-stream determinism.
    writes_per_batch:
        Changes per write operation (one ``apply_changes`` call each).
    write_kinds:
        Kinds whose write generators produce the change batches; defaults
        to every kind in the mix with a write generator.
    """

    mix: Mapping[str, float]
    write_ratio: float = 0.0
    distribution: KeyDistribution = field(default_factory=UniformKeys)
    hit_fraction: float = 0.5
    seed: int = 0
    writes_per_batch: int = 4
    write_kinds: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.mix:
            raise WorkloadError("workload mix is empty; give at least one kind")
        for kind, weight in self.mix.items():
            if not (isinstance(weight, (int, float)) and weight > 0):
                raise WorkloadError(
                    f"mix weight for kind {kind!r} must be > 0, got {weight!r}"
                )
        if not 0 <= self.write_ratio < 1:
            raise WorkloadError(
                f"write_ratio must be in [0, 1), got {self.write_ratio}"
            )
        if not 0 <= self.hit_fraction <= 1:
            raise WorkloadError(
                f"hit_fraction must be in [0, 1], got {self.hit_fraction}"
            )
        if self.writes_per_batch < 1:
            raise WorkloadError(
                f"writes_per_batch must be >= 1, got {self.writes_per_batch}"
            )

    def bind(self, dataset: Any) -> "BoundWorkload":
        """Bind to an attached session; validates kinds and mutability."""
        return BoundWorkload(self, dataset)

    def provenance(self) -> Dict[str, Any]:
        """A plain-dict description recorded with benchmark results."""
        return {
            "mix": dict(self.mix),
            "write_ratio": self.write_ratio,
            "hit_fraction": self.hit_fraction,
            "seed": self.seed,
            "writes_per_batch": self.writes_per_batch,
            **self.distribution.spec(),
        }


class _Stream:
    """One worker's deterministic operation sequence."""

    def __init__(self, bound: "BoundWorkload", worker_id: int) -> None:
        spec = bound.spec
        # Mix the worker id into the seed with distinct odd multipliers so
        # streams are decorrelated but reproducible.
        self._rng = random.Random(spec.seed * 1_000_003 + worker_id * 7_919 + 1)
        self._spec = spec
        self._kinds = bound.kinds
        self._cumulative = bound.cumulative_weights
        self._total = self._cumulative[-1]
        self._templates = bound.templates
        # Private samplers: drift state never crosses worker streams.
        self._samplers: Dict[str, Sampler] = {
            kind: spec.distribution.start(template.universe)
            for kind, template in bound.templates.items()
        }
        self._write_kinds = bound.write_kinds

    def __iter__(self) -> Iterator[Operation]:
        return self

    def __next__(self) -> Operation:
        rng = self._rng
        spec = self._spec
        if self._write_kinds and rng.random() < spec.write_ratio:
            kind = self._write_kinds[rng.randrange(len(self._write_kinds))]
            changes = self._templates[kind].write(rng, spec.writes_per_batch)
            return Operation(kind, changes=changes)
        kind = self._kinds[
            bisect_left(self._cumulative, rng.random() * self._total)
        ]
        template = self._templates[kind]
        index = self._samplers[kind].sample(rng)
        hit = rng.random() < spec.hit_fraction
        return Operation(kind, query=template.query(index, hit, rng))


class BoundWorkload:
    """A spec resolved against one dataset session's snapshot.

    Validation happens here, before any driver thread starts: every mix
    kind must be served by the session and have a query template, and a
    nonzero write ratio requires a mutable session plus at least one kind
    with a write generator.
    """

    def __init__(self, spec: WorkloadSpec, dataset: Any) -> None:
        self.spec = spec
        self.dataset = dataset
        served = set(dataset.kinds)
        missing = sorted(set(spec.mix) - served)
        if missing:
            raise WorkloadError(
                f"mix kinds {missing} are not served by dataset "
                f"{dataset.name!r}; served kinds: {sorted(served)}"
            )
        snapshot = dataset.dataset()
        self.templates: Dict[str, BoundTemplate] = {
            kind: bind_template(kind, snapshot) for kind in spec.mix
        }
        self.kinds: List[str] = sorted(spec.mix)
        self.cumulative_weights: List[float] = list(
            accumulate(float(spec.mix[kind]) for kind in self.kinds)
        )
        if spec.write_ratio > 0:
            if not dataset.mutable:
                raise WorkloadError(
                    f"write_ratio={spec.write_ratio} needs a mutable session; "
                    f"attach {dataset.name!r} with mutable=True"
                )
            candidates = spec.write_kinds or tuple(
                kind for kind in self.kinds if self.templates[kind].writable
            )
            for kind in candidates:
                if kind not in self.templates:
                    raise WorkloadError(
                        f"write kind {kind!r} is not in the mix {self.kinds}"
                    )
                if not self.templates[kind].writable:
                    raise WorkloadError(f"kind {kind!r} has no write generator")
            if not candidates:
                raise WorkloadError(
                    "write_ratio > 0 but no mix kind has a write generator"
                )
            self.write_kinds: Tuple[str, ...] = tuple(candidates)
        else:
            self.write_kinds = ()

    def stream(self, worker_id: int = 0) -> _Stream:
        """A fresh deterministic operation stream for one worker."""
        return _Stream(self, worker_id)
