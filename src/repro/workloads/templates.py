"""Per-kind query templates: dataset-aware generators with controlled hits.

A template turns a distribution-drawn *index* into a concrete, answerable
query for one serving kind, and (for mutable sessions) produces valid
change batches for that kind's dataset shape.  Binding a template to a
dataset snapshot fixes the element universe the key distribution samples
over, which is what makes selectivity controllable: ``hit=True`` anchors
the query on the drawn element (a guaranteed or near-guaranteed yes
instance), ``hit=False`` probes outside the live content.

Templates never import the serving layer; they duck-type the dataset
shapes (int tuples, :class:`~repro.storage.relation.Relation` rows,
:class:`~repro.graphs.graph.Digraph` adjacency), so the workloads package
stays import-cycle-free under ``repro.service``'s re-exports.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import WorkloadError
from repro.incremental.changes import ChangeKind, EdgeChange, PointWrite, TupleChange

__all__ = ["BoundTemplate", "bind_template", "template_kinds"]

#: Longest RMQ window a template generates: keeps hit-query generation
#: (a leftmost-argmin scan over the window) O(1) amortized per query.
_RMQ_MAX_WINDOW = 64


class BoundTemplate:
    """One kind's generators bound to a dataset snapshot.

    ``universe`` is the element-index space key distributions sample over;
    ``query(index, hit, rng)`` maps a drawn index to a concrete query;
    ``write(rng)`` returns one valid change batch, or raises
    :class:`~repro.core.errors.WorkloadError` when the kind's shape has no
    write generator.
    """

    def __init__(
        self,
        kind: str,
        universe: int,
        query: Callable[[int, bool, random.Random], Any],
        write: Optional[Callable[[random.Random, int], List[Any]]] = None,
    ) -> None:
        if universe < 1:
            raise WorkloadError(f"kind {kind!r}: dataset is empty, nothing to probe")
        self.kind = kind
        self.universe = universe
        self.query = query
        self._write = write

    @property
    def writable(self) -> bool:
        return self._write is not None

    def write(self, rng: random.Random, changes: int = 1) -> List[Any]:
        if self._write is None:
            raise WorkloadError(f"kind {self.kind!r} has no write generator")
        return self._write(rng, changes)


def _bind_membership(data: Any) -> BoundTemplate:
    values = tuple(data)
    n = len(values)
    domain = 4 * max(n, 1)

    def query(index: int, hit: bool, rng: random.Random) -> int:
        if hit:
            return values[index]
        # Live values (and write inserts) stay in [0, domain]; probing past
        # it is a guaranteed miss.
        return domain + 1 + rng.randrange(domain + 1)

    def write(rng: random.Random, changes: int) -> List[Any]:
        batch: List[Any] = []
        for _ in range(changes):
            value = rng.randint(0, domain)
            kind = ChangeKind.INSERT if rng.random() < 0.5 else ChangeKind.DELETE
            batch.append(TupleChange(kind, (value,)))
        return batch

    return BoundTemplate("list-membership", n, query, write)


def _bind_rmq(data: Any) -> BoundTemplate:
    values = tuple(data)
    n = len(values)

    def query(index: int, hit: bool, rng: random.Random) -> Any:
        i = index
        j = min(n - 1, i + rng.randrange(_RMQ_MAX_WINDOW))
        window = values[i : j + 1]
        argmin = i + min(range(len(window)), key=window.__getitem__)
        if hit or j == i:
            return (i, j, argmin)
        # Any position in the window except the leftmost argmin: a
        # guaranteed no-instance.
        position = i + rng.randrange(j - i)
        if position >= argmin:
            position += 1
        return (i, j, position)

    def write(rng: random.Random, changes: int) -> List[Any]:
        return [
            PointWrite(rng.randrange(n), rng.randint(-n, n)) for _ in range(changes)
        ]

    return BoundTemplate("minimum-range-query", n, query, write)


def _relation_writer(rows: List[Any], domain: int) -> Callable[[random.Random, int], List[Any]]:
    arity = len(rows[0])

    def write(rng: random.Random, changes: int) -> List[Any]:
        batch: List[Any] = []
        for _ in range(changes):
            row = tuple(rng.randint(0, domain) for _ in range(arity))
            kind = ChangeKind.INSERT if rng.random() < 0.5 else ChangeKind.DELETE
            batch.append(TupleChange(kind, row))
        return batch

    return write


def _bind_point_selection(data: Any) -> BoundTemplate:
    rows = list(data.rows())
    if not rows:
        raise WorkloadError("point-selection: relation is empty, nothing to probe")
    attributes = data.schema.attribute_names()
    positions = {a: data.schema.position_of(a) for a in attributes}
    domain = 4 * max(len(rows), 1)

    def query(index: int, hit: bool, rng: random.Random) -> Any:
        attribute = attributes[rng.randrange(len(attributes))]
        if hit:
            return (attribute, rows[index % len(rows)][positions[attribute]])
        # Column domains are non-negative; a negative constant never hits.
        return (attribute, -1 - rng.randrange(domain))

    return BoundTemplate(
        "point-selection", len(rows), query, _relation_writer(rows, domain)
    )


def _bind_range_selection(data: Any) -> BoundTemplate:
    rows = list(data.rows())
    if not rows:
        raise WorkloadError("range-selection: relation is empty, nothing to probe")
    attributes = data.schema.attribute_names()
    positions = {a: data.schema.position_of(a) for a in attributes}
    domain = 4 * max(len(rows), 1)

    def query(index: int, hit: bool, rng: random.Random) -> Any:
        attribute = attributes[rng.randrange(len(attributes))]
        if hit:
            anchor = rows[index % len(rows)][positions[attribute]]
            width = rng.randrange(4)
            return (attribute, anchor - width, anchor + width)
        low = -1 - rng.randrange(domain)
        return (attribute, low - rng.randrange(4), low)

    return BoundTemplate(
        "range-selection", len(rows), query, _relation_writer(rows, domain)
    )


def _bind_topk(data: Any) -> BoundTemplate:
    rows = list(data)
    if not rows:
        raise WorkloadError("topk-threshold: score table is empty, nothing to probe")
    arity = len(rows[0])
    # Score columns stay bounded (generator caps at ~1200 per attribute, and
    # write inserts stay in [0, 1000]), so this threshold can never be met.
    unreachable = 2000

    def query(index: int, hit: bool, rng: random.Random) -> Any:
        weights = tuple(rng.randint(1, 3) for _ in range(arity))
        if hit:
            anchor = rows[index % len(rows)]
            score = sum(w * v for w, v in zip(weights, anchor))
            # k=1 with theta at the anchor's own score: the best row scores
            # at least this much, so the answer is a guaranteed yes.
            return (weights, 1, score)
        return (weights, 1, sum(weights) * unreachable + 1)

    def write(rng: random.Random, changes: int) -> List[Any]:
        batch: List[Any] = []
        for _ in range(changes):
            row = tuple(rng.randint(0, 1000) for _ in range(arity))
            kind = ChangeKind.INSERT if rng.random() < 0.5 else ChangeKind.DELETE
            batch.append(TupleChange(kind, row))
        return batch

    return BoundTemplate("topk-threshold", len(rows), query, write)


def _bind_reachability(data: Any) -> BoundTemplate:
    n = data.n

    def query(index: int, hit: bool, rng: random.Random) -> Any:
        source = index
        if hit:
            neighbors = data.out_neighbors(source)
            # An out-neighbor is reachable by definition; a vertex always
            # reaches itself, so sources without edges stay yes-instances.
            target = neighbors[rng.randrange(len(neighbors))] if neighbors else source
            return (source, target)
        return (source, rng.randrange(n))

    def write(rng: random.Random, changes: int) -> List[Any]:
        # Closure maintenance is insert-only (Section 4(7)).
        return [
            EdgeChange(ChangeKind.INSERT, rng.randrange(n), rng.randrange(n))
            for _ in range(changes)
        ]

    return BoundTemplate("reachability", n, query, write)


_TEMPLATES: Dict[str, Callable[[Any], BoundTemplate]] = {
    "list-membership": _bind_membership,
    "minimum-range-query": _bind_rmq,
    "point-selection": _bind_point_selection,
    "range-selection": _bind_range_selection,
    "topk-threshold": _bind_topk,
    "reachability": _bind_reachability,
}


def template_kinds() -> List[str]:
    """Sorted kinds with a registered query template."""
    return sorted(_TEMPLATES)


def bind_template(kind: str, data: Any) -> BoundTemplate:
    """The template for ``kind`` bound to one dataset snapshot."""
    binder = _TEMPLATES.get(kind)
    if binder is None:
        raise WorkloadError(
            f"no query template for kind {kind!r}; templated kinds: "
            f"{template_kinds()}"
        )
    return binder(data)
