"""Pluggable key distributions: which parts of the dataset a workload hits.

Every number the serving stack has published so far came from uniform
probes -- exactly the traffic shape that hides tail latency and hot-key
contention.  A :class:`KeyDistribution` decides *which* dataset element a
query template anchors on, as an index into the element universe:

* :class:`UniformKeys` -- every element equally likely (the old behaviour);
* :class:`ZipfKeys` -- rank-frequency skew ``P(rank r) ~ 1/r^skew``; the
  hot head concentrates cache and latch traffic the way production key
  popularity does;
* :class:`HotspotKeys` -- a working set: a ``hot_fraction`` slice of the
  universe absorbs ``hot_weight`` of the probes;
* :class:`DriftKeys` -- a working-set window that slides across the
  universe every ``period`` samples, modelling temporal drift (yesterday's
  hot keys cool down).

Distributions are stateless specs; :meth:`KeyDistribution.start` binds one
to a universe size and returns a fresh, private sampler, so every driver
worker stream owns its own drift state and determinism is per-stream.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from itertools import accumulate
from typing import Dict, List

from repro.core.errors import WorkloadError

__all__ = [
    "KeyDistribution",
    "UniformKeys",
    "ZipfKeys",
    "HotspotKeys",
    "DriftKeys",
]


class Sampler:
    """A distribution bound to a universe: ``sample(rng) -> index``."""

    def sample(self, rng: random.Random) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class KeyDistribution:
    """Base spec: subclasses implement :meth:`start` and :meth:`spec`."""

    def start(self, universe: int) -> Sampler:
        """A fresh sampler over indices ``[0, universe)``.

        Each worker stream calls this once, so stateful distributions (the
        drifting window) never share position across threads.
        """
        raise NotImplementedError

    def spec(self) -> Dict[str, object]:
        """Provenance dict recorded alongside benchmark results."""
        raise NotImplementedError


def _check_universe(universe: int) -> None:
    if universe < 1:
        raise WorkloadError(f"key universe must be >= 1, got {universe}")


class _UniformSampler(Sampler):
    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        self._n = n

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self._n)


class UniformKeys(KeyDistribution):
    """Every element of the universe equally likely."""

    def start(self, universe: int) -> Sampler:
        _check_universe(universe)
        return _UniformSampler(universe)

    def spec(self) -> Dict[str, object]:
        return {"distribution": "uniform"}


class _ZipfSampler(Sampler):
    """Inverse-CDF sampling over precomputed cumulative rank weights."""

    __slots__ = ("_cumulative", "_total")

    def __init__(self, n: int, skew: float) -> None:
        weights = [1.0 / (rank**skew) for rank in range(1, n + 1)]
        self._cumulative: List[float] = list(accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> int:
        return bisect_left(self._cumulative, rng.random() * self._total)


class ZipfKeys(KeyDistribution):
    """Zipf rank-frequency skew: index ``i`` drawn with weight ``1/(i+1)^skew``.

    Index 0 is the hottest key.  ``skew`` around 1.0--1.2 matches measured
    web/cache traces; larger values concentrate traffic further.
    """

    def __init__(self, skew: float = 1.1) -> None:
        if skew <= 0:
            raise WorkloadError(f"Zipf skew must be > 0, got {skew}")
        self.skew = skew

    def start(self, universe: int) -> Sampler:
        _check_universe(universe)
        return _ZipfSampler(universe, self.skew)

    def spec(self) -> Dict[str, object]:
        return {"distribution": "zipf", "skew": self.skew}


class _HotspotSampler(Sampler):
    __slots__ = ("_n", "_hot_n", "_hot_weight")

    def __init__(self, n: int, hot_n: int, hot_weight: float) -> None:
        self._n = n
        self._hot_n = hot_n
        self._hot_weight = hot_weight

    def sample(self, rng: random.Random) -> int:
        if rng.random() < self._hot_weight or self._hot_n == self._n:
            return rng.randrange(self._hot_n)
        return rng.randrange(self._hot_n, self._n)


class HotspotKeys(KeyDistribution):
    """A fixed working set: ``hot_weight`` of probes land on the first
    ``hot_fraction`` of the universe, the rest spread over the cold tail."""

    def __init__(self, hot_fraction: float = 0.1, hot_weight: float = 0.9) -> None:
        if not 0 < hot_fraction <= 1:
            raise WorkloadError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
        if not 0 <= hot_weight <= 1:
            raise WorkloadError(f"hot_weight must be in [0, 1], got {hot_weight}")
        self.hot_fraction = hot_fraction
        self.hot_weight = hot_weight

    def start(self, universe: int) -> Sampler:
        _check_universe(universe)
        hot_n = max(1, int(universe * self.hot_fraction))
        return _HotspotSampler(universe, hot_n, self.hot_weight)

    def spec(self) -> Dict[str, object]:
        return {
            "distribution": "hotspot",
            "hot_fraction": self.hot_fraction,
            "hot_weight": self.hot_weight,
        }


class _DriftSampler(Sampler):
    __slots__ = ("_n", "_width", "_period", "_start", "_count")

    def __init__(self, n: int, width: int, period: int) -> None:
        self._n = n
        self._width = width
        self._period = period
        self._start = 0
        self._count = 0

    def sample(self, rng: random.Random) -> int:
        if self._count >= self._period:
            self._count = 0
            self._start = (self._start + self._width) % self._n
        self._count += 1
        return (self._start + rng.randrange(self._width)) % self._n


class DriftKeys(KeyDistribution):
    """A sliding working set: probes hit a contiguous window covering
    ``window`` of the universe, and every ``period`` samples the window
    advances by its own width (wrapping), so the hot set changes over time."""

    def __init__(self, window: float = 0.1, period: int = 1000) -> None:
        if not 0 < window <= 1:
            raise WorkloadError(f"drift window must be in (0, 1], got {window}")
        if period < 1:
            raise WorkloadError(f"drift period must be >= 1, got {period}")
        self.window = window
        self.period = period

    def start(self, universe: int) -> Sampler:
        _check_universe(universe)
        width = max(1, int(universe * self.window))
        return _DriftSampler(universe, width, self.period)

    def spec(self) -> Dict[str, object]:
        return {"distribution": "drift", "window": self.window, "period": self.period}
