"""EX3 -- Example 3: reachability (GAP) in three regimes.

Paper claims: GAP is NL-complete, hence in NC -- answerable in parallel
polylog time even without preprocessing; but precomputing the closure
answers every query in O(1).  Series: per-query (work, depth) of
per-query BFS vs NC matrix squaring vs closure lookup.
"""

from conftest import bench_size, bench_sizes, format_table

from repro.core import CostTracker
from repro.queries import closure_scheme, nc_squaring_scheme, reachability_class

SIZES = bench_sizes(5, 10)
SEED = 20130826


def test_ex3_shape_three_regimes(benchmark, experiment_report):
    query_class = reachability_class()
    closure = closure_scheme()
    squaring = nc_squaring_scheme()

    def run():
        rows = []
        for size in SIZES:
            data, queries = query_class.sample_workload(size, SEED, 6)
            closure_prep = CostTracker()
            closure_index = closure.preprocess(data, closure_prep)
            matrix = squaring.preprocess(data, CostTracker())
            bfs_t, nc_t, lookup_t = CostTracker(), CostTracker(), CostTracker()
            for query in queries:
                query_class.evaluate(data, query, bfs_t)
                squaring.answer(matrix, query, nc_t)
                closure.answer(closure_index, query, lookup_t)
            q = len(queries)
            rows.append(
                (
                    size,
                    bfs_t.work // q,
                    bfs_t.depth // q,
                    nc_t.work // q,
                    nc_t.depth // q,
                    lookup_t.work // q,
                    closure_prep.work,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "EX3 (Example 3): reachability -- BFS vs NC squaring vs closure lookup "
        "(work/depth per query)",
        format_table(
            [
                "n",
                "BFS work",
                "BFS depth",
                "NC work",
                "NC depth",
                "lookup work",
                "closure prep",
            ],
            rows,
        ),
    )
    # The paper's three-way contrast:
    # (1) BFS depth grows polynomially;
    assert rows[-1][2] > 8 * rows[0][2]
    # (2) NC squaring depth stays polylog (slow growth) despite huge work;
    assert rows[-1][4] < 4 * rows[0][4]
    assert rows[-1][3] > 1000 * rows[-1][1]
    # (3) the closure lookup is O(1) after PTIME preprocessing.
    assert all(row[5] == 1 for row in rows)


def test_ex3_wallclock_closure_lookup(benchmark):
    query_class = reachability_class()
    scheme = closure_scheme()
    data, queries = query_class.sample_workload(bench_size(9), SEED, 64)
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])


def test_ex3_wallclock_bfs(benchmark):
    query_class = reachability_class()
    data, queries = query_class.sample_workload(bench_size(9), SEED, 8)
    benchmark(lambda: [query_class.evaluate(data, q, CostTracker()) for q in queries])


def test_ex3_wallclock_closure_build(benchmark):
    query_class = reachability_class()
    scheme = closure_scheme()
    data, _ = query_class.sample_workload(bench_size(9), SEED, 1)
    benchmark(lambda: scheme.preprocess(data, CostTracker()))
