"""C12 -- mutable datasets: delta-apply vs shard rebuild vs monolithic rebuild
(ISSUE 3).

Measures the point-update latency of the three write paths a
:class:`~repro.service.mutable.DatasetHandle` can take, end to end through
the serving stack (latch, structure maintenance, version bump):

* **delta-apply** -- the scheme's ``apply_delta`` hook folds the change into
  the live structure in O(|CHANGED| * polylog): no re-fingerprint, no
  re-partition, no rebuild;
* **touched-shard rebuild** -- the PR 2 fallback for sharded kinds: the
  post-batch content is re-fingerprinted and re-planned, content-addressed
  artifacts keep every untouched shard warm, and only the one touched shard
  rebuilds;
* **monolithic rebuild** -- the no-hook fallback: re-fingerprint and rebuild
  the whole structure.

The headline assertion is the ISSUE 3 acceptance bar: at |D| = 2^13 a
delta-applied point update is >= 10x faster (p50) than the touched-shard
rebuild path (>= 2x at smoke sizes, where fixed per-batch overheads dominate
the shrunken O(|D|) terms).  Every update is verified against the expected
membership answer.
"""

from __future__ import annotations

import statistics
import time

from conftest import bench_size, format_table

from repro.incremental.changes import ChangeKind, TupleChange
from repro.queries import membership_class, sorted_run_scheme
from repro.service.engine import QueryEngine

SEED = 20130826
SHARDS = 8
UPDATES = 21


def _engine(shards: int, delta: bool) -> QueryEngine:
    engine = QueryEngine(max_workers=4)
    scheme = sorted_run_scheme()
    if not delta:
        scheme.apply_delta = None  # force the monolithic-rebuild fallback
    engine.register("membership", membership_class(), scheme, shards=shards)
    return engine


def test_c12_point_update_latency(benchmark, experiment_report, bench_json):
    size = bench_size(13)
    data, _ = membership_class().sample_workload(size, SEED, 4)

    def measure(shards: int, delta: bool):
        with _engine(shards, delta) as engine:
            handle = engine.open_dataset("membership", data)
            handle.query(data[0])  # warm the resolve path
            latencies = []
            for step in range(UPDATES):
                value = 10**7 + step  # outside the generated domain
                started = time.perf_counter()
                handle.apply_changes([TupleChange(ChangeKind.INSERT, (value,))])
                latencies.append(time.perf_counter() - started)
                assert handle.query(value) is True
                assert handle.query(value + UPDATES) is False
            stats = engine.stats().per_kind["membership"]
            return statistics.median(latencies), stats.delta_batches, stats.fallback_rebuilds

    def run():
        return {
            "delta": measure(1, True),
            "shard": measure(SHARDS, True),
            "mono": measure(1, False),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    delta_p50, delta_batches, delta_fallbacks = results["delta"]
    shard_p50, _, shard_fallbacks = results["shard"]
    mono_p50, _, mono_fallbacks = results["mono"]

    us = lambda seconds: f"{seconds * 1e6:.1f}"
    experiment_report(
        f"C12 (mutations): point-update p50, |D| = {size}, K={SHARDS} for the sharded path",
        format_table(
            ["write path", "p50 (us)", "vs delta-apply"],
            [
                ("delta-apply (apply_delta hook)", us(delta_p50), "1.00x"),
                (
                    f"touched-shard rebuild (K={SHARDS})",
                    us(shard_p50),
                    f"{shard_p50 / delta_p50:.1f}x",
                ),
                (
                    "monolithic rebuild (no hook)",
                    us(mono_p50),
                    f"{mono_p50 / delta_p50:.1f}x",
                ),
            ],
        ),
    )
    bench_json(
        "mutations",
        {
            "dataset_size": size,
            "shards": SHARDS,
            "updates": UPDATES,
            "point_update_p50_us": {
                "delta_apply": delta_p50 * 1e6,
                "touched_shard_rebuild": shard_p50 * 1e6,
                "monolithic_rebuild": mono_p50 * 1e6,
            },
            "delta_over_shard_speedup": shard_p50 / delta_p50,
            "delta_over_mono_speedup": mono_p50 / delta_p50,
        },
    )

    # Path sanity: every update took the intended route.
    assert (delta_batches, delta_fallbacks) == (UPDATES, 0)
    assert shard_fallbacks == UPDATES
    assert mono_fallbacks == UPDATES
    # The ISSUE 3 acceptance bar: >= 10x at the full 2^13 size; smoke sizes
    # shrink the O(|D|) rebuild terms, so the floor relaxes to 2x there.
    smoke = size != 2**13
    floor = 2.0 if smoke else 10.0
    assert shard_p50 >= floor * delta_p50, (
        f"delta-apply p50 {delta_p50 * 1e6:.1f}us must be >= {floor}x faster than "
        f"touched-shard rebuild p50 {shard_p50 * 1e6:.1f}us"
    )
    assert mono_p50 > delta_p50
