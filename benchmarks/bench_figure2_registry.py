"""FIG2 -- Figure 2: the class landscape, verified on the registry.

The reproduced artifact is the containment table over every implemented
problem/class, with measured certificates as evidence, plus the check that
no registered claim violates NC <= PiT0Q <= P = PiTP = PiTQ (Corollary 6)
or Corollary 7.
"""

from conftest import bench_sizes

from repro.catalog import build_registry
from repro.core import Membership, certify, figure2_report
from repro.queries import membership_class, sorted_run_scheme


def test_fig2_report(benchmark, experiment_report):
    registry = benchmark.pedantic(
        lambda: build_registry(certify_all=True, queries_per_size=8),
        rounds=1,
        iterations=1,
    )
    report = figure2_report(registry)
    experiment_report("FIG2 (Figure 2): executable containment table", report.splitlines())
    assert registry.check_containments() == []
    # The landscape the paper draws: PiT0Q entries exist, P-but-not-PiT0Q
    # entries exist (the separation), and an NP-complete outsider exists.
    pit0q = {e.name for e in registry.with_claim(Membership.PI_T0Q)}
    p_only = {
        e.name
        for e in registry.entries()
        if Membership.P in e.claims and Membership.PI_T0Q not in e.claims
    }
    npc = {e.name for e in registry.with_claim(Membership.NP_COMPLETE)}
    assert len(pit0q) >= 8
    assert p_only >= {"bds-order-trivial", "cvp-trivial"}
    assert npc == {"vertex-cover", "3SAT"}


def test_fig2_wallclock_one_certification(benchmark):
    """Wall-clock cost of certifying one (class, scheme) pair."""
    sizes = bench_sizes(6, 10)
    benchmark(
        lambda: certify(
            membership_class(), sorted_run_scheme(), sizes=sizes, queries_per_size=6
        )
    )
