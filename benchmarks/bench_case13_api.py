"""C13 -- the serving API economics: named-dataset vs payload dispatch (ISSUE 4).

The dataset-first redesign claims two things about the request path:

1. **No regression** -- dispatching through a named
   :class:`~repro.service.dataset.Dataset` session adds at most ~10% p50
   latency over the legacy payload-per-request form on a warm engine (in
   practice it is at parity or faster: the session's artifact key is
   precomputed, so the warm probe skips the fingerprint-memo lock/lookup);
2. **No cliff** -- the payload path silently degrades to an O(|D|) re-hash
   per request once more live datasets exist than the identity memo holds;
   named sessions fingerprint once at attach and stay at **zero re-hashes**
   regardless of how many datasets are attached (verified through the new
   ``fingerprint_rehashes`` counters).

Feeds the ``api`` section of the machine-readable ``BENCH_engine.json``.
"""

from __future__ import annotations

import pytest

import statistics
import time

from conftest import bench_size, format_table

from repro.catalog import build_query_engine
from repro.service import QueryRequest

# The raw-payload QueryRequest form used throughout this module is
# deprecated (named sessions are the supported surface); its behavior
# is pinned here on purpose, so silence the migration warning.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

SEED = 20130826
KIND = "list-membership"
WARMUP = 64
SAMPLES = 600
#: More live datasets than the deliberately small memo below: the payload
#: path re-hashes on (nearly) every request, the named path never does.
CLIFF_DATASETS = 8
CLIFF_MEMO = 4
CLIFF_REQUESTS_PER_DATASET = 8


def _p50_per_request(run_one, queries, samples):
    latencies = []
    for position in range(samples):
        query = queries[position % len(queries)]
        started = time.perf_counter()
        run_one(query)
        latencies.append(time.perf_counter() - started)
    return statistics.median(latencies)


def test_c13_named_dispatch_overhead_and_memo_cliff(
    benchmark, experiment_report, bench_json
):
    size = bench_size(16)

    def run():
        engine = build_query_engine()
        query_class, _ = engine.registration(KIND)
        data, queries = query_class.sample_workload(size, SEED, 64)
        ds = engine.attach("bench", data).warm([KIND])

        payload_request = lambda q: engine.execute(QueryRequest(KIND, data, q))
        named_request = lambda q: engine.execute(
            QueryRequest(KIND, dataset="bench", query=q)
        )
        session_request = lambda q: ds.query(KIND, q)

        for query in queries[:WARMUP]:  # steady state: every path warm
            assert payload_request(query) == named_request(query) == session_request(query)

        engine.reset_stats()
        payload_p50 = _p50_per_request(payload_request, queries, SAMPLES)
        after_payload = engine.stats()
        engine.reset_stats()
        named_p50 = _p50_per_request(named_request, queries, SAMPLES)
        session_p50 = _p50_per_request(session_request, queries, SAMPLES)
        after_named = engine.stats()
        engine.close()

        # The memo cliff, reproduced deliberately: more live payloads than
        # memo entries versus the same workload through named sessions.
        cliff = build_query_engine(fingerprint_memo_size=CLIFF_MEMO)
        datasets = [
            query_class.sample_workload(max(size // 16, 64), SEED + i, 4)
            for i in range(CLIFF_DATASETS)
        ]
        for i, (dataset, dataset_queries) in enumerate(datasets):
            cliff.attach(f"d{i}", dataset, kinds=[KIND])
        for _ in range(CLIFF_REQUESTS_PER_DATASET):
            for i, (dataset, dataset_queries) in enumerate(datasets):
                cliff.execute(QueryRequest(KIND, dataset, dataset_queries[0]))
                cliff.execute(
                    QueryRequest(KIND, dataset=f"d{i}", query=dataset_queries[0])
                )
        cliff_stats = cliff.stats()
        cliff.close()
        return (
            payload_p50,
            named_p50,
            session_p50,
            after_payload,
            after_named,
            cliff_stats,
        )

    (
        payload_p50,
        named_p50,
        session_p50,
        after_payload,
        after_named,
        cliff_stats,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    experiment_report(
        f"C13 (service API): named-dataset vs payload dispatch, |D| = {size}",
        format_table(
            ["path", "p50 latency (us)", "re-hashes", "notes"],
            [
                (
                    "payload request",
                    f"{payload_p50 * 1e6:.1f}",
                    after_payload.fingerprint_rehashes,
                    "memo lock + lookup per request (deprecated)",
                ),
                (
                    "named request",
                    f"{named_p50 * 1e6:.1f}",
                    after_named.fingerprint_rehashes,
                    "identity precomputed at attach",
                ),
                (
                    "session.query",
                    f"{session_p50 * 1e6:.1f}",
                    after_named.fingerprint_rehashes,
                    "no request-record overhead at all",
                ),
                (
                    "payload past memo cliff",
                    "-",
                    cliff_stats.per_kind[KIND].fingerprint_rehashes,
                    f"{CLIFF_DATASETS} datasets through a "
                    f"{CLIFF_MEMO}-entry memo: O(|D|) per request",
                ),
            ],
        ),
    )
    bench_json(
        "api",
        {
            "dataset_size": size,
            "kind": KIND,
            "samples": SAMPLES,
            "payload_p50_us": payload_p50 * 1e6,
            "named_p50_us": named_p50 * 1e6,
            "session_p50_us": session_p50 * 1e6,
            "named_overhead_ratio": named_p50 / payload_p50,
            "steady_state_rehashes_named": after_named.fingerprint_rehashes,
            "steady_state_rehashes_payload": after_payload.fingerprint_rehashes,
            "cliff_datasets": CLIFF_DATASETS,
            "cliff_memo_size": CLIFF_MEMO,
            "cliff_payload_rehashes": cliff_stats.per_kind[KIND].fingerprint_rehashes,
            "cliff_evictions": cliff_stats.fingerprint_evictions,
        },
    )

    # Acceptance (ISSUE 4): named dispatch within 10% of the payload path at
    # steady state, with zero fingerprint re-hashes on the named path.
    assert named_p50 <= payload_p50 * 1.10, (named_p50, payload_p50)
    assert after_named.fingerprint_rehashes == 0
    assert after_payload.fingerprint_rehashes == 0  # one live payload: memoized
    # The cliff the knob controls: the payload path re-hashes roughly once
    # per request past the memo capacity, the named path never.
    assert cliff_stats.per_kind[KIND].fingerprint_rehashes >= (
        CLIFF_DATASETS - CLIFF_MEMO
    ) * CLIFF_REQUESTS_PER_DATASET
    assert cliff_stats.fingerprint_evictions > 0
