"""C11 -- sharded Pi-structures: partitioned builds and scatter-gather (ISSUE 2).

Measures the sharded serving path of :mod:`repro.service.sharding` against
the monolithic path of ISSUE 1, through the full engine stack (fingerprint,
plan, build, persist, serve):

* **cold, time to first answer** -- a routed query against a sharded kind
  only builds the shards it scatters to (an RMQ window touches overlapping
  blocks; a membership probe touches one hash bucket), so first-answer
  latency drops below the monolithic full build as |D| grows.
* **shard build after a change batch** -- the tentpole scenario: after a
  point change, content-addressed shard artifacts make every untouched
  shard a cache hit, so the "rebuild" is a (parallel) build of the touched
  shards only.  This beats the monolithic rebuild wall-clock at every size,
  including the smoke cap.
* **warm scatter-gather serve** -- per-query latency once everything is
  hot: routed kinds probe one small shard; broadcast kinds pay K partials
  plus the merge.

Pure-Python preprocessing contends on the GIL, so the *cold full* sharded
build (K structures + K artifact writes) is reported but expected to trail
the monolithic build at smoke sizes; the wins come from building *less*
(routing, shard-level invalidation) and from overlapping the GIL-releasing
I/O.  Every scenario asserts answer equivalence with the naive semantics.
"""

from __future__ import annotations

import pytest

import statistics
import time

from conftest import bench_size, format_table

from repro.catalog import build_query_engine, build_registry
from repro.service import ArtifactStore, QueryRequest

# The raw-payload QueryRequest form used throughout this module is
# deprecated (named sessions are the supported surface); its behavior
# is pinned here on purpose, so silence the migration warning.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

SEED = 20130826
SHARDS = 8
REBUILD_KIND = "minimum-range-query"  # range policy: a point change = 1 block
ROUTED_KIND = "list-membership"  # hash policy: a probe routes to 1 bucket
WARM_QUERIES = 32


def _engine(root, shards):
    return build_query_engine(store=ArtifactStore(root), shards=shards, max_workers=4)


def _min_over(repetitions, run):
    return min(run() for _ in range(repetitions))


def test_c11_sharded_vs_monolithic(benchmark, experiment_report, bench_json, tmp_path):
    size = bench_size(13)
    repetitions = 7
    counter = iter(range(10_000))
    classes = {
        entry.name: entry.query_class
        for entry in build_registry().entries()
        if entry.name in (REBUILD_KIND, ROUTED_KIND)
    }
    workloads = {}  # deterministic for a fixed seed: generate once per kind

    def fresh_root():
        return tmp_path / f"store-{next(counter)}"

    def workload(kind):
        if kind not in workloads:
            workloads[kind] = classes[kind].sample_workload(size, SEED, WARM_QUERIES)
        return workloads[kind]

    # -- scenario 1: cold, time to first answer ------------------------------
    def cold_first_answer(kind, shards):
        def run():
            data, queries = workload(kind)
            with _engine(fresh_root(), shards) as engine:
                started = time.perf_counter()
                engine.execute(QueryRequest(kind, data, queries[0]))
                return time.perf_counter() - started

        return _min_over(repetitions, run)

    # -- scenario 2: full build (warm every shard), then a point-change rebuild
    def build_then_rebuild(shards):
        builds, rebuilds = [], []
        rebuilt_shards = 0
        for _ in range(repetitions):
            data, _queries = workload(REBUILD_KIND)
            with _engine(fresh_root(), shards) as engine:
                started = time.perf_counter()
                engine.warm(REBUILD_KIND, data)
                builds.append(time.perf_counter() - started)

                changed = list(data)
                changed[len(changed) // 2] -= 1_000
                changed = tuple(changed)
                before = engine.stats().per_kind[REBUILD_KIND]
                started = time.perf_counter()
                engine.warm(REBUILD_KIND, changed)
                rebuilds.append(time.perf_counter() - started)
                after = engine.stats().per_kind[REBUILD_KIND]
                rebuilt_shards = (after.shard_builds - before.shard_builds) or (
                    after.builds - before.builds
                )
        return min(builds), min(rebuilds), rebuilt_shards

    # -- scenario 3: warm serve latency (everything hot) ---------------------
    def warm_serve(kind, shards):
        data, queries = workload(kind)
        with _engine(fresh_root(), shards) as engine:
            query_class, _ = engine.registration(kind)
            engine.warm(kind, data)
            expected = [query_class.pair_in_language(data, q) for q in queries]
            latencies, answers = [], []
            for query in queries:
                started = time.perf_counter()
                answers.append(engine.execute(QueryRequest(kind, data, query)))
                latencies.append(time.perf_counter() - started)
            assert answers == expected, f"{kind}: sharded != naive"
        return statistics.median(latencies)

    def run():
        return {
            "cold_first_mono": cold_first_answer(ROUTED_KIND, 1),
            "cold_first_shard": cold_first_answer(ROUTED_KIND, SHARDS),
            "build_rebuild_mono": build_then_rebuild(1),
            "build_rebuild_shard": build_then_rebuild(SHARDS),
            "warm_routed_mono": warm_serve(ROUTED_KIND, 1),
            "warm_routed_shard": warm_serve(ROUTED_KIND, SHARDS),
            "warm_scatter_mono": warm_serve(REBUILD_KIND, 1),
            "warm_scatter_shard": warm_serve(REBUILD_KIND, SHARDS),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    mono_build, mono_rebuild, mono_rebuilt = results["build_rebuild_mono"]
    shard_build, shard_rebuild, shard_rebuilt = results["build_rebuild_shard"]
    cold_mono = results["cold_first_mono"]
    cold_shard = results["cold_first_shard"]

    us = lambda seconds: f"{seconds * 1e6:.0f}"
    ratio = lambda shard, mono: f"{shard / mono:.2f}x"
    experiment_report(
        f"C11 (sharding): K={SHARDS} shards vs monolithic, |D| = {size}",
        format_table(
            ["scenario", "monolithic (us)", f"sharded K={SHARDS} (us)", "sharded/mono"],
            [
                (
                    f"cold first answer [{ROUTED_KIND}]",
                    us(cold_mono),
                    us(cold_shard),
                    ratio(cold_shard, cold_mono),
                ),
                (
                    f"cold full build [{REBUILD_KIND}]",
                    us(mono_build),
                    us(shard_build),
                    ratio(shard_build, mono_build),
                ),
                (
                    f"shard build after point change [{REBUILD_KIND}]",
                    us(mono_rebuild),
                    us(shard_rebuild),
                    ratio(shard_rebuild, mono_rebuild),
                ),
                (
                    f"warm serve p50, routed [{ROUTED_KIND}]",
                    us(results["warm_routed_mono"]),
                    us(results["warm_routed_shard"]),
                    ratio(results["warm_routed_shard"], results["warm_routed_mono"]),
                ),
                (
                    f"warm serve p50, scatter-gather [{REBUILD_KIND}]",
                    us(results["warm_scatter_mono"]),
                    us(results["warm_scatter_shard"]),
                    ratio(results["warm_scatter_shard"], results["warm_scatter_mono"]),
                ),
            ],
        ),
    )
    bench_json(
        "sharding",
        {
            "dataset_size": size,
            "shards": SHARDS,
            "cold_first_answer_mono_ms": cold_mono * 1e3,
            "cold_first_answer_sharded_ms": cold_shard * 1e3,
            "cold_full_build_mono_ms": mono_build * 1e3,
            "cold_full_build_sharded_ms": shard_build * 1e3,
            "rebuild_after_change_mono_ms": mono_rebuild * 1e3,
            "rebuild_after_change_sharded_ms": shard_rebuild * 1e3,
            "rebuild_shards_touched": shard_rebuilt,
            "warm_routed_p50_us": {
                "mono": results["warm_routed_mono"] * 1e6,
                "sharded": results["warm_routed_shard"] * 1e6,
            },
            "warm_scatter_p50_us": {
                "mono": results["warm_scatter_mono"] * 1e6,
                "sharded": results["warm_scatter_shard"] * 1e6,
            },
        },
    )

    # The headline: after a point change, the sharded path builds only the
    # touched shard (verified by the counter) and its wall-clock beats the
    # monolithic rebuild -- at the largest smoke size and above.
    assert shard_rebuilt == 1, "a point change must rebuild exactly one shard"
    assert mono_rebuilt == 1  # the monolithic path rebuilds its single structure
    assert shard_rebuild < mono_rebuild, (
        f"sharded rebuild {shard_rebuild * 1e3:.2f}ms should beat monolithic "
        f"{mono_rebuild * 1e3:.2f}ms"
    )
    # Warm sharded serving stays in the same latency class as monolithic
    # (routed probes touch one small shard; scatter pays K partials).
    assert results["warm_routed_shard"] < results["warm_routed_mono"] * 4
    assert results["warm_scatter_shard"] < results["warm_scatter_mono"] * 20
