"""Case 15: workload harness -- tail latency under skew and read/write mixes.

The paper's serving economics are stated in per-query asymptotics; this case
measures what a *served mix* actually looks like at the tail.  Three
experiments over 2^16-element sessions, all recorded to
``BENCH_workloads.json`` (merge-with-provenance, like ``BENCH_engine.json``):

* ``zipf_read_heavy`` -- a Zipf(1.1) read-only mix over list-membership +
  minimum-range-query on an immutable session: the first tail-latency
  baseline (p50/p95/p99/p999, achieved qps).
* ``read_write_90_10`` -- the same membership traffic with 10% change
  batches through ``Dataset.apply_changes`` on a mutable session, plus a
  pure-read control on an identical mutable session, so the read-tail cost
  of concurrent writers (version publication + the delta path) is a
  measured delta, not a guess.  This section is also a *gate*: readers are
  lock-free against the published version record, so the mixed read p999
  must stay within ``P999_RATIO_LIMIT`` of the pure-read control (an
  absolute-gap guard absorbs smoke-size noise).  Under the old
  ``SnapshotLatch`` read path the ratio sat around 3x; a regression back
  to reader/writer blocking fails here and in CI's shape check.
* ``open_loop_curve`` -- offered-vs-achieved qps phases; latency measured
  from scheduled arrival, so the saturated phase shows queueing honestly.

The ``bottleneck`` section compares the two next-bottleneck candidates from
ISSUE 6: per-request batch-grouping overhead (``query_batch`` vs the serve-
plan ``query`` loop on identical operations) against the mutable read path's
writer cost (read p99 with writers vs without).  Whichever costs more at the
p99 is named in ``next_bottleneck``.
"""

from __future__ import annotations

import pytest

from conftest import bench_size, format_table

from repro.catalog import build_query_engine
from repro.workloads import WorkloadSpec, ZipfKeys, run_closed_loop, run_open_loop

SEED = 20130826
JSON_PATH = "BENCH_workloads.json"

#: The acceptance-criteria dataset size (2^16 full-size; capped in smoke).
SIZE = bench_size(16)
#: Closed-loop operation budget, scaled with the dataset so smoke runs in
#: seconds while the full-size tail has >= 16k samples behind p999.
OPERATIONS = max(400, SIZE // 4)
THREADS = 4
WARMUP = 32

#: Gate on the lock-free read tail: with 10% writers in the mix, the read
#: p999 may be at most this multiple of the pure-read control's p999.  The
#: latch-guarded path sat around 3x; the versioned-read path holds well
#: under 2x at the 2^16 acceptance size.
P999_RATIO_LIMIT = 2.0
#: Absolute-gap noise guard (microseconds): at smoke sizes both p999s are a
#: handful of microseconds and a scheduler hiccup can double one of them, so
#: the ratio alone would flake.  A real latch regression costs milliseconds
#: (~16,000 us pre-fix), so requiring the gap to also exceed this floor
#: keeps the gate sensitive while ignoring sub-200us jitter.
P999_GAP_FLOOR_US = 200.0


def _attach(engine, name, *, kinds, mutable=False):
    data = tuple(range(SIZE))
    return engine.attach(name, data, kinds=kinds, mutable=mutable)


def _assert_tail_shape(report):
    """The CI shape check: percentiles recorded, ordered, and finite."""
    latency = report.read_latency
    assert latency.count > 0
    assert 0 <= latency.p50 <= latency.p95 <= latency.p99 <= latency.p999 <= latency.max
    ratio = latency.p999 / latency.p50 if latency.p50 > 0 else float("inf")
    assert ratio == ratio and ratio != float("inf")  # finite, not NaN
    assert report.achieved_qps > 0
    return ratio


def _tail_row(label, report):
    latency = report.read_latency.to_dict()
    return [
        label,
        f"{report.achieved_qps:,.0f}",
        f"{latency['p50_us']:.1f}",
        f"{latency['p95_us']:.1f}",
        f"{latency['p99_us']:.1f}",
        f"{latency['p999_us']:.1f}",
        sum(report.errors.values()),
    ]


def test_zipf_read_heavy_tail_baseline(experiment_report, bench_json):
    """Zipf(1.1) read-only mix: the repo's first tail-latency baseline."""
    with build_query_engine() as engine:
        ds = _attach(
            engine, "zipf", kinds=["list-membership", "minimum-range-query"]
        )
        spec = WorkloadSpec(
            mix={"list-membership": 3.0, "minimum-range-query": 1.0},
            distribution=ZipfKeys(1.1),
            hit_fraction=0.5,
            seed=SEED,
        )
        report = run_closed_loop(
            ds, spec, threads=THREADS, operations=OPERATIONS, warmup=WARMUP
        )
    ratio = _assert_tail_shape(report)
    assert report.reads == OPERATIONS and report.writes == 0
    assert report.errors == {}
    bench_json(
        "zipf_read_heavy",
        dict(report.to_dict(), size=SIZE, p999_over_p50=ratio),
        path=JSON_PATH,
    )
    experiment_report(
        f"case 15a: Zipf(1.1) read-heavy mix, n={SIZE:,}, "
        f"{OPERATIONS:,} ops x {THREADS} threads",
        format_table(
            ["mix", "qps", "p50us", "p95us", "p99us", "p999us", "errors"],
            [_tail_row("zipf 3:1 member:rmq", report)],
        ),
    )


def test_read_write_mix_and_latch_cost(experiment_report, bench_json):
    """90/10 read/write through apply_changes, with a pure-read control on an
    identical mutable session -- the writers' read-tail cost, measured and
    gated (lock-free readers must keep p999 within 2x of the control)."""
    with build_query_engine() as engine:
        control_ds = _attach(engine, "control", kinds=["list-membership"], mutable=True)
        control = run_closed_loop(
            control_ds,
            WorkloadSpec(mix={"list-membership": 1.0}, seed=SEED),
            threads=THREADS,
            operations=OPERATIONS,
            warmup=WARMUP,
        )
        mixed_ds = _attach(engine, "mixed", kinds=["list-membership"], mutable=True)
        mixed = run_closed_loop(
            mixed_ds,
            WorkloadSpec(
                mix={"list-membership": 1.0}, write_ratio=0.1, seed=SEED
            ),
            threads=THREADS,
            operations=OPERATIONS,
            warmup=WARMUP,
        )
        version = mixed_ds.version
    for report in (control, mixed):
        _assert_tail_shape(report)
        assert report.errors == {}
    assert mixed.writes > 0 and version > 0
    # Every write batch landed in the session's counter window.
    assert mixed.stats_window["version"] == version
    writer_p99_cost = mixed.read_latency.p99 - control.read_latency.p99
    p999_ratio = mixed.read_latency.p999 / max(control.read_latency.p999, 1e-12)
    p999_gap_us = (mixed.read_latency.p999 - control.read_latency.p999) * 1e6
    bench_json(
        "read_write_90_10",
        dict(
            mixed.to_dict(),
            size=SIZE,
            p999_over_p50=mixed.read_latency.p999 / max(mixed.read_latency.p50, 1e-12),
            control_read_latency=control.read_latency.to_dict(),
            writer_read_p99_cost_us=writer_p99_cost * 1e6,
            read_p999_ratio_vs_control=p999_ratio,
            read_p999_gap_us=p999_gap_us,
            read_p999_ratio_limit=P999_RATIO_LIMIT,
            read_p999_gap_floor_us=P999_GAP_FLOOR_US,
        ),
        path=JSON_PATH,
    )
    # The gate: readers are lock-free, so concurrent writers may not multiply
    # the read tail.  Fail only when the ratio is bad AND the gap is too big
    # to be scheduler noise -- a genuine latch regression trips both by a
    # wide margin.
    assert p999_ratio <= P999_RATIO_LIMIT or p999_gap_us <= P999_GAP_FLOOR_US, (
        f"90/10 read p999 is {p999_ratio:.2f}x the pure-read control "
        f"(gap {p999_gap_us:+.0f} us); the mutable read path must stay "
        f"lock-free (limit {P999_RATIO_LIMIT}x beyond {P999_GAP_FLOOR_US} us)"
    )
    experiment_report(
        f"case 15b: 90/10 read/write vs pure-read control (mutable, n={SIZE:,})",
        format_table(
            ["mix", "qps", "p50us", "p95us", "p99us", "p999us", "errors"],
            [
                _tail_row("reads only (control)", control),
                _tail_row("90/10 via apply_changes", mixed),
            ],
        )
        + [
            f"writer read-p99 cost: {writer_p99_cost * 1e6:+.1f} us",
            f"read p999 vs control: {p999_ratio:.2f}x "
            f"(gate: <= {P999_RATIO_LIMIT}x beyond {P999_GAP_FLOOR_US:.0f} us)",
        ],
    )


def test_degraded_mode_tail(experiment_report, bench_json):
    """Tail latency with a fault plan armed: a sharded membership session
    under a low-probability dead-shard storm (ISSUE 7).  Union kinds answer
    partial instead of erroring, so the run completes with zero errors, a
    nonzero ``degraded`` count, and a p99 comparable to the healthy control
    -- degraded mode is a latency mode, not an outage."""
    from repro.service.faults import scenario

    spec = WorkloadSpec(
        mix={"list-membership": 1.0},
        distribution=ZipfKeys(1.1),
        hit_fraction=0.5,
        seed=SEED,
    )
    with build_query_engine(shards=4) as engine:
        control_ds = _attach(engine, "healthy", kinds=["list-membership"])
        control_ds.warm()
        control = run_closed_loop(
            control_ds, spec, threads=THREADS, operations=OPERATIONS, warmup=WARMUP
        )
        degraded_ds = _attach(engine, "degraded", kinds=["list-membership"])
        degraded_ds.warm()
        plan = scenario(
            "dead-shard",
            kind="list-membership",
            times=None,
            probability=0.02,
            seed=SEED,
        )
        degraded = run_closed_loop(
            degraded_ds,
            spec,
            threads=THREADS,
            operations=OPERATIONS,
            warmup=WARMUP,
            fault_plan=plan,
        )
    for report in (control, degraded):
        _assert_tail_shape(report)
        assert report.errors == {}  # union kinds degrade, they never error
    assert control.degraded == 0
    assert degraded.degraded > 0  # the storm actually bit, and loudly
    # Warmup probes fire faults too but are not recorded, so fired >= degraded.
    assert plan.fired_count("shard.partial") >= degraded.degraded
    health = degraded.stats_window["kinds"]["list-membership"]
    assert health["degraded_answers"] >= degraded.degraded
    bench_json(
        "degraded_mode",
        dict(
            degraded.to_dict(),
            size=SIZE,
            p999_over_p50=degraded.read_latency.p999
            / max(degraded.read_latency.p50, 1e-12),
            control_read_latency=control.read_latency.to_dict(),
            degraded_read_p99_cost_us=(
                degraded.read_latency.p99 - control.read_latency.p99
            )
            * 1e6,
            fault_plan={"scenario": "dead-shard", "probability": 0.02},
        ),
        path=JSON_PATH,
    )
    experiment_report(
        f"case 15e: degraded-mode tail under 2% dead-shard storm "
        f"(4 shards, n={SIZE:,})",
        format_table(
            ["mode", "qps", "p50us", "p95us", "p99us", "p999us", "errors"],
            [
                _tail_row("healthy (no plan)", control),
                _tail_row("2% dead-shard storm", degraded),
            ],
        )
        + [f"explicitly degraded answers: {degraded.degraded}"],
    )


def test_open_loop_offered_vs_achieved(experiment_report, bench_json):
    """Offered-load phases; the overloaded phase must show achieved < offered
    (latency from scheduled arrival -- queueing counts)."""
    with build_query_engine() as engine:
        ds = _attach(engine, "curve", kinds=["list-membership"])
        spec = WorkloadSpec(
            mix={"list-membership": 1.0}, distribution=ZipfKeys(1.1), seed=SEED
        )
        # Probe capacity first so the schedule brackets saturation on any
        # machine: one phase comfortably below, one far above.
        probe = run_closed_loop(ds, spec, threads=THREADS, operations=OPERATIONS // 4)
        capacity = probe.achieved_qps
        schedule = [(capacity * 0.2, 0.5), (capacity * 4.0, 0.5)]
        report = run_open_loop(ds, spec, schedule=schedule, concurrency=THREADS)
    _assert_tail_shape(report)
    relaxed, overloaded = report.phases
    assert overloaded["achieved_qps"] < overloaded["offered_qps"]
    bench_json(
        "open_loop_curve",
        dict(report.to_dict(), size=SIZE, probe_capacity_qps=capacity),
        path=JSON_PATH,
    )
    experiment_report(
        f"case 15c: open-loop offered vs achieved (n={SIZE:,}, "
        f"probed capacity {capacity:,.0f} qps)",
        format_table(
            ["offered qps", "achieved qps", "p99us", "p999us"],
            [
                [
                    f"{phase['offered_qps']:,.0f}",
                    f"{phase['achieved_qps']:,.0f}",
                    f"{phase['latency']['p99_us']:.1f}",
                    f"{phase['latency']['p999_us']:.1f}",
                ]
                for phase in report.phases
            ],
        ),
    )


def test_next_bottleneck_batch_grouping_vs_latch(experiment_report, bench_json):
    """Name the next bottleneck: batch-grouping overhead vs the mutable
    write path, compared at the read p99 on identical operations."""
    import time

    with build_query_engine() as engine:
        # Batch grouping: the same reads through query() (serve-plan fast
        # path) and through query_batch() (group-by-artifact machinery).
        ds = _attach(engine, "grouping", kinds=["list-membership"])
        spec = WorkloadSpec(
            mix={"list-membership": 1.0}, distribution=ZipfKeys(1.1), seed=SEED
        )
        stream = spec.bind(ds).stream(0)
        ops = [next(stream) for _ in range(OPERATIONS)]
        reads = [(op.kind, op.query) for op in ops if not op.is_write]
        ds.query("list-membership", reads[0][1])  # first-touch build
        loop_samples = []
        for kind, query in reads:
            begin = time.perf_counter()
            ds.query(kind, query)
            loop_samples.append(time.perf_counter() - begin)
        begin = time.perf_counter()
        ds.query_batch(reads)
        batch_seconds = time.perf_counter() - begin

        # Writers: pure-read vs 90/10 on mutable sessions (small, local rerun
        # so both candidates are measured in the same process state).
        control_ds = _attach(engine, "writer-control", kinds=["list-membership"], mutable=True)
        mixed_ds = _attach(engine, "writer-mixed", kinds=["list-membership"], mutable=True)
        read_spec = WorkloadSpec(mix={"list-membership": 1.0}, seed=SEED)
        mixed_spec = WorkloadSpec(mix={"list-membership": 1.0}, write_ratio=0.1, seed=SEED)
        control = run_closed_loop(
            control_ds, read_spec, threads=THREADS, operations=OPERATIONS, warmup=WARMUP
        )
        mixed = run_closed_loop(
            mixed_ds, mixed_spec, threads=THREADS, operations=OPERATIONS, warmup=WARMUP
        )

    loop_per_op = sum(loop_samples) / len(loop_samples)
    batch_per_op = batch_seconds / len(reads)
    grouping_cost = batch_per_op - loop_per_op
    writer_cost = mixed.read_latency.p99 - control.read_latency.p99
    next_bottleneck = (
        "batch-grouping" if grouping_cost > writer_cost else "mutable-writers"
    )
    bench_json(
        "bottleneck",
        {
            "size": SIZE,
            "operations": len(reads),
            "query_loop_us_per_op": loop_per_op * 1e6,
            "query_batch_us_per_op": batch_per_op * 1e6,
            "batch_grouping_cost_us_per_op": grouping_cost * 1e6,
            "writer_read_p99_cost_us": writer_cost * 1e6,
            "next_bottleneck": next_bottleneck,
        },
        path=JSON_PATH,
    )
    experiment_report(
        f"case 15d: next-bottleneck comparison (n={SIZE:,})",
        [
            f"query() loop        : {loop_per_op * 1e6:8.2f} us/op",
            f"query_batch()       : {batch_per_op * 1e6:8.2f} us/op "
            f"(grouping cost {grouping_cost * 1e6:+.2f} us/op)",
            f"writer read-p99 cost: {writer_cost * 1e6:+8.2f} us",
            f"next bottleneck     : {next_bottleneck}",
        ],
    )
