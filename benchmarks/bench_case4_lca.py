"""C4 -- Section 4(4): lowest common ancestors (L3, [5]).

Paper claim: trees and DAGs can be preprocessed (O(|G|^3) is quoted for
DAGs) so LCA queries answer in O(1).  Series: per-query work of the
recompute-per-query baseline vs the preprocessed indexes, trees and DAGs.
"""

from conftest import bench_size, bench_sizes, format_table

from repro.core import CostTracker
from repro.queries import (
    dag_bitset_scheme,
    dag_lca_class,
    euler_tour_scheme,
    tree_lca_class,
)

SIZES = bench_sizes(7, 12)
SEED = 20130826


def _shape(query_class, scheme, sizes, query_count=12):
    rows = []
    for size in sizes:
        data, queries = query_class.sample_workload(size, SEED, query_count)
        prep = CostTracker()
        preprocessed = scheme.preprocess(data, prep)
        naive_t, indexed_t = CostTracker(), CostTracker()
        for query in queries:
            query_class.evaluate(data, query, naive_t)
            scheme.answer(preprocessed, query, indexed_t)
        rows.append(
            (
                size,
                prep.work,
                naive_t.work // query_count,
                indexed_t.work // query_count,
                f"{naive_t.work / max(indexed_t.work, 1):.0f}x",
            )
        )
    return rows


def test_c4_shape_tree_lca(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: _shape(tree_lca_class(), euler_tour_scheme(), SIZES),
        rounds=1,
        iterations=1,
    )
    experiment_report(
        "C4a (Section 4(4)): tree LCA -- per-query recompute vs Euler tour + RMQ",
        format_table(["n", "prep work", "naive work/q", "indexed work/q", "gap"], rows),
    )
    assert rows[-1][2] > 10 * rows[0][2]  # naive grows with n
    assert rows[-1][3] < 3 * rows[0][3]  # indexed O(1)


def test_c4_shape_dag_lca(benchmark, experiment_report):
    rows = benchmark.pedantic(
        lambda: _shape(dag_lca_class(), dag_bitset_scheme(), SIZES),
        rounds=1,
        iterations=1,
    )
    experiment_report(
        "C4b (Section 4(4)): DAG LCA -- per-query recompute vs ancestor bitsets",
        format_table(["n", "prep work", "naive work/q", "indexed work/q", "gap"], rows),
    )
    assert rows[-1][3] < 16 * rows[0][3]  # indexed polylog-ish


def test_c4_wallclock_tree_lca_query(benchmark):
    query_class = tree_lca_class()
    scheme = euler_tour_scheme()
    data, queries = query_class.sample_workload(bench_size(11), SEED, 32)
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])


def test_c4_wallclock_dag_lca_query(benchmark):
    query_class = dag_lca_class()
    scheme = dag_bitset_scheme()
    data, queries = query_class.sample_workload(bench_size(9), SEED, 32)
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])
