"""C3 -- Section 4(3): minimum range queries (L2, Fischer--Heun [18]).

Paper claim: after PTIME preprocessing (an O(n)-bit structure in [18]; O(n)
words here), every RMQ answers in O(1).  Series: per-query work of naive
scan vs sparse table vs Fischer--Heun, and the preprocessing-space/work
trade between the two structures.
"""

from conftest import bench_size, bench_sizes, format_table

from repro.core import CostTracker
from repro.queries import fischer_heun_scheme, rmq_class, sparse_table_scheme

SIZES = bench_sizes(10, 16)
SEED = 20130826


def test_c3_shape_three_regimes(benchmark, experiment_report):
    query_class = rmq_class()
    fischer = fischer_heun_scheme()
    sparse = sparse_table_scheme()

    def run():
        rows = []
        for size in SIZES:
            data, queries = query_class.sample_workload(size, SEED, 16)
            fh_prep, st_prep = CostTracker(), CostTracker()
            fh = fischer.preprocess(data, fh_prep)
            st = sparse.preprocess(data, st_prep)
            naive_t, fh_t, st_t = CostTracker(), CostTracker(), CostTracker()
            for query in queries:
                query_class.evaluate(data, query, naive_t)
                fischer.answer(fh, query, fh_t)
                sparse.answer(st, query, st_t)
            rows.append(
                (
                    size,
                    naive_t.work // 16,
                    st_t.work // 16,
                    fh_t.work // 16,
                    st_prep.work,
                    fh_prep.work,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C3 (Section 4(3)): RMQ -- naive scan vs sparse table vs Fischer-Heun",
        format_table(
            ["n", "scan work/q", "sparse work/q", "F-H work/q", "sparse prep", "F-H prep"],
            rows,
        ),
    )
    # Queries O(1) for both structures; Fischer--Heun preprocessing is
    # asymptotically lighter than the n log n sparse table.
    assert rows[-1][2] < 3 * rows[0][2]
    assert rows[-1][3] < 3 * rows[0][3]
    assert rows[-1][5] < rows[-1][4]
    assert rows[-1][1] > 20 * rows[0][1]


def test_c3_wallclock_fischer_heun_query(benchmark):
    query_class = rmq_class()
    scheme = fischer_heun_scheme()
    data, queries = query_class.sample_workload(bench_size(14), SEED, 32)
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])


def test_c3_wallclock_naive_query(benchmark):
    query_class = rmq_class()
    data, queries = query_class.sample_workload(bench_size(14), SEED, 4)
    benchmark(lambda: [query_class.evaluate(data, q, CostTracker()) for q in queries])
