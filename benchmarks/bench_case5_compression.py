"""C5 -- Section 4(5): query-preserving compression.

Paper claims: (a) query-preserving compression keeps only what the query
class observes, so queries run on the compressed structure directly, and
(b) it "often achieves a better compression ratio than lossless" *in
effective terms* -- lossless output cannot be queried without paying the
decompression back.  Series: compression ratios and per-query work of
query-preserving vs lossless-then-BFS vs uncompressed-BFS on social-like
graphs.
"""

import random

from conftest import bench_sizes, format_table

from repro.compression import LosslessCompressedGraph, ReachabilityPreservingCompression
from repro.core import CostTracker
from repro.graphs import is_reachable, social_digraph

SIZES = bench_sizes(7, 11)
SEED = 20130826


def test_c5_shape_compression(benchmark, experiment_report):
    def run():
        rows = []
        for size in SIZES:
            rng = random.Random(SEED + size)
            graph = social_digraph(size, rng)
            preserving = ReachabilityPreservingCompression(graph)
            lossless = LosslessCompressedGraph(graph)
            queries = [(rng.randrange(size), rng.randrange(size)) for _ in range(12)]
            qp_t, ll_t, bfs_t = CostTracker(), CostTracker(), CostTracker()
            for u, v in queries:
                assert preserving.reachable(u, v, qp_t) == is_reachable(graph, u, v, bfs_t)
                lossless.reachable(u, v, ll_t)
            rows.append(
                (
                    size,
                    f"{graph.n}v/{graph.edge_count}e",
                    f"{preserving.compressed_vertices}v/{preserving.compressed_edges}e",
                    f"{preserving.compression_ratio():.2f}",
                    f"{lossless.compression_ratio():.2f}",
                    qp_t.work // 12,
                    ll_t.work // 12,
                    bfs_t.work // 12,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C5 (Section 4(5)): reachability -- query-preserving vs lossless compression",
        format_table(
            [
                "n",
                "original",
                "compressed",
                "qp ratio",
                "lossless ratio",
                "qp work/q",
                "lossless work/q",
                "plain BFS work/q",
            ],
            rows,
        ),
    )
    # Query-preserving answers in O(1); lossless pays the full decode + BFS.
    assert all(row[5] <= 8 for row in rows)
    assert rows[-1][6] > 100 * rows[-1][5]


def test_c5_wallclock_query_preserving(benchmark):
    rng = random.Random(SEED)
    graph = social_digraph(512, rng)
    preserving = ReachabilityPreservingCompression(graph)
    queries = [(rng.randrange(512), rng.randrange(512)) for _ in range(64)]
    benchmark(lambda: [preserving.reachable(u, v) for u, v in queries])


def test_c5_wallclock_lossless(benchmark):
    rng = random.Random(SEED)
    graph = social_digraph(512, rng)
    lossless = LosslessCompressedGraph(graph)
    queries = [(rng.randrange(512), rng.randrange(512)) for _ in range(4)]
    benchmark(lambda: [lossless.reachable(u, v) for u, v in queries])


def test_c5_wallclock_compression_build(benchmark):
    rng = random.Random(SEED)
    graph = social_digraph(512, rng)
    benchmark(lambda: ReachabilityPreservingCompression(graph))
