"""C1 -- Section 4(1): range selection via B+-trees.

Paper claim: after building B+-trees, range queries answer in O(log |D|).
Series: per-query work for scan vs B+-tree range probe across sizes and
selectivities.
"""

from conftest import bench_size, bench_sizes, format_table

from repro.core import CostTracker
from repro.queries import btree_range_scheme, range_selection_class

SIZES = bench_sizes(10, 16)
SEED = 20130826


def test_c1_shape_range_scan_vs_btree(benchmark, experiment_report):
    query_class = range_selection_class()
    scheme = btree_range_scheme()

    def run():
        rows = []
        for size in SIZES:
            data, queries = query_class.sample_workload(size, SEED, 16)
            preprocessed = scheme.preprocess(data, CostTracker())
            scan_tracker, probe_tracker = CostTracker(), CostTracker()
            for query in queries:
                query_class.evaluate(data, query, scan_tracker)
                scheme.answer(preprocessed, query, probe_tracker)
            rows.append(
                (
                    size,
                    scan_tracker.work // 16,
                    probe_tracker.work // 16,
                    f"{scan_tracker.work / max(probe_tracker.work, 1):.0f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C1 (Section 4(1)): Boolean range selection, scan vs B+-tree",
        format_table(["|D|", "scan work/q", "probe work/q", "speedup"], rows),
    )
    assert rows[-1][1] > 20 * rows[0][1]  # scans grow linearly
    assert rows[-1][2] < 4 * rows[0][2]  # probes stay logarithmic


def test_c1_selectivity_independence(benchmark, experiment_report):
    """A Boolean range probe costs O(log n) regardless of how many tuples
    fall in the window -- only the leftmost candidate is inspected."""
    query_class = range_selection_class()
    scheme = btree_range_scheme()
    data, _ = query_class.sample_workload(bench_size(14), SEED, 1)
    preprocessed = scheme.preprocess(data, CostTracker())
    domain = 4 * bench_size(14)

    def run():
        rows = []
        for width_exp in (0, 4, 8, 12, 14):
            # Cap the window inside the (smoke-shrunk) domain so every row
            # actually probes.
            width = min(2**width_exp, domain // 2)
            tracker = CostTracker()
            probes = 0
            for start in range(0, domain - width, max(domain // 16, 1)):
                scheme.answer(preprocessed, ("a", start, start + width), tracker)
                probes += 1
            rows.append((width, tracker.work // max(probes, 1)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C1b: range probe work vs window width (Boolean probe is width-independent)",
        format_table(["window width", "probe work/q"], rows),
    )
    works = [row[1] for row in rows]
    assert max(works) < 2 * min(works)


def test_c1_wallclock_range_probe(benchmark):
    query_class = range_selection_class()
    scheme = btree_range_scheme()
    data, queries = query_class.sample_workload(bench_size(13), SEED, 16)
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])
