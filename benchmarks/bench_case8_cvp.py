"""C8 -- Section 4(8): the Circuit Value Problem, factorized.

Paper claim: under the factorization (circuit + inputs = data, designated
output = query) CVP is Pi-tractable -- evaluate every gate once, then each
query is O(1).  Series: per-query work of re-evaluation vs gate-table
lookup across circuit sizes, plus layered-parallel depth showing why deep
circuits resist NC evaluation (the P-completeness shape).
"""

import random

from conftest import bench_size, bench_sizes, format_table

from repro.circuits import deep_chain_circuit, evaluate_layered, layered_circuit, random_inputs
from repro.core import CostTracker
from repro.parallel import ParallelMachine
from repro.queries import cvp_factorized_class, gate_table_scheme

SIZES = bench_sizes(8, 14)
SEED = 20130826


def test_c8_shape_gate_table(benchmark, experiment_report):
    query_class = cvp_factorized_class()
    scheme = gate_table_scheme()

    def run():
        rows = []
        for size in SIZES:
            data, queries = query_class.sample_workload(size, SEED, 16)
            prep = CostTracker()
            preprocessed = scheme.preprocess(data, prep)
            naive_t, table_t = CostTracker(), CostTracker()
            for query in queries:
                query_class.evaluate(data, query, naive_t)
                scheme.answer(preprocessed, query, table_t)
            rows.append(
                (
                    size,
                    prep.work,
                    naive_t.work // 16,
                    table_t.work // 16,
                    f"{naive_t.work / max(table_t.work, 1):.0f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C8 (Section 4(8)): CVP -- re-evaluate per query vs gate-value table",
        format_table(
            ["|alpha| (gates)", "prep work (once)", "re-eval work/q", "table work/q", "gap"],
            rows,
        ),
    )
    assert rows[-1][2] > 20 * rows[0][2]
    assert all(row[3] <= 3 for row in rows)


def test_c8_shape_depth_dichotomy(benchmark, experiment_report):
    """Layered-parallel depth: deep chains are linear, shallow circuits are
    not -- the NC-vs-P boundary CVP sits on."""

    def run():
        rng = random.Random(SEED)
        rows = []
        for size in (128, 512, 2048):
            deep = deep_chain_circuit(size, rng)
            shallow = layered_circuit(8, max(size // 8, 1), 8, rng)
            t_deep, t_shallow = CostTracker(), CostTracker()
            evaluate_layered(deep, random_inputs(deep.n_inputs, rng), ParallelMachine(t_deep))
            evaluate_layered(
                shallow, random_inputs(shallow.n_inputs, rng), ParallelMachine(t_shallow)
            )
            rows.append((size, t_deep.depth, t_shallow.depth))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C8b: layered-parallel evaluation depth -- chain circuits vs depth-8 circuits",
        format_table(["~gates", "deep-chain depth", "shallow depth"], rows),
    )
    assert rows[-1][1] > 10 * rows[0][1]  # chains: depth grows linearly
    assert rows[-1][2] < 3 * rows[0][2]  # fixed-depth circuits: flat


def test_c8_wallclock_gate_table_query(benchmark):
    query_class = cvp_factorized_class()
    scheme = gate_table_scheme()
    data, queries = query_class.sample_workload(bench_size(12), SEED, 64)
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])


def test_c8_wallclock_reevaluation(benchmark):
    query_class = cvp_factorized_class()
    data, queries = query_class.sample_workload(bench_size(12), SEED, 2)
    benchmark(lambda: [query_class.evaluate(data, q, CostTracker()) for q in queries])
