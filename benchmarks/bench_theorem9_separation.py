"""TH9 -- Theorem 9 / Proposition 10: the separation, measured.

Under Upsilon_0 (empty data part), no preprocessing can reduce CVP's
per-query cost: evaluation depth grows linearly in |q|.  Under
Upsilon_CVP, the same instances answer in O(1) after PTIME preprocessing.
The re-factorization reduction (Corollary 6) carries the one to the other.
"""

from conftest import bench_sizes, format_table

from repro.core import CostTracker, ScalingKind, certify, transfer_scheme
from repro.queries import (
    cvp_factorized_class,
    cvp_trivial_class,
    gate_table_scheme,
    reevaluate_scheme,
)
from repro.reductions_zoo import refactorize_cvp

SIZES = bench_sizes(5, 11)
SEED = 20130826


def test_th9_shape_separation(benchmark, experiment_report):
    trivial = cvp_trivial_class()
    trivial_scheme = reevaluate_scheme()
    factorized = cvp_factorized_class()
    factorized_scheme = gate_table_scheme()

    def run():
        rows = []
        for size in SIZES:
            data0, queries0 = trivial.sample_workload(size, SEED, 6)
            pre0 = trivial_scheme.preprocess(data0, CostTracker())
            t0 = CostTracker()
            for query in queries0:
                trivial_scheme.answer(pre0, query, t0)

            data1, queries1 = factorized.sample_workload(size, SEED, 6)
            pre1 = factorized_scheme.preprocess(data1, CostTracker())
            t1 = CostTracker()
            for query in queries1:
                factorized_scheme.answer(pre1, query, t1)
            rows.append((size, t0.depth // 6, t1.depth // 6))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "TH9 (Theorem 9): CVP eval depth per query -- Upsilon_0 vs Upsilon_CVP",
        format_table(["scale", "Upsilon_0 depth/q", "Upsilon_CVP depth/q"], rows),
    )
    assert rows[-1][1] > 10 * rows[0][1]  # Upsilon_0: grows with |q|
    assert all(row[2] <= 2 for row in rows)  # Upsilon_CVP: O(1)


def test_th9_certifier_verdicts(benchmark, experiment_report):
    def run():
        failing = certify(
            cvp_trivial_class(), reevaluate_scheme(), sizes=SIZES[:5], queries_per_size=5
        )
        passing = certify(
            cvp_factorized_class(), gate_table_scheme(), sizes=SIZES[:5], queries_per_size=5
        )
        return failing, passing

    failing, passing = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "TH9b: certifier verdicts for the two factorizations",
        [
            f"(CVP, Upsilon_0)   : Pi-tractable={failing.is_pi_tractable}  "
            f"eval={failing.evaluation_depth.describe()}",
            f"(CVP, Upsilon_CVP) : Pi-tractable={passing.is_pi_tractable}  "
            f"eval={passing.evaluation_depth.describe()}",
        ],
    )
    assert failing.evaluation_depth.kind is ScalingKind.POLYNOMIAL
    assert passing.is_pi_tractable


def test_th9_wallclock_refactorization_transfer(benchmark):
    reduction = refactorize_cvp()
    transferred = transfer_scheme(reduction, gate_table_scheme())
    instance = reduction.source.sample_instances(128, seed=SEED, count=1)[0]
    data = reduction.source_factorization.pi1(instance)
    query = reduction.source_factorization.pi2(instance)
    preprocessed = transferred.preprocess(data, CostTracker())
    benchmark(lambda: transferred.answer(preprocessed, query, CostTracker()))
