"""EX1 -- Example 1: point selection, scan vs B+-tree.

Paper claim: a linear scan of 1 PB at 6 GB/s takes ~1.9 days; with a
B+-tree the same Boolean point query answers in O(log |D|) -- "seconds".
We reproduce (a) the measured scan-vs-probe gap over a size sweep, (b) the
wall-clock microbenchmark of each regime, and (c) the paper's petabyte
extrapolation computed from our measured per-tuple costs.
"""

import random

from conftest import bench_size, bench_sizes, format_table

from repro.core import CostTracker
from repro.queries import btree_point_scheme, point_selection_class

SIZES = bench_sizes(10, 17)
SEED = 20130826


def _workload(size: int):
    return point_selection_class().sample_workload(size, SEED, query_count=16)


def test_ex1_shape_scan_vs_btree(benchmark, experiment_report):
    query_class = point_selection_class()
    scheme = btree_point_scheme()

    def run():
        rows = []
        for size in SIZES:
            data, queries = _workload(size)
            preprocessed = scheme.preprocess(data, CostTracker())
            scan_tracker, probe_tracker = CostTracker(), CostTracker()
            for query in queries:
                query_class.evaluate(data, query, scan_tracker)
                scheme.answer(preprocessed, query, probe_tracker)
            scan = scan_tracker.work // len(queries)
            probe = probe_tracker.work // len(queries)
            rows.append((size, scan, probe, f"{scan / max(probe, 1):.0f}x"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "EX1 (Example 1): per-query work, linear scan vs B+-tree probe",
        format_table(["|D| (tuples)", "scan work", "probe work", "speedup"], rows),
    )
    # Shape assertions: scan grows ~linearly, probe stays logarithmic.
    assert rows[-1][1] > 30 * rows[0][1]
    assert rows[-1][2] < 4 * rows[0][2]


def test_ex1_petabyte_extrapolation(benchmark, experiment_report):
    """The paper's opening arithmetic, recomputed from measured constants."""
    scan_rate_bytes_per_s = 6e9  # the paper's fastest-SSD figure [38]
    petabyte = 1e15
    scan_seconds = petabyte / scan_rate_bytes_per_s
    # Measured probe cost at the largest sweep size, extrapolated by log2.
    import math

    def measure_probe():
        data, queries = _workload(SIZES[-1])
        scheme = btree_point_scheme()
        preprocessed = scheme.preprocess(data, CostTracker())
        tracker = CostTracker()
        for query in queries:
            scheme.answer(preprocessed, query, tracker)
        return tracker.work / len(queries)

    probe_ops = benchmark.pedantic(measure_probe, rounds=1, iterations=1)
    tuples_per_pb = petabyte / 100  # ~100 bytes per tuple
    probe_ops_pb = probe_ops * math.log2(tuples_per_pb) / math.log2(SIZES[-1])
    probe_seconds = probe_ops_pb * 100 / scan_rate_bytes_per_s  # ~1 tuple read/op
    rows = [
        ("linear scan", f"{scan_seconds:,.0f}", f"{scan_seconds / 3600:.1f} h", f"{scan_seconds / 86400:.1f} days"),
        ("B+-tree probe", f"{probe_seconds:.6f}", "-", "instant"),
    ]
    experiment_report(
        "EX1 extrapolation: answering one point query on 1 PB (paper: 1.9 days vs seconds)",
        format_table(["regime", "seconds", "hours", "verdict"], rows),
    )
    assert scan_seconds > 1.8 * 86400  # the paper's "1.9 days"
    assert probe_seconds < 1.0


def test_ex1_wallclock_scan(benchmark):
    data, queries = _workload(bench_size(14))
    query_class = point_selection_class()
    benchmark(lambda: [query_class.evaluate(data, q, CostTracker()) for q in queries])


def test_ex1_wallclock_btree_probe(benchmark):
    data, queries = _workload(bench_size(14))
    scheme = btree_point_scheme()
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])


def test_ex1_wallclock_preprocessing(benchmark):
    data, _ = _workload(bench_size(13))
    scheme = btree_point_scheme()
    benchmark(lambda: scheme.preprocess(data, CostTracker()))
