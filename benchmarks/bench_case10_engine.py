"""C10 -- the serving economics: cold build vs warm serve (ISSUE 1).

The paper's amortization argument, measured end to end through the service
stack: the *first* query against a (dataset, scheme) pair pays the PTIME
build; every later query is answered from the artifact cache in polylog
time; a process restart pays only artifact deserialization, not the build.

This module also feeds the machine-readable perf record ``BENCH_engine.json``
(via the ``bench_json`` fixture) with cold/warm/restart latency percentiles
and the cache hit rate, so the serving-path trajectory is tracked by CI.
"""

from __future__ import annotations

import pytest

import statistics
import time

from conftest import bench_size, format_table

from repro.catalog import build_query_engine
from repro.service import ArtifactStore, QueryRequest

# The raw-payload QueryRequest form used throughout this module is
# deprecated (named sessions are the supported surface); its behavior
# is pinned here on purpose, so silence the migration warning.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

SEED = 20130826
KINDS = (
    "point-selection",
    "range-selection",
    "list-membership",
    "minimum-range-query",
    "topk-threshold",
)
QUERIES_PER_KIND = 16


def _workloads(engine, size):
    for kind in KINDS:
        query_class, _ = engine.registration(kind)
        yield kind, query_class.sample_workload(size, SEED, QUERIES_PER_KIND)


def _timed(engine, request):
    started = time.perf_counter()
    answer = engine.execute(request)
    return time.perf_counter() - started, answer


def test_c10_engine_cold_vs_warm_vs_restart(
    benchmark, experiment_report, bench_json, tmp_path
):
    size = bench_size(13)
    store = ArtifactStore(tmp_path / "artifacts")

    def run():
        cold, warm, answers = [], [], {}
        with build_query_engine(store=store, max_workers=4) as engine:
            for kind, (data, queries) in _workloads(engine, size):
                seconds, answer = _timed(engine, QueryRequest(kind, data, queries[0]))
                cold.append(seconds)
                answers[(kind, 0)] = answer
                for position, query in enumerate(queries[1:], start=1):
                    seconds, answer = _timed(engine, QueryRequest(kind, data, query))
                    warm.append(seconds)
                    answers[(kind, position)] = answer
            # A concurrent warm batch for throughput (all artifacts hot).
            requests = [
                QueryRequest(kind, data, query)
                for kind, (data, queries) in _workloads(engine, size)
                for query in queries
            ]
            started = time.perf_counter()
            batch_answers = engine.execute_batch(requests)
            batch_seconds = time.perf_counter() - started
            first_stats = engine.stats()

        # Restart: a fresh engine over the same store deserializes instead
        # of rebuilding.
        restart = []
        with build_query_engine(store=store, max_workers=4) as engine:
            for kind, (data, queries) in _workloads(engine, size):
                seconds, answer = _timed(engine, QueryRequest(kind, data, queries[0]))
                restart.append(seconds)
                assert answer == answers[(kind, 0)]
            restart_stats = engine.stats()
        return (
            cold,
            warm,
            restart,
            batch_answers,
            batch_seconds,
            first_stats,
            restart_stats,
            answers,
        )

    (
        cold,
        warm,
        restart,
        batch_answers,
        batch_seconds,
        first_stats,
        restart_stats,
        answers,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    cold_p50 = statistics.median(cold)
    warm_p50 = statistics.median(warm)
    restart_p50 = statistics.median(restart)
    hit_rate = sum(
        s.cache_hits + s.store_hits for s in first_stats.per_kind.values()
    ) / max(sum(s.cache_hits + s.store_hits + s.builds for s in first_stats.per_kind.values()), 1)
    total_queries = len(KINDS) * QUERIES_PER_KIND

    experiment_report(
        f"C10 (service): cold build vs warm serve vs restart, |D| = {size}",
        format_table(
            ["pass", "queries", "p50 latency (us)", "notes"],
            [
                ("cold", len(cold), f"{cold_p50 * 1e6:.0f}", "build + persist + serve"),
                ("warm", len(warm), f"{warm_p50 * 1e6:.0f}", "LRU cache hit"),
                ("restart", len(restart), f"{restart_p50 * 1e6:.0f}", "artifact load, no build"),
                (
                    "warm batch",
                    total_queries,
                    f"{batch_seconds / total_queries * 1e6:.0f}",
                    f"{total_queries / batch_seconds:.0f} q/s on 4 threads",
                ),
            ],
        ),
    )
    bench_json(
        "engine",
        {
            "dataset_size": size,
            "kinds": list(KINDS),
            "queries_per_kind": QUERIES_PER_KIND,
            "cold_p50_ms": cold_p50 * 1e3,
            "warm_p50_ms": warm_p50 * 1e3,
            "restart_p50_ms": restart_p50 * 1e3,
            "warm_batch_qps": total_queries / batch_seconds,
            "hit_rate": hit_rate,
            "restart_builds": sum(
                s.builds for s in restart_stats.per_kind.values()
            ),
        },
    )

    # Warm serving must beat cold building by a wide margin, the cache must
    # actually absorb the repeats, and a restart must never rebuild.
    assert warm_p50 * 5 < cold_p50
    assert hit_rate > 0.9
    assert sum(s.builds for s in restart_stats.per_kind.values()) == 0
    assert sum(s.store_hits for s in restart_stats.per_kind.values()) == len(KINDS)
    # Batch answers equal the sequential per-query answers, in order.
    expected = [answers[(kind, position)] for kind in KINDS for position in range(QUERIES_PER_KIND)]
    assert batch_answers == expected
