"""EXT -- extensions the paper names as open issues (Section 8).

* EXT-AGAP: a second P-complete problem (alternating reachability) made
  Pi-tractable by the graph-as-data factorization -- Corollary 6 beyond the
  paper's own BDS/CVP specimens.
* EXT-TOPK: top-k with early termination [14] (open issue (5)): measured
  sorted-access counts of Fagin's TA against the full-scan baseline, on
  favourable (correlated) and adversarial (anti-correlated) data.
* EXT-BSP: a coordination-aware cost model (open issue (1)): reachability
  in BSP terms -- rounds vs per-round work for frontier BFS vs squaring.
* EXT-APPROX: approximate Pi-tractability (open issue (5)): the O(1)
  one-sided 2-approximate vertex-cover oracle after O(|E|) preprocessing.
"""

import random

import numpy as np
from conftest import bench_points, bench_size, format_table

from repro.core import CostTracker
from repro.graphs import gnm_graph
from repro.kernelization import ApproximateVertexCoverOracle, VCInstance, vc_decide
from repro.parallel import BSPMachine, bsp_reachability_frontier, bsp_reachability_squaring
from repro.queries import (
    TopKIndex,
    agap_class,
    threshold_algorithm_scheme,
    topk_class,
    winning_set_scheme,
)

SEED = 20130826


def test_ext_agap_shape(benchmark, experiment_report):
    query_class = agap_class()
    scheme = winning_set_scheme()

    def run():
        rows = []
        for size in (2**6, 2**7, 2**8, 2**9):
            data, queries = query_class.sample_workload(size, SEED, 8)
            prep = CostTracker()
            preprocessed = scheme.preprocess(data, prep)
            naive_t, indexed_t = CostTracker(), CostTracker()
            for query in queries:
                query_class.evaluate(data, query, naive_t)
                scheme.answer(preprocessed, query, indexed_t)
            rows.append(
                (size, prep.work, naive_t.work // 8, indexed_t.work // 8)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "EXT-AGAP: alternating reachability (P-complete) -- fixpoint/query vs O(1) index",
        format_table(["n", "prep work (all targets)", "fixpoint work/q", "index work/q"], rows),
    )
    # The per-query fixpoint grows with the graph (the attractor touches the
    # reverse-reachable region, so growth is sublinear in n but steady).
    assert rows[-1][2] > 3 * rows[0][2]
    assert all(row[3] == 1 for row in rows)


def test_ext_topk_early_termination(benchmark, experiment_report):
    """TA accesses on correlated vs anti-correlated data (open issue (5):
    'under certain conditions' top-k can be made tractable -- here are the
    conditions, measured)."""

    def run():
        rng = random.Random(SEED)
        rows = []
        for n in bench_points(10, 12, 14):
            correlated = tuple((s, s + rng.randint(0, 20)) for s in
                               sorted(rng.randint(0, 1000) for _ in range(n)))
            anti = tuple((s, 1000 - s) for s in
                         (rng.randint(0, 1000) for _ in range(n)))
            for label, table in (("correlated", correlated), ("anti-corr", anti)):
                index = TopKIndex(table)
                total_accesses = 0
                for _ in range(12):
                    weights = (1, 1)
                    k = rng.randint(1, 8)
                    theta = rng.randint(500, 2200)
                    _, accesses = index.kth_score_at_least(weights, k, theta)
                    total_accesses += accesses
                rows.append((n, label, total_accesses // 12, 2 * n))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "EXT-TOPK: Fagin's TA sorted accesses per query vs full-scan bound",
        format_table(["n", "data shape", "TA accesses/q", "full-scan accesses"], rows),
    )
    # On correlated data TA stops far short of scanning everything; below a
    # few hundred rows the fixed k ~ 8 floor dominates, so only judge sizes
    # where early termination has room to pay off.
    correlated_rows = [row for row in rows if row[1] == "correlated" and row[0] >= 256]
    assert correlated_rows
    assert all(row[2] < row[3] // 8 for row in correlated_rows)


def test_ext_bsp_rounds(benchmark, experiment_report):
    def run():
        rows = []
        for n in (32, 64, 128, 256):
            adjacency = np.zeros((n, n), dtype=bool)
            for i in range(n - 1):
                adjacency[i, i + 1] = True
            frontier, squaring = BSPMachine(), BSPMachine()
            bsp_reachability_frontier(adjacency, 0, n - 1, frontier)
            bsp_reachability_squaring(adjacency, 0, n - 1, squaring)
            rows.append(
                (
                    n,
                    frontier.rounds,
                    frontier.total_cost,
                    squaring.rounds,
                    squaring.total_cost,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "EXT-BSP: reachability on a path -- BFS (many cheap rounds) vs squaring "
        "(log n heavy rounds)",
        format_table(
            ["n", "BFS rounds", "BFS cost", "squaring rounds", "squaring cost"],
            rows,
        ),
    )
    # Coordination complexity: rounds linear vs logarithmic.
    assert rows[-1][1] >= 255
    assert rows[-1][3] == 8


def test_ext_approx_vc(benchmark, experiment_report):
    def run():
        rng = random.Random(SEED)
        rows = []
        for n in bench_points(8, 10, 12):
            graph = gnm_graph(n, n, rng)
            prep = CostTracker()
            oracle = ApproximateVertexCoverOracle(graph, prep)
            query_t = CostTracker()
            agreements = 0
            checks = 0
            for k in range(0, 12, 3):
                approx = oracle.probably_coverable(k, query_t)
                if n <= 2**8:
                    exact_t = CostTracker()
                    exact = vc_decide(VCInstance(graph, k), exact_t)
                    checks += 1
                    agreements += approx == exact or (approx and not exact)
            rows.append(
                (
                    n,
                    prep.work,
                    query_t.work // 4,
                    oracle.lower_bound,
                    oracle.upper_bound,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "EXT-APPROX: 2-approximate VC oracle -- O(|E|) preprocess, O(1) one-sided queries",
        format_table(
            ["n", "matching prep work", "query work", "OPT lower bound", "2-approx cover"],
            rows,
        ),
    )
    assert all(row[2] <= 1 for row in rows)
    assert all(row[3] <= row[4] <= 2 * max(row[3], 1) for row in rows)


def test_ext_wallclock_agap_index_query(benchmark):
    query_class = agap_class()
    scheme = winning_set_scheme()
    data, queries = query_class.sample_workload(bench_size(8), SEED, 32)
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])


def test_ext_wallclock_ta_query(benchmark):
    query_class = topk_class()
    scheme = threshold_algorithm_scheme()
    data, queries = query_class.sample_workload(bench_size(12), SEED, 8)
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])
