"""C2 -- Section 4(2): searching in a list (L1).

Paper claim: sort M once (O(|M| log |M|)), then binary-search each element
query in O(log |M|).
"""

from conftest import bench_size, bench_sizes, format_table

from repro.core import CostTracker
from repro.queries import membership_class, sorted_run_scheme

SIZES = bench_sizes(10, 17)
SEED = 20130826


def test_c2_shape_membership(benchmark, experiment_report):
    query_class = membership_class()
    scheme = sorted_run_scheme()

    def run():
        rows = []
        for size in SIZES:
            data, queries = query_class.sample_workload(size, SEED, 16)
            prep = CostTracker()
            preprocessed = scheme.preprocess(data, prep)
            scan_tracker, search_tracker = CostTracker(), CostTracker()
            for query in queries:
                query_class.evaluate(data, query, scan_tracker)
                scheme.answer(preprocessed, query, search_tracker)
            rows.append(
                (
                    size,
                    prep.work,
                    scan_tracker.work // 16,
                    search_tracker.work // 16,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C2 (Section 4(2)): list membership, linear scan vs sort + binary search",
        format_table(["|M|", "sort work (once)", "scan work/q", "bsearch work/q"], rows),
    )
    assert rows[-1][2] > 30 * rows[0][2]
    assert rows[-1][3] < 3 * rows[0][3]


def test_c2_wallclock_binary_search(benchmark):
    query_class = membership_class()
    scheme = sorted_run_scheme()
    data, queries = query_class.sample_workload(bench_size(15), SEED, 32)
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])


def test_c2_wallclock_linear_scan(benchmark):
    query_class = membership_class()
    data, queries = query_class.sample_workload(bench_size(15), SEED, 4)
    benchmark(lambda: [query_class.evaluate(data, q, CostTracker()) for q in queries])
