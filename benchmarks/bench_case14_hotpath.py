"""C14 -- the serving hot path: tracked dispatch vs serve-plan fast path (ISSUE 5).

The paper's query step is polylog; what users feel is polylog *times a
constant*.  This benchmark takes the constant apart on a warm engine:

* **tracked dispatch** (``Dataset.query_tracked``) -- the analytic path:
  per-request registration lookup, cache probe, and the cost-charging
  evaluator (every comparison pays a ``CostTracker.tick``);
* **fast path** (``Dataset.query``) -- the serve plan: one dict hit plus
  one untracked kernel call (C ``bisect``);
* **bare kernel** (``scheme.answer_fast`` on the resolved structure) -- the
  floor Python allows, isolating what dispatch still costs;
* **batches** -- the PR-4 baseline (one pool task per query through the
  tracked path) vs the vectorized ``query_batch`` (group by kind, one
  ``answer_many`` per group, fan-out chunked to pool width).

Feeds the ``hotpath`` section of ``BENCH_engine.json`` and asserts the
regression floor: the fast path must stay well ahead of tracked dispatch
(single-query p50) and the per-query pool baseline (batch qps), so a
refactor that silently drops the plans or the vectorized path fails CI.
"""

from __future__ import annotations

import statistics
import time

from conftest import bench_size, format_table

from repro.catalog import build_query_engine

SEED = 20130826
KIND = "list-membership"
WARMUP = 64
SAMPLES = 600
BATCH_REPEAT = 16  # 64 distinct queries x 16 = 1024-query batches

#: Regression floors (fast-vs-tracked p50 ratio, vectorized-vs-pool qps
#: ratio).  Measured headroom is ~5x / ~15x at 2^16 and ~4x / ~20x at the
#: smoke cap; the floors leave slack for noisy CI runners.
SINGLE_FLOOR = 2.5
BATCH_FLOOR = 4.0


def _p50(run_one, queries, samples=SAMPLES):
    latencies = []
    for position in range(samples):
        query = queries[position % len(queries)]
        started = time.perf_counter()
        run_one(query)
        latencies.append(time.perf_counter() - started)
    return statistics.median(latencies)


def test_c14_hotpath_dispatch_overhead_and_batch_qps(
    benchmark, experiment_report, bench_json
):
    size = bench_size(16)

    def run():
        engine = build_query_engine()
        query_class, scheme = engine.registration(KIND)
        data, queries = query_class.sample_workload(size, SEED, 64)
        ds = engine.attach("bench", data).warm([KIND])
        for query in queries[:WARMUP]:  # steady state on every path
            assert ds.query(KIND, query) == ds.query_tracked(KIND, query)

        tracked_p50 = _p50(lambda q: ds.query_tracked(KIND, q), queries)
        fast_p50 = _p50(lambda q: ds.query(KIND, q), queries)
        structure = engine.resolve(KIND, data)
        kernel_p50 = _p50(lambda q: scheme.answer_fast(structure, q), queries)

        pairs = [(KIND, query) for query in queries] * BATCH_REPEAT
        started = time.perf_counter()
        baseline_answers = list(
            engine._ensure_pool().map(lambda pair: ds.query_tracked(*pair), pairs)
        )
        baseline_qps = len(pairs) / (time.perf_counter() - started)
        started = time.perf_counter()
        vector_answers = ds.query_batch(pairs)
        vector_qps = len(pairs) / (time.perf_counter() - started)
        started = time.perf_counter()
        inline_answers = ds.query_batch(pairs, concurrent=False)
        inline_qps = len(pairs) / (time.perf_counter() - started)
        assert baseline_answers == vector_answers == inline_answers

        engine.close()
        return tracked_p50, fast_p50, kernel_p50, baseline_qps, vector_qps, inline_qps

    (
        tracked_p50,
        fast_p50,
        kernel_p50,
        baseline_qps,
        vector_qps,
        inline_qps,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    experiment_report(
        f"C14 (hot path): dispatch-overhead breakdown, |D| = {size}",
        format_table(
            ["path", "p50 (us)", "vs tracked", "notes"],
            [
                (
                    "tracked dispatch",
                    f"{tracked_p50 * 1e6:.2f}",
                    "1.0x",
                    "registration + cache probe + cost-charging evaluate",
                ),
                (
                    "serve-plan fast path",
                    f"{fast_p50 * 1e6:.2f}",
                    f"{tracked_p50 / fast_p50:.1f}x",
                    "dict hit + untracked kernel call",
                ),
                (
                    "bare kernel",
                    f"{kernel_p50 * 1e6:.2f}",
                    f"{tracked_p50 / kernel_p50:.1f}x",
                    "answer_fast on the resolved structure (floor)",
                ),
            ],
        )
        + format_table(
            ["batch path (1024 queries)", "qps", "vs pool-per-query"],
            [
                ("pool task per query (PR-4)", f"{baseline_qps:,.0f}", "1.0x"),
                (
                    "vectorized, chunked fan-out",
                    f"{vector_qps:,.0f}",
                    f"{vector_qps / baseline_qps:.1f}x",
                ),
                (
                    "vectorized, inline",
                    f"{inline_qps:,.0f}",
                    f"{inline_qps / baseline_qps:.1f}x",
                ),
            ],
        ),
    )
    bench_json(
        "hotpath",
        {
            "dataset_size": size,
            "kind": KIND,
            "samples": SAMPLES,
            "batch_queries": 64 * BATCH_REPEAT,
            "tracked_p50_us": tracked_p50 * 1e6,
            "fast_p50_us": fast_p50 * 1e6,
            "kernel_p50_us": kernel_p50 * 1e6,
            "single_query_speedup": tracked_p50 / fast_p50,
            "batch_pool_per_query_qps": baseline_qps,
            "batch_vectorized_qps": vector_qps,
            "batch_vectorized_inline_qps": inline_qps,
            "batch_speedup": vector_qps / baseline_qps,
        },
    )

    # Regression floors (ISSUE 5 acceptance; see module docstring).
    assert fast_p50 * SINGLE_FLOOR <= tracked_p50, (fast_p50, tracked_p50)
    assert vector_qps >= BATCH_FLOOR * baseline_qps, (vector_qps, baseline_qps)
