"""C9 -- Section 4(9): Vertex Cover with Buss kernelization.

Paper claim: instances preprocess in O(|E|) so that for fixed K the
decision takes O(1) time in |G|.  Series: kernel size vs |G| (flat), and
post-kernel decision work vs |G| (flat) against the no-preprocessing
search (growing).
"""

from conftest import bench_size, bench_sizes, format_table

from repro.core import CostTracker
from repro.queries import kernel_scheme, vc_fixed_k_class

SIZES = bench_sizes(7, 13)
SEED = 20130826


def test_c9_shape_kernelization(benchmark, experiment_report):
    query_class = vc_fixed_k_class()
    scheme = kernel_scheme()

    def run():
        rows = []
        for size in SIZES:
            data, queries = query_class.sample_workload(size, SEED, 8)
            prep = CostTracker()
            kernels = scheme.preprocess(data, prep)
            kernel_edges = max(k.kernel_edges for k in kernels.values())
            naive_t, kernel_t = CostTracker(), CostTracker()
            for query in queries:
                query_class.evaluate(data, query, naive_t)
                scheme.answer(kernels, query, kernel_t)
            rows.append(
                (
                    size,
                    prep.work,
                    kernel_edges,
                    naive_t.work // 8,
                    kernel_t.work // 8,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C9 (Section 4(9)): VC with fixed K -- kernel size and decision work vs |G|",
        format_table(
            ["|G|", "kernelize work", "max kernel edges", "no-prep work/q", "kernel work/q"],
            rows,
        ),
    )
    # Kernel size depends on K only: flat as |G| grows 32x.
    kernel_sizes = [row[2] for row in rows]
    assert max(kernel_sizes) <= 36  # K_MAX^2
    # Decision-on-kernel flat; search-on-G grows.
    assert rows[-1][4] < 10 * max(rows[0][4], 1) + 10
    assert rows[-1][3] > 10 * rows[0][3]


def test_c9_wallclock_kernel_decide(benchmark):
    query_class = vc_fixed_k_class()
    scheme = kernel_scheme()
    data, queries = query_class.sample_workload(bench_size(10), SEED, 8)
    kernels = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(kernels, q, CostTracker()) for q in queries])


def test_c9_wallclock_kernelize(benchmark):
    query_class = vc_fixed_k_class()
    scheme = kernel_scheme()
    data, _ = query_class.sample_workload(bench_size(10), SEED, 1)
    benchmark(lambda: scheme.preprocess(data, CostTracker()))


def test_c9_wallclock_no_preprocessing(benchmark):
    query_class = vc_fixed_k_class()
    data, queries = query_class.sample_workload(bench_size(10), SEED, 2)
    benchmark(lambda: [query_class.evaluate(data, q, CostTracker()) for q in queries])
