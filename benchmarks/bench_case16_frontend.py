"""Case 16: the serving front -- does adding worker processes add qps?

The whole point of ISSUE 9 is to escape the single process: per-query work
is GIL-bound, so a 4-worker pool over the shared artifact store should
serve a CPU-heavy read mix at a multiple of one worker's throughput.  This
case measures exactly that claim and records it to
``BENCH_workloads.json`` under ``frontend_scaling``:

* a Zipf(1.1) membership-only mix, pre-generated as large ``query_batch``
  frames (cheap to encode client-side, so worker-side serve CPU dominates
  the measurement, not client encoding);
* load generators are separate *processes* (:func:`drive_batches` is
  spawn-importable), so the client side scales past one GIL exactly like
  the worker side -- a threaded generator would cap the measurement at
  its own GIL and report a false plateau;
* the same batches run against a 1-worker front and a
  ``SCALE_WORKERS``-worker front sharing one store directory; the second
  pool's attaches are loads, not rebuilds (content addressing is the
  cache-coherence protocol).

The ``>= MIN_SPEEDUP`` gate is enforced only where it is physically
meaningful: ``gate_enforced`` records whether this host has at least
``SCALE_WORKERS`` cores (CI runners do; a 1-core dev container cannot
speed up no matter how correct the front is).  CI's bench-smoke job
asserts the gate from the JSON record whenever ``gate_enforced`` is true.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import random
import time

from conftest import bench_size, format_table

from repro.service.faults import RecoveryPolicy, scenario
from repro.service.frontend import RemoteClient, ServingFront
from repro.service.frontend.client import drive_batches
from repro.workloads import UniformKeys, WorkloadSpec, ZipfKeys, run_closed_loop

SEED = 20130826
JSON_PATH = "BENCH_workloads.json"

#: Acceptance-criteria dataset size (2^16 full-size; capped in smoke).
SIZE = bench_size(16)
#: Queries per query_batch frame: large enough that one frame's decode +
#: serve dwarfs its round-trip overhead.
BATCH = 128
#: Total batches pumped per pool size, split across the generators.
BATCHES = max(32, SIZE // BATCH)
#: The scaled pool, and the speedup it must deliver on >= SCALE_WORKERS cores.
SCALE_WORKERS = 4
MIN_SPEEDUP = 2.0
#: Load-generator processes x threads each: enough offered concurrency to
#: keep SCALE_WORKERS busy without the client becoming the bottleneck.
GENERATORS = 4
GENERATOR_THREADS = 2

#: Tail-resilience (ISSUE 10) run shape: a small closed-loop read mix over
#: a 2-worker front where worker 0 serves every query SLOW_SECONDS late.
TAIL_OPS = 60
TAIL_THREADS = 2
TAIL_SIZE = min(SIZE, 4096)
SLOW_SECONDS = 0.15
HEDGE_DELAY_MS = 10.0
#: Generous end-to-end budget for the hedged run: exercises the deadline
#: plumbing without expecting any expiry.
TAIL_DEADLINE_MS = 5_000.0


def _zipf_batches():
    """Pre-generated (batches, expected answers): half hits drawn Zipf-hot
    from the content, half misses probing past it."""
    rng = random.Random(SEED)
    sampler = ZipfKeys(1.1).start(SIZE)
    batches, expected = [], []
    for _ in range(BATCHES):
        pairs, answers = [], []
        for _ in range(BATCH):
            index = sampler.sample(rng)
            if rng.random() < 0.5:
                pairs.append(("list-membership", index))
                answers.append(True)
            else:
                pairs.append(("list-membership", SIZE + index))
                answers.append(False)
        batches.append(pairs)
        expected.append(answers)
    return batches, expected


def _pump(address, batches):
    """Drive ``batches`` through generator processes; return (qps, counts)."""
    host, port = address
    ctx = multiprocessing.get_context("spawn")
    slices = [batches[g::GENERATORS] for g in range(GENERATORS)]
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=GENERATORS, mp_context=ctx
    ) as pool:
        # Warm the generator processes (spawn + import) off the clock.
        for _ in pool.map(_noop, range(GENERATORS)):
            pass
        started = time.perf_counter()
        futures = [
            pool.submit(
                drive_batches, host, port, part,
                dataset="zipf", threads=GENERATOR_THREADS,
            )
            for part in slices
        ]
        results = [future.result(timeout=600) for future in futures]
        elapsed = time.perf_counter() - started
    counts = {
        key: sum(result[key] for result in results)
        for key in ("queries", "batches", "errors", "degraded")
    }
    return counts["queries"] / elapsed if elapsed > 0 else 0.0, counts, results


def _noop(_):
    return None


def _serve_and_pump(workers, store_root, batches):
    with ServingFront(workers=workers, store_root=store_root) as front:
        from repro.service.frontend import RemoteClient

        client = RemoteClient(*front.address)
        data = tuple(range(SIZE))
        client.attach("zipf", data, kinds=["list-membership"])
        # One warm pass builds (worker 0) / loads (the rest) the artifact
        # so the timed window measures serving, not first-touch builds.
        client.query_batch_for("zipf", batches[0])
        qps, counts, results = _pump(front.address, batches)
        client.close()
    return qps, counts, results


def _tail_run(store_root, *, slow, hedge_delay_ms, deadline_ms=None):
    """One closed-loop read pass; returns (WorkloadReport, supervisor health)."""
    plan, fault_workers = None, None
    if slow:
        plan = scenario(
            "slow-worker", seed=SEED % 997,
            policy=RecoveryPolicy(slow_worker_seconds=SLOW_SECONDS),
        )
        fault_workers = (0,)
    spec = WorkloadSpec(
        mix={"list-membership": 1.0}, distribution=UniformKeys(), seed=SEED
    )
    with ServingFront(
        workers=2, store_root=store_root, fault_plan=plan,
        fault_workers=fault_workers, hedge_delay_ms=hedge_delay_ms,
    ) as front:
        client = RemoteClient(*front.address)
        with client.attach("tail", tuple(range(TAIL_SIZE)),
                           kinds=["list-membership"]) as ds:
            report = run_closed_loop(
                ds, spec, threads=TAIL_THREADS, operations=TAIL_OPS,
                deadline_ms=deadline_ms,
            )
            health = front.supervisor.health()
        client.close()
    return report, health


def test_tail_resilience(tmp_path, experiment_report, bench_json):
    """Hedged reads bound the tail under one slowed worker.

    Three runs over the same store: a healthy control, the slow worker
    *without* hedging (the read p99 absorbs the full injected delay), and
    the slow worker *with* hedging plus a generous end-to-end deadline (the
    p99 collapses to roughly the hedge delay).  Recorded under
    ``tail_resilience`` and gated where >= 2 cores make the race physical.
    """
    store_root = str(tmp_path / "store")

    healthy, _ = _tail_run(store_root, slow=False, hedge_delay_ms=HEDGE_DELAY_MS)
    unhedged, _ = _tail_run(store_root, slow=True, hedge_delay_ms=None)
    hedged, health = _tail_run(
        store_root, slow=True, hedge_delay_ms=HEDGE_DELAY_MS,
        deadline_ms=TAIL_DEADLINE_MS,
    )

    for report in (healthy, unhedged, hedged):
        assert report.errors == {}
        assert report.operations == TAIL_OPS
    assert hedged.hedged >= 1
    assert hedged.deadline_exceeded == 0

    cpu_count = os.cpu_count() or 1
    gate_enforced = cpu_count >= 2
    if gate_enforced:
        # Without hedging the tail absorbs the injected delay in full...
        assert unhedged.read_latency.p99 >= SLOW_SECONDS * 0.9
        # ...with hedging the race to the healthy sibling caps it.
        assert hedged.read_latency.p99 <= SLOW_SECONDS * 0.5, (
            f"hedged p99 {hedged.read_latency.p99 * 1e3:.1f} ms did not stay "
            f"under half the injected {SLOW_SECONDS * 1e3:.0f} ms delay"
        )

    bench_json(
        "tail_resilience",
        {
            "size": TAIL_SIZE,
            "operations": TAIL_OPS,
            "threads": TAIL_THREADS,
            "slow_seconds": SLOW_SECONDS,
            "hedge_delay_ms": HEDGE_DELAY_MS,
            "deadline_ms": TAIL_DEADLINE_MS,
            "healthy_p99_us": healthy.read_latency.p99 * 1e6,
            "unhedged_p99_us": unhedged.read_latency.p99 * 1e6,
            "hedged_p99_us": hedged.read_latency.p99 * 1e6,
            # The hedged tail's floor is hedge_delay + the monitor poll, so
            # compare it against the *larger* of the healthy control and
            # that floor; the unhedged ratio shows what hedging bought.
            "hedged_p99_over_healthy": (
                hedged.read_latency.p99 / healthy.read_latency.p99
                if healthy.read_latency.p99 > 0 else 0.0
            ),
            "unhedged_p99_over_healthy": (
                unhedged.read_latency.p99 / healthy.read_latency.p99
                if healthy.read_latency.p99 > 0 else 0.0
            ),
            "hedged": hedged.hedged,
            "hedge_wins": health["hedge_wins"],
            "deadline_exceeded": hedged.deadline_exceeded,
            "errors": sum(hedged.errors.values()),
            "cpu_count": cpu_count,
            "gate_enforced": gate_enforced,
        },
        path=JSON_PATH,
    )
    experiment_report(
        f"case 16b: tail resilience, {TAIL_OPS} membership reads x "
        f"{TAIL_THREADS} threads, worker 0 slowed {SLOW_SECONDS * 1e3:.0f} ms "
        f"(gate {'ON' if gate_enforced else f'OFF: {cpu_count} core(s)'})",
        format_table(
            ["run", "p50 ms", "p99 ms", "hedged", "expired"],
            [
                ["healthy control",
                 f"{healthy.read_latency.p50 * 1e3:.2f}",
                 f"{healthy.read_latency.p99 * 1e3:.2f}", 0, 0],
                ["slow, unhedged",
                 f"{unhedged.read_latency.p50 * 1e3:.2f}",
                 f"{unhedged.read_latency.p99 * 1e3:.2f}", 0, 0],
                ["slow, hedged",
                 f"{hedged.read_latency.p50 * 1e3:.2f}",
                 f"{hedged.read_latency.p99 * 1e3:.2f}",
                 hedged.hedged, hedged.deadline_exceeded],
            ],
        ),
    )


def test_frontend_scaling(tmp_path, experiment_report, bench_json):
    batches, expected = _zipf_batches()
    store_root = str(tmp_path / "store")

    single_qps, single_counts, _ = _serve_and_pump(1, store_root, batches)
    multi_qps, multi_counts, results = _serve_and_pump(
        SCALE_WORKERS, store_root, batches
    )

    # Zero tolerance on the traffic itself, at both pool sizes.
    assert single_counts["errors"] == 0
    assert multi_counts["errors"] == 0
    assert single_counts["queries"] == BATCHES * BATCH
    assert multi_counts["queries"] == BATCHES * BATCH

    # Answers off the scaled pool must match the locally computed truth --
    # a fast-but-wrong front would be worse than a slow one.
    expected_by_slice = [expected[g::GENERATORS] for g in range(GENERATORS)]
    for result, want_batches in zip(results, expected_by_slice):
        got = [answer for thread in result["answers"] for answer in thread]
        want = [
            want_batches[i]
            for t in range(GENERATOR_THREADS)
            for i in range(t, len(want_batches), GENERATOR_THREADS)
        ]
        assert got == want

    cpu_count = os.cpu_count() or 1
    speedup = multi_qps / single_qps if single_qps > 0 else 0.0
    gate_enforced = cpu_count >= SCALE_WORKERS
    if gate_enforced:
        assert speedup >= MIN_SPEEDUP, (
            f"{SCALE_WORKERS} workers served only {speedup:.2f}x one worker "
            f"on {cpu_count} cores (floor {MIN_SPEEDUP}x)"
        )

    bench_json(
        "frontend_scaling",
        {
            "size": SIZE,
            "batch": BATCH,
            "batches": BATCHES,
            "workers": SCALE_WORKERS,
            "generators": GENERATORS,
            "generator_threads": GENERATOR_THREADS,
            "single_qps": single_qps,
            "multi_qps": multi_qps,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "cpu_count": cpu_count,
            "gate_enforced": gate_enforced,
            "errors": multi_counts["errors"],
            "degraded": multi_counts["degraded"],
        },
        path=JSON_PATH,
    )
    experiment_report(
        f"case 16: serving-front scaling, n={SIZE:,}, "
        f"{BATCHES * BATCH:,} Zipf(1.1) membership queries x "
        f"{GENERATORS} generator processes "
        f"(gate {'ON' if gate_enforced else f'OFF: {cpu_count} core(s)'})",
        format_table(
            ["pool", "qps", "speedup", "errors"],
            [
                ["1 worker", f"{single_qps:,.0f}", "1.00x", single_counts["errors"]],
                [
                    f"{SCALE_WORKERS} workers",
                    f"{multi_qps:,.0f}",
                    f"{speedup:.2f}x",
                    multi_counts["errors"],
                ],
            ],
        ),
    )
