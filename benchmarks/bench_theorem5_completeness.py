"""TH5 -- Theorem 5 / Corollary 6: reductions into BDS, measured.

Every catalogued P problem NC-factor-reduces to BDS (solve-and-emit over
the identity factorization; the Theorem 5 skeleton), and Lemma 3 transfers
BDS's Pi-scheme back.  Series: reduction verification counts and the
transferred scheme's query cost, which is *constant* -- the degenerate
limit of re-factorization, since the witness graph carries one bit.
"""

from conftest import bench_points, format_table

from repro.core import CostTracker, transfer_scheme, verify_reduction
from repro.core.language import decision_problem_of
from repro.queries import (
    bds_problem,
    cvp_problem,
    membership_problem,
    position_dict_scheme,
    rmq_class,
    tree_lca_class,
)
from repro.reductions_zoo import refactorize_to_bds, solve_and_emit_bds
from repro.queries import bds_trivial_query_class

SEED = 20130826


def _problems():
    return [
        membership_problem(),
        cvp_problem(),
        bds_problem(),
        decision_problem_of(rmq_class()),
        decision_problem_of(tree_lca_class()),
    ]


def test_th5_shape_reductions_to_bds(benchmark, experiment_report):
    def run():
        rows = []
        for problem in _problems():
            reduction = solve_and_emit_bds(problem)
            instances = problem.sample_instances(32, seed=SEED, count=12)
            violations = verify_reduction(reduction, instances, cross_pairs=False)
            transferred = transfer_scheme(reduction, position_dict_scheme())
            tracker = CostTracker()
            correct = 0
            for instance in instances:
                data = reduction.source_factorization.pi1(instance)
                query = reduction.source_factorization.pi2(instance)
                preprocessed = transferred.preprocess(data, CostTracker())
                answer = transferred.answer(preprocessed, query, tracker)
                correct += answer == problem.member(instance)
            rows.append(
                (
                    problem.name,
                    len(instances),
                    len(violations),
                    f"{correct}/{len(instances)}",
                    tracker.depth // len(instances),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "TH5 (Theorem 5): solve-and-emit reductions L <=NC_fa BDS + Lemma 3 transfer",
        format_table(
            ["problem", "instances", "violations", "transferred correct", "query depth"],
            rows,
        ),
    )
    assert all(row[2] == 0 for row in rows)
    assert all(row[3] == f"{row[1]}/{row[1]}" for row in rows)


def test_th5_shape_refactorization_gap(benchmark, experiment_report):
    """Corollary 6 with content: the genuinely re-factorized BDS reduction
    preserves the real graph, so the transferred scheme does real work --
    O(log n) instead of the Theta(n + m) the trivial factorization forces."""

    def run():
        trivial = bds_trivial_query_class()
        reduction = refactorize_to_bds(trivial)
        transferred = transfer_scheme(reduction, position_dict_scheme())
        rows = []
        for size in bench_points(7, 9, 11):
            instances = reduction.source.sample_instances(size, seed=SEED, count=4)
            replay_t, transferred_t = CostTracker(), CostTracker()
            for instance in instances:
                reduction.source.member(instance, replay_t)  # Upsilon' regime
                data = reduction.source_factorization.pi1(instance)
                query = reduction.source_factorization.pi2(instance)
                preprocessed = transferred.preprocess(data, CostTracker())
                transferred.answer(preprocessed, query, transferred_t)
            rows.append(
                (
                    size,
                    replay_t.work // len(instances),
                    transferred_t.work // len(instances),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "TH5b (Corollary 6): the re-factorization reduction -- replay vs transferred scheme",
        format_table(["|G|", "replay work/q", "transferred work/q"], rows),
    )
    assert rows[-1][1] > 10 * rows[0][1]  # replay grows
    assert rows[-1][2] < 4 * max(rows[0][2], 1)  # transferred stays flat-ish


def test_th5_wallclock_reduction_verification(benchmark):
    problem = membership_problem()
    reduction = solve_and_emit_bds(problem)
    instances = problem.sample_instances(32, seed=SEED, count=8)
    benchmark(lambda: verify_reduction(reduction, instances, cross_pairs=False))
