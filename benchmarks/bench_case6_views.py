"""C6 -- Section 4(6): query answering using views.

Paper claim: if views can be materialized in PTIME and queries answered
from V(D) alone in polylog time, the class is Pi-tractable; "in practice
V(D) is often much smaller than D".  Series: per-query work of scan vs
view answering across sizes and bucket counts.
"""

from conftest import bench_size, bench_sizes, format_table

from repro.core import CostTracker
from repro.queries import range_selection_class, views_scheme

SIZES = bench_sizes(10, 15)
SEED = 20130826


def test_c6_shape_views(benchmark, experiment_report):
    query_class = range_selection_class()
    scheme = views_scheme(bucket_count=16)

    def run():
        rows = []
        for size in SIZES:
            data, queries = query_class.sample_workload(size, SEED, 16)
            prep = CostTracker()
            preprocessed = scheme.preprocess(data, prep)
            scan_t, view_t = CostTracker(), CostTracker()
            for query in queries:
                query_class.evaluate(data, query, scan_t)
                scheme.answer(preprocessed, query, view_t)
            rows.append(
                (
                    size,
                    prep.work,
                    scan_t.work // 16,
                    view_t.work // 16,
                    f"{scan_t.work / max(view_t.work, 1):.0f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C6 (Section 4(6)): range selection answered from materialized views",
        format_table(["|D|", "materialize work", "scan work/q", "views work/q", "gap"], rows),
    )
    assert rows[-1][2] > 10 * rows[0][2]
    assert rows[-1][3] < 6 * rows[0][3]


def test_c6_bucket_count_tradeoff(benchmark, experiment_report):
    """More buckets -> narrower probes but more rewrite targets per range."""
    query_class = range_selection_class()
    data, queries = query_class.sample_workload(bench_size(13), SEED, 16)

    def run():
        rows = []
        for buckets in (2, 8, 32, 128):
            scheme = views_scheme(bucket_count=buckets)
            prep = CostTracker()
            preprocessed = scheme.preprocess(data, prep)
            query_t = CostTracker()
            for query in queries:
                scheme.answer(preprocessed, query, query_t)
            rows.append((buckets, prep.work, query_t.work // 16))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C6b: view-partition granularity ablation (bucket count sweep)",
        format_table(["buckets", "materialize work", "views work/q"], rows),
    )


def test_c6_wallclock_view_answering(benchmark):
    query_class = range_selection_class()
    scheme = views_scheme(bucket_count=16)
    data, queries = query_class.sample_workload(bench_size(13), SEED, 16)
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])
