"""C7 -- Section 4(7): (bounded) incremental evaluation.

Paper claims: incremental cost should be analysed against
|CHANGED| = |dD| + |dO| [35] and, for bounded algorithms, be independent of
|D|.  Series: (a) incremental index maintenance vs rebuild across |D|
with |dD| fixed; (b) incremental transitive closure cost against |CHANGED|.
"""

import random

from conftest import bench_size, bench_sizes, format_table

from repro.core import CostTracker
from repro.incremental import (
    ChangeKind,
    IncrementalSelectionIndex,
    IncrementalTransitiveClosure,
    TupleChange,
)
from repro.storage.relation import uniform_int_relation

SIZES = bench_sizes(9, 14)
SEED = 20130826
BATCH = 16


def test_c7_shape_bounded_index_maintenance(benchmark, experiment_report):
    def run():
        rows = []
        for size in SIZES:
            rng = random.Random(SEED + size)
            relation = uniform_int_relation(size, rng, value_range=(0, 10**9))
            index = IncrementalSelectionIndex(relation, "a")
            tracker = CostTracker()
            batch = [
                TupleChange(ChangeKind.INSERT, (2_000_000_000 + i, 0))
                for i in range(BATCH)
            ]
            incremental = index.apply_batch(batch, tracker)
            rebuild = IncrementalSelectionIndex.rebuild_cost(index.relation, "a")
            rows.append(
                (
                    size,
                    BATCH,
                    incremental.work,
                    rebuild.work,
                    f"{rebuild.work / max(incremental.work, 1):.0f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C7a (Section 4(7)): fixed |dD| batch -- incremental maintenance vs rebuild",
        format_table(["|D|", "|dD|", "incremental work", "rebuild work", "gap"], rows),
    )
    # Rebuild grows linearly with |D| (at least the size ratio of the sweep);
    # the incremental batch only via log n.
    assert rows[-1][3] > (SIZES[-1] // SIZES[0]) * rows[0][3]
    assert rows[-1][2] < 4 * rows[0][2]


def test_c7_shape_closure_cost_tracks_changed(benchmark, experiment_report):
    def run():
        rng = random.Random(SEED)
        closure = IncrementalTransitiveClosure(256)
        buckets = {}  # |CHANGED| decade -> (total work, count)
        for _ in range(500):
            u, v = rng.randrange(256), rng.randrange(256)
            if u == v:
                continue
            before = closure.log.changed
            cost = closure.insert_edge(u, v, CostTracker())
            delta = closure.log.changed - before
            decade = len(str(max(delta, 1)))
            work, count = buckets.get(decade, (0, 0))
            buckets[decade] = (work + cost.work, count + 1)
        return [
            (f"10^{decade - 1}..10^{decade}", count, work // max(count, 1))
            for decade, (work, count) in sorted(buckets.items())
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "C7b (Section 4(7)): incremental closure -- mean work per |CHANGED| decade",
        format_table(["|CHANGED| bucket", "#updates", "mean work"], rows),
    )
    # Work grows with |CHANGED|: each decade costs strictly more per update,
    # and the top decade dwarfs the bottom one.
    works = [row[2] for row in rows]
    assert works[-1] > 50 * max(works[0], 1)
    assert all(later >= earlier for earlier, later in zip(works, works[1:]))


def test_c7_wallclock_incremental_insert(benchmark):
    rng = random.Random(SEED)
    relation = uniform_int_relation(bench_size(12), rng, value_range=(0, 10**9))
    index = IncrementalSelectionIndex(relation, "a")
    counter = iter(range(10**9))

    def insert_one():
        index.apply(TupleChange(ChangeKind.INSERT, (3_000_000_000 + next(counter), 0)))

    benchmark(insert_one)


def test_c7_wallclock_rebuild(benchmark):
    rng = random.Random(SEED)
    relation = uniform_int_relation(bench_size(12), rng, value_range=(0, 10**9))
    benchmark(lambda: IncrementalSelectionIndex(relation, "a"))
