"""Shared benchmark infrastructure.

Benchmarks have two outputs:

* **wall-clock** numbers via pytest-benchmark (the tables pytest prints);
* **shape** tables in the work--depth cost model -- the series the paper's
  narrative predicts (who wins, by what factor, where the crossover is).

Shape tables are registered through the ``experiment_report`` fixture and
printed after the run by ``pytest_terminal_summary``, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures both.

CI smoke mode
-------------
``pytest benchmarks/ --bench-smoke`` shrinks every size sweep (see
:func:`bench_sizes` / :func:`bench_size`) so the whole suite runs in seconds,
and writes the machine-readable perf record ``BENCH_engine.json`` (cold vs.
warm latency percentiles and hit rate, recorded via the ``bench_json``
fixture by :mod:`bench_case10_engine`).  ``--bench-json PATH`` overrides the
output path; without ``--bench-smoke`` no JSON is written unless a path is
given explicitly.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Sequence, Tuple

import pytest

_REPORTS: List[Tuple[str, List[str]]] = []
_JSON_SECTIONS: Dict[str, dict] = {}
#: Sections routed to an explicit file (``record(..., path=...)``), keyed by
#: output path.  Written on every run that produced them -- full-size local
#: runs must land in e.g. BENCH_workloads.json without any bench flag.
_JSON_EXTRA: Dict[str, Dict[str, dict]] = {}
_SMOKE = False
_JSON_PATH: str | None = None

#: Largest size exponent smoke mode allows (2**9 = 512 elements).
SMOKE_CAP_EXP = 9


def pytest_addoption(parser):
    group = parser.getgroup("bench")
    group.addoption(
        "--bench-smoke",
        action="store_true",
        default=False,
        help="shrink benchmark sweeps to smoke-test sizes and emit BENCH_engine.json",
    )
    group.addoption(
        "--bench-json",
        default=None,
        help="path for the machine-readable benchmark record "
        "(default BENCH_engine.json in smoke mode)",
    )


def pytest_configure(config):
    global _SMOKE, _JSON_PATH
    _SMOKE = bool(config.getoption("--bench-smoke"))
    path = config.getoption("--bench-json")
    if path is None and _SMOKE:
        path = "BENCH_engine.json"
    _JSON_PATH = path


def bench_sizes(low_exp: int, high_exp: int) -> List[int]:
    """The sweep ``[2**low_exp, 2**high_exp)``, shifted down in smoke mode.

    Smoke mode slides the exponent window so the largest size is at most
    ``2**SMOKE_CAP_EXP``, preserving the number of points and the ratios
    between them -- growth-shape assertions keep holding, wall-clock drops
    by orders of magnitude.
    """
    if _SMOKE and high_exp - 1 > SMOKE_CAP_EXP:
        shift = high_exp - 1 - SMOKE_CAP_EXP
        low_exp, high_exp = max(2, low_exp - shift), SMOKE_CAP_EXP + 1
    return [2**k for k in range(low_exp, high_exp)]


def bench_size(exp: int) -> int:
    """A single workload size ``2**exp``, capped in smoke mode."""
    return 2 ** min(exp, SMOKE_CAP_EXP) if _SMOKE else 2**exp


def bench_points(*exps: int) -> List[int]:
    """Specific sizes ``2**e`` per exponent, shifted down uniformly in smoke
    mode so the largest fits the cap and the ratios between points survive
    (growth assertions depend on the spread, not the magnitudes)."""
    shift = max(0, max(exps) - SMOKE_CAP_EXP) if _SMOKE else 0
    return [2 ** max(2, e - shift) for e in exps]


@pytest.fixture(scope="session")
def experiment_report() -> Callable[[str, Sequence[str]], None]:
    """Register a shape table: ``experiment_report(title, lines)``."""

    def record(title: str, lines: Sequence[str]) -> None:
        _REPORTS.append((title, list(lines)))

    return record


@pytest.fixture(scope="session")
def bench_json() -> Callable[[str, dict], None]:
    """Record a JSON section: ``bench_json(name, payload)``.

    Sections end up in the machine-readable benchmark record written at the
    end of the run (smoke mode or ``--bench-json``), so the perf trajectory
    of the serving stack is tracked across commits.
    """

    def record(section: str, payload: dict, *, path: str | None = None) -> None:
        # Stamp provenance per section: records are merged across runs, so
        # a full-size re-run of one module must not let its sizes be
        # mistaken for (or mislabel) the other sections' smoke numbers.
        stamped = dict(payload, smoke=_SMOKE)
        if path is None:
            _JSON_SECTIONS[section] = stamped
        else:
            # Explicit-path sections (e.g. BENCH_workloads.json) are written
            # whenever produced, smoke flag or not.
            _JSON_EXTRA.setdefault(path, {})[section] = stamped

    return record


def _merge_record(path: str, new_sections: Dict[str, dict]) -> None:
    """Merge ``new_sections`` into the JSON record at ``path``.

    A partial run (one bench module, e.g. at full size with --bench-json)
    refreshes only its own sections instead of clobbering the rest of the
    perf trajectory.  Each section carries its own "smoke" stamp; the
    top-level flag is true only when every section in the merged record is
    smoke-sized.
    """
    sections: Dict[str, dict] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        sections = dict(existing.get("sections", {}))
        # Sections written before per-section stamping inherit the old
        # record's top-level flag, not an optimistic default -- a stale
        # full-size record must never be relabeled as smoke.
        legacy_smoke = bool(existing.get("smoke", True))
        for section in sections.values():
            if isinstance(section, dict):
                section.setdefault("smoke", legacy_smoke)
    except (OSError, ValueError):
        sections = {}
    sections.update(new_sections)
    record = {
        "smoke": all(section.get("smoke", True) for section in sections.values()),
        "sections": sections,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    write = terminalreporter.write_line
    written = []
    if _JSON_PATH and _JSON_SECTIONS:
        _merge_record(_JSON_PATH, _JSON_SECTIONS)
        written.append(_JSON_PATH)
    for path, sections in _JSON_EXTRA.items():
        _merge_record(path, sections)
        written.append(path)
    for path in written:
        write("")
        write(f"benchmark record written to {path}")
    if not _REPORTS:
        return
    write("")
    write("=" * 90)
    write("EXPERIMENT SHAPE TABLES (work--depth cost model; see EXPERIMENTS.md)")
    write("=" * 90)
    for title, lines in _REPORTS:
        write("")
        write(f"--- {title}")
        for line in lines:
            write(line)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    """Plain fixed-width table used by every bench module."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return lines
