"""Shared benchmark infrastructure.

Benchmarks have two outputs:

* **wall-clock** numbers via pytest-benchmark (the tables pytest prints);
* **shape** tables in the work--depth cost model -- the series the paper's
  narrative predicts (who wins, by what factor, where the crossover is).

Shape tables are registered through the ``experiment_report`` fixture and
printed after the run by ``pytest_terminal_summary``, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures both.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import pytest

_REPORTS: List[Tuple[str, List[str]]] = []


@pytest.fixture(scope="session")
def experiment_report() -> Callable[[str, Sequence[str]], None]:
    """Register a shape table: ``experiment_report(title, lines)``."""

    def record(title: str, lines: Sequence[str]) -> None:
        _REPORTS.append((title, list(lines)))

    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 90)
    write("EXPERIMENT SHAPE TABLES (work--depth cost model; see EXPERIMENTS.md)")
    write("=" * 90)
    for title, lines in _REPORTS:
        write("")
        write(f"--- {title}")
        for line in lines:
            write(line)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    """Plain fixed-width table used by every bench module."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return lines
