"""ABL -- ablations for the design choices DESIGN.md calls out.

Not paper figures; these justify implementation parameters:

* A1: B+-tree node order (fan-out) -- probe and build cost trade-off;
* A2: position index representation for BDS (sorted run vs dict);
* A3: reachability preprocessing route (bitset closure vs NC squaring).
"""

import random

from conftest import bench_points, bench_size, format_table

from repro.core import CostTracker
from repro.graphs import gnm_digraph
from repro.indexes import BPlusTree, TransitiveClosureIndex
from repro.parallel import ParallelMachine, transitive_closure_squaring
from repro.queries import bds_query_class, position_dict_scheme, position_index_scheme
from repro.queries.reachability import adjacency_matrix

SEED = 20130826


def test_abl_btree_order(benchmark, experiment_report):
    """A1: node order sweep.  Larger nodes -> shallower trees but more
    comparisons per node; the cost model shows the log_B(n) * log2(B)
    plateau that makes the choice a constant-factor one."""
    n = bench_size(15)
    rng = random.Random(SEED)
    entries = [(rng.randrange(4 * n), i) for i in range(n)]
    probes = [rng.randrange(4 * n) for _ in range(64)]

    def run():
        rows = []
        for order in (8, 16, 32, 64, 128, 256):
            build_tracker = CostTracker()
            tree = BPlusTree.build(entries, order=order, tracker=build_tracker)
            probe_tracker = CostTracker()
            for probe in probes:
                tree.contains(probe, probe_tracker)
            rows.append(
                (order, tree.height, build_tracker.work, probe_tracker.work // 64)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        f"ABL-A1: B+-tree order sweep (n = {n})",
        format_table(["order", "height", "build work", "probe work/q"], rows),
    )
    # Probe cost varies by at most ~2x across a 32x order range.
    probe_costs = [row[3] for row in rows]
    assert max(probe_costs) <= 3 * min(probe_costs)


def test_abl_bds_position_representation(benchmark, experiment_report):
    """A2: Example 5 prescribes binary search (O(log n)); a dict gives O(1).
    Both are Pi-tractable; the ablation quantifies the constant."""
    query_class = bds_query_class()

    def run():
        rows = []
        for size in bench_points(9, 11, 13):
            data, queries = query_class.sample_workload(size, SEED, 32)
            for scheme in (position_index_scheme(), position_dict_scheme()):
                preprocessed = scheme.preprocess(data, CostTracker())
                tracker = CostTracker()
                for query in queries:
                    scheme.answer(preprocessed, query, tracker)
                rows.append((size, scheme.name, tracker.work // 32))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "ABL-A2: BDS position index -- sorted run (Example 5) vs dict",
        format_table(["|G|", "scheme", "query work/q"], rows),
    )


def test_abl_reachability_preprocessing_route(benchmark, experiment_report):
    """A3: building the closure -- sequential bitset sweep vs charged NC
    matrix squaring.  Same answers; the squaring route has polylog *depth*
    but pays n^3 log n work, the bitset route is work-efficient but
    sequential.  This is Example 3's trade-off at preprocessing time."""

    def run():
        rows = []
        for n in (32, 64, 128, 256):
            rng = random.Random(SEED + n)
            graph = gnm_digraph(n, 3 * n, rng)
            bitset_tracker = CostTracker()
            index = TransitiveClosureIndex(graph, bitset_tracker)
            squaring_tracker = CostTracker()
            closure = transitive_closure_squaring(
                adjacency_matrix(graph), ParallelMachine(squaring_tracker)
            )
            assert (index.as_matrix() == closure).all()
            rows.append(
                (
                    n,
                    bitset_tracker.work,
                    bitset_tracker.depth,
                    squaring_tracker.work,
                    squaring_tracker.depth,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "ABL-A3: closure build -- sequential bitsets vs NC matrix squaring (work/depth)",
        format_table(
            ["n", "bitset work", "bitset depth", "squaring work", "squaring depth"],
            rows,
        ),
    )
    # Squaring: massively more work, massively less depth.
    assert all(row[3] > 50 * row[1] for row in rows)
    assert all(row[4] < row[2] for row in rows[2:])
